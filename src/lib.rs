//! Umbrella crate for the Sweet-or-Sour-CHERI reproduction workspace.
//!
//! Re-exports the public APIs of every member crate. See `morello_sim` for
//! the top-level experiment runner and `README.md` for a tour.

pub use cheri_cap as cap;
pub use cheri_isa as isa;
pub use cheri_mem as mem;
pub use cheri_workloads as workloads;
pub use morello_pmu as pmu;
pub use morello_sim as sim;
pub use morello_uarch as uarch;
