//! `sweet-or-sour-cheri` — command-line driver for the reproduction.
//!
//! ```text
//! sweet-or-sour-cheri list
//! sweet-or-sour-cheri run --workload omnetpp_520 [--abi purecap] [--scale small]
//! sweet-or-sour-cheri suite [--scale small]
//! sweet-or-sour-cheri project --workload xalancbmk_523 [--scale small]
//! ```

use cheri_isa::Abi;
use cheri_workloads::{by_key, registry, Scale};
use morello_sim::suite::run_full_suite;
use morello_sim::{project, Platform, Runner};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sweet-or-sour-cheri list\n  sweet-or-sour-cheri run --workload <key> \
         [--abi hybrid|benchmark|purecap] [--scale test|small|default]\n  \
         sweet-or-sour-cheri suite [--scale ...]\n  \
         sweet-or-sour-cheri project --workload <key> [--scale ...]\n  \
         sweet-or-sour-cheri disasm --workload <key> [--abi ...] [--function <name>]"
    );
    ExitCode::FAILURE
}

struct Opts {
    workload: Option<String>,
    abi: Option<Abi>,
    scale: Scale,
    function: Option<String>,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut o = Opts {
        workload: None,
        abi: None,
        scale: Scale::Small,
        function: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => o.workload = Some(it.next()?.clone()),
            "--abi" => {
                o.abi = Some(match it.next()?.as_str() {
                    "hybrid" => Abi::Hybrid,
                    "benchmark" => Abi::Benchmark,
                    "purecap" => Abi::Purecap,
                    other => {
                        eprintln!("unknown ABI `{other}`");
                        return None;
                    }
                })
            }
            "--function" => o.function = Some(it.next()?.clone()),
            "--scale" => {
                o.scale = match it.next()?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "default" => Scale::Default,
                    other => {
                        eprintln!("unknown scale `{other}`");
                        return None;
                    }
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                return None;
            }
        }
    }
    Some(o)
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<24} {:<16} {:>9} {:>14}",
        "key", "name", "MI(paper)", "benchmark-ABI"
    );
    for w in registry() {
        println!(
            "{:<24} {:<16} {:>9} {:>14}",
            w.key,
            w.name,
            w.table2_mi.map_or("-".into(), |v| format!("{v:.3}")),
            if w.supports_benchmark_abi {
                "yes"
            } else {
                "NA"
            },
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(o: &Opts) -> ExitCode {
    let Some(key) = &o.workload else {
        eprintln!("run requires --workload <key> (see `list`)");
        return ExitCode::FAILURE;
    };
    let Some(w) = by_key(key) else {
        eprintln!("unknown workload `{key}` (see `list`)");
        return ExitCode::FAILURE;
    };
    let runner = Runner::new(Platform::morello().with_scale(o.scale));
    let abis: Vec<Abi> = match o.abi {
        Some(a) => vec![a],
        None => Abi::ALL.to_vec(),
    };
    let mut hybrid = None;
    for abi in abis {
        if !w.supports(abi) {
            println!("{abi:>10}: NA (as in the paper)");
            continue;
        }
        match runner.run(&w, abi) {
            Ok(rep) => {
                let norm = hybrid.map(|h: f64| rep.seconds / h).unwrap_or(1.0);
                if abi == Abi::Hybrid {
                    hybrid = Some(rep.seconds);
                }
                println!(
                    "{abi:>10}: {:>9.5}s ({norm:.3}x)  IPC {:.3}  retired {:>10}  \
                     L1D {:.2}%  L2 {:.2}%  capld {:.1}%  dTLBwalks {}",
                    rep.seconds,
                    rep.derived.ipc,
                    rep.retired,
                    rep.derived.l1d_miss_rate * 100.0,
                    rep.derived.l2_miss_rate * 100.0,
                    rep.derived.cap_load_density * 100.0,
                    rep.stats.dtlb_walk,
                );
            }
            Err(e) => {
                eprintln!("{abi}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_suite(o: &Opts) -> ExitCode {
    let runner = Runner::new(Platform::morello().with_scale(o.scale));
    match run_full_suite(&runner) {
        Ok(rows) => {
            println!("{:<24} {:>10} {:>10}", "workload", "benchmark", "purecap");
            for r in rows {
                let f = |abi| {
                    r.normalized_time(abi)
                        .map_or("NA".to_owned(), |v| format!("{v:.3}x"))
                };
                println!(
                    "{:<24} {:>10} {:>10}",
                    r.name,
                    f(Abi::Benchmark),
                    f(Abi::Purecap)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("suite failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_project(o: &Opts) -> ExitCode {
    let Some(key) = &o.workload else {
        eprintln!("project requires --workload <key>");
        return ExitCode::FAILURE;
    };
    let Some(w) = by_key(key) else {
        eprintln!("unknown workload `{key}`");
        return ExitCode::FAILURE;
    };
    match project(Platform::morello().with_scale(o.scale), &w) {
        Ok(row) => {
            println!("{}:", row.name);
            println!("  morello prototype : {:.3}x", row.morello_slowdown);
            println!("  + PCC-aware BP    : {:.3}x", row.pcc_aware_slowdown);
            println!("  + wide cap SB     : {:.3}x", row.wide_sb_slowdown);
            println!("  + cap MADD        : {:.3}x", row.cap_madd_slowdown);
            println!("  projected (all)   : {:.3}x", row.projected_slowdown);
            println!(
                "  overhead removed  : {:.0}%",
                row.overhead_removed() * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("projection failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_disasm(o: &Opts) -> ExitCode {
    let Some(key) = &o.workload else {
        eprintln!("disasm requires --workload <key>");
        return ExitCode::FAILURE;
    };
    let Some(w) = by_key(key) else {
        eprintln!("unknown workload `{key}`");
        return ExitCode::FAILURE;
    };
    let abi = o.abi.unwrap_or(Abi::Purecap);
    if !w.supports(abi) {
        eprintln!("{} does not run under the {abi} ABI", w.name);
        return ExitCode::FAILURE;
    }
    let prog = cheri_isa::lower(&w.build(abi, cheri_workloads::Scale::Test));
    let selected: Vec<usize> = match &o.function {
        Some(name) => {
            let hits: Vec<usize> = prog
                .funcs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name.contains(name.as_str()))
                .map(|(i, _)| i)
                .collect();
            if hits.is_empty() {
                eprintln!(
                    "no function matching `{name}`; available: {}",
                    prog.funcs
                        .iter()
                        .map(|f| f.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
            hits
        }
        None => (0..prog.funcs.len()).collect(),
    };
    for i in selected {
        println!(
            "{}",
            cheri_isa::disassemble(&prog, cheri_isa::FuncId(i as u32))
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(opts) = parse_opts(&args[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&opts),
        "suite" => cmd_suite(&opts),
        "project" => cmd_project(&opts),
        "disasm" => cmd_disasm(&opts),
        _ => usage(),
    }
}
