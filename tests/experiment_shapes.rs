//! Locks in the paper's load-bearing experimental *shapes*: who wins,
//! in what order, and in which direction every key metric moves. These
//! run at `Scale::Small` (about a minute in CI) so regressions in the
//! model or the workloads are caught without the full harness.

use cheri_isa::Abi;
use cheri_workloads::Scale;
use morello_sim::suite::{run_suite, select, SuiteRow};
use morello_sim::{Platform, Runner};
use std::sync::OnceLock;

fn rows() -> &'static [SuiteRow] {
    static ROWS: OnceLock<Vec<SuiteRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Small));
        run_suite(
            &runner,
            &select(&[
                "parest_510",
                "lbm_519",
                "omnetpp_520",
                "xalancbmk_523",
                "deepsjeng_531",
                "leela_541",
                "nab_544",
                "xz_557",
                "quickjs",
                "sqlite",
                "llama_inference",
                "llama_matmul",
            ]),
        )
        .expect("suite runs")
    })
}

fn slowdown(key: &str) -> f64 {
    rows()
        .iter()
        .find(|r| r.key == key)
        .unwrap_or_else(|| panic!("{key} in suite"))
        .purecap_slowdown()
        .expect("purecap ran")
}

fn row(key: &str) -> &'static SuiteRow {
    rows().iter().find(|r| r.key == key).expect("known key")
}

#[test]
fn pointer_heavy_workloads_suffer_most() {
    // §4.1/§4.3: xalancbmk and quickjs at the top; omnetpp and sqlite
    // clearly affected; the FP/streaming kernels essentially free.
    let xalan = slowdown("xalancbmk_523");
    let quickjs = slowdown("quickjs");
    let omnetpp = slowdown("omnetpp_520");
    let sqlite = slowdown("sqlite");
    let lbm = slowdown("lbm_519");
    let llama = slowdown("llama_inference");
    let matmul = slowdown("llama_matmul");

    assert!(xalan > 1.5, "xalancbmk must suffer badly: {xalan}");
    assert!(quickjs > 1.3, "quickjs must suffer: {quickjs}");
    assert!(omnetpp > 1.15, "omnetpp must suffer: {omnetpp}");
    assert!(sqlite > 1.1, "sqlite must suffer: {sqlite}");
    for (name, v) in [("lbm", lbm), ("llama-inference", llama), ("matmul", matmul)] {
        assert!(v < 1.08, "{name} must be near-free under purecap, got {v}");
    }
    // Ordering of the extremes.
    assert!(xalan > sqlite && xalan > lbm);
    assert!(quickjs > sqlite);
}

#[test]
fn compute_kernels_have_modest_overhead() {
    for key in ["deepsjeng_531", "nab_544", "xz_557", "parest_510"] {
        let s = slowdown(key);
        assert!(
            (0.97..1.30).contains(&s),
            "{key} should have modest purecap overhead, got {s}"
        );
    }
}

#[test]
fn benchmark_abi_sits_between_hybrid_and_purecap() {
    // §4.5: the benchmark ABI isolates the PCC-resteer cost.
    for key in ["xalancbmk_523", "omnetpp_520", "leela_541"] {
        let r = row(key);
        let bm = r.normalized_time(Abi::Benchmark).expect("benchmark runs");
        let pc = r.purecap_slowdown().expect("purecap runs");
        assert!(
            bm <= pc + 1e-9,
            "{key}: benchmark ({bm}) must not exceed purecap ({pc})"
        );
        assert!(bm >= 0.98, "{key}: benchmark not faster than hybrid: {bm}");
    }
    // xalancbmk is the paper's PCC poster child: a large recovery.
    let r = row("xalancbmk_523");
    let gap = r.purecap_slowdown().unwrap() - r.normalized_time(Abi::Benchmark).unwrap();
    assert!(gap > 0.2, "xalancbmk PCC recovery too small: {gap}");
}

#[test]
fn quickjs_benchmark_abi_is_na() {
    assert!(row("quickjs").get(Abi::Benchmark).is_none());
}

#[test]
fn capability_density_shifts_with_abi() {
    // §4.8: capability load density is near zero under hybrid and large
    // under purecap for pointer-heavy workloads.
    for key in ["omnetpp_520", "xalancbmk_523", "sqlite", "quickjs"] {
        let r = row(key);
        let h = r.get(Abi::Hybrid).unwrap().derived.cap_load_density;
        let p = r.get(Abi::Purecap).unwrap().derived.cap_load_density;
        assert!(h < 0.05, "{key}: hybrid cap density should be ~0, got {h}");
        assert!(
            p > 0.2,
            "{key}: purecap cap density should be large, got {p}"
        );
    }
    // Streaming FP kernels stay capability-free even under purecap.
    for key in ["lbm_519", "llama_matmul"] {
        let p = row(key).get(Abi::Purecap).unwrap().derived.cap_load_density;
        assert!(p < 0.02, "{key}: purecap cap density should be ~0, got {p}");
    }
}

#[test]
fn dp_share_grows_under_purecap() {
    // Figure 5: DP_SPEC share rises; LD/ST shares stay comparatively
    // stable.
    let share = |s: &morello_uarch::UarchStats| s.dp_spec as f64 / s.inst_spec.max(1) as f64;
    // Capability manipulation must grow the DP share of every
    // pointer-heavy workload...
    // (deepsjeng is excluded: its hot loops re-materialise globals, which
    // costs two DP instructions under hybrid but a single captable *load*
    // under purecap, so its DP share legitimately falls in this model.)
    for key in [
        "omnetpp_520",
        "xalancbmk_523",
        "quickjs",
        "sqlite",
        "leela_541",
    ] {
        let r = row(key);
        let h = share(&r.get(Abi::Hybrid).unwrap().stats);
        let p = share(&r.get(Abi::Purecap).unwrap().stats);
        assert!(p > h, "{key}: DP share must grow ({h} -> {p})");
    }
    // ...while staying essentially flat for capability-free FP kernels
    // (the paper's 5.21%-29.31% range starts above zero because even its
    // "FP" binaries contain pointer-ful library code).
    for key in ["lbm_519", "llama_matmul"] {
        let r = row(key);
        let h = share(&r.get(Abi::Hybrid).unwrap().stats);
        let p = share(&r.get(Abi::Purecap).unwrap().stats);
        assert!((p - h).abs() < 0.05, "{key}: DP share should be stable");
    }
}

#[test]
fn memory_footprint_grows_under_purecap() {
    // §4.4: footprint and utilized memory grow (36%/55% for QuickJS).
    for key in ["quickjs", "omnetpp_520", "xalancbmk_523"] {
        let r = row(key);
        let h = r.get(Abi::Hybrid).unwrap().heap;
        let p = r.get(Abi::Purecap).unwrap().heap;
        assert!(
            p.peak_live_bytes as f64 > 1.25 * h.peak_live_bytes as f64,
            "{key}: purecap peak heap must grow >=25%: {} vs {}",
            p.peak_live_bytes,
            h.peak_live_bytes
        );
        assert!(p.pages_touched > h.pages_touched, "{key}: footprint");
    }
}

#[test]
fn llc_read_miss_rates_are_extreme() {
    // §4.7: "LLC miss rates remain extremely high in almost all cases,
    // typically above 90%".
    let mut high = 0;
    let mut total = 0;
    for r in rows() {
        for abi in Abi::ALL {
            if let Some(rep) = r.get(abi) {
                if rep.stats.ll_cache_rd > 1000 {
                    total += 1;
                    if rep.derived.llc_read_miss_rate > 0.8 {
                        high += 1;
                    }
                }
            }
        }
    }
    assert!(
        high * 10 >= total * 7,
        "most LLC read miss rates should be extreme: {high}/{total}"
    );
}

#[test]
fn exec_results_identical_across_abis() {
    // Three lowerings of one program must compute the same thing.
    for r in rows() {
        let codes: Vec<u64> = Abi::ALL
            .iter()
            .filter_map(|abi| r.get(*abi))
            .map(|rep| rep.exit_code)
            .collect();
        assert!(
            codes.windows(2).all(|w| w[0] == w[1]),
            "{}: architectural results diverge across ABIs: {codes:?}",
            r.name
        );
    }
}

#[test]
fn binary_sections_shape() {
    // Figure 2, per workload: .rela.dyn explodes, .got doubles,
    // .note.cheri appears, total stays modest.
    for r in rows() {
        let h = r.get(Abi::Hybrid).unwrap().binary;
        let p = r.get(Abi::Purecap).unwrap().binary;
        // Workloads with many static data pointers (QuickJS's script
        // table) have a larger hybrid baseline; 5x is the per-workload
        // floor, the suite median is ~85x (see fig2_binsize).
        assert!(p.rela_dyn as f64 > 5.0 * h.rela_dyn as f64, "{}", r.name);
        assert_eq!(p.got, 2 * h.got, "{}", r.name);
        assert_eq!(h.note_cheri, 0);
        assert!(p.note_cheri > 0);
        assert!(p.rodata < h.rodata, "{}: .rodata must shrink", r.name);
        let total = p.total() as f64 / h.total() as f64;
        assert!(
            (1.0..1.30).contains(&total),
            "{}: total ratio {total} outside the 'modest' band",
            r.name
        );
    }
}
