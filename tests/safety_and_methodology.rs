//! Cross-crate integration tests: CHERI's protection actually protects
//! (under the simulated purecap ABI), and the measurement methodology is
//! self-consistent.

use cheri_cap::FaultKind;
use cheri_isa::{
    lower, Abi, Cond, Interp, InterpConfig, InterpError, MemSize, NullSink, ProgramBuilder,
};
use cheri_workloads::{registry, Scale};
use morello_pmu::{DerivedMetrics, PmuEvent};
use morello_sim::{Platform, Runner};

fn run(abi: Abi, build: impl Fn(&mut ProgramBuilder)) -> Result<u64, InterpError> {
    let mut b = ProgramBuilder::new("t", abi);
    build(&mut b);
    Interp::new(InterpConfig::default())
        .run(&lower(&b.build()), &mut NullSink)
        .map(|r| r.exit_code)
}

// --- Protection ---------------------------------------------------------

#[test]
fn heap_overflow_caught_only_by_capability_abis() {
    let build = |b: &mut ProgramBuilder| {
        let main = b.function("main", 0, |f| {
            let p = f.vreg();
            f.malloc(p, 48);
            let secret = f.vreg();
            // 48 rounds up to a 48-byte class; +48 is one past the end.
            f.load_int(secret, p, 48, MemSize::S8);
            f.halt_code(secret);
        });
        b.set_entry(main);
    };
    assert!(
        run(Abi::Hybrid, build).is_ok(),
        "hybrid reads past the end silently"
    );
    for abi in [Abi::Purecap, Abi::Benchmark] {
        match run(abi, build) {
            Err(InterpError::Fault { fault, .. }) => {
                assert_eq!(fault.kind, FaultKind::BoundsViolation)
            }
            other => panic!("{abi}: expected bounds fault, got {other:?}"),
        }
    }
}

#[test]
fn inter_object_corruption_prevented() {
    // Classic exploit shape: overflow object A to rewrite object B.
    let build = |b: &mut ProgramBuilder| {
        let main = b.function("main", 0, |f| {
            let a = f.vreg();
            f.malloc(a, 32);
            let bp = f.vreg();
            f.malloc(bp, 32);
            let v = f.vreg();
            f.mov_imm(v, 0xdead);
            // Walk from A toward B with raw pointer arithmetic.
            let i = f.vreg();
            f.mov_imm(i, 0);
            let out = f.label();
            let head = f.here();
            f.br(Cond::Geu, i, 64, out);
            let off = f.vreg();
            f.lsl(off, i, 3);
            f.store_int(v, a, off, MemSize::S8);
            f.add(i, i, 1);
            f.jump(head);
            f.bind(out);
            let check = f.vreg();
            f.load_int(check, bp, 0, MemSize::S8);
            f.halt_code(check);
        });
        b.set_entry(main);
    };
    // Hybrid: B is corrupted (non-zero) or at least the loop completes.
    assert!(run(Abi::Hybrid, build).is_ok());
    // Purecap: the first out-of-bounds store faults.
    assert!(matches!(
        run(Abi::Purecap, build),
        Err(InterpError::Fault { .. })
    ));
}

#[test]
fn data_cannot_forge_a_capability() {
    // Write an address as plain data, then try to call/deref it as a
    // pointer: the loaded capability is untagged and faults.
    let mut b = ProgramBuilder::new("forge", Abi::Purecap);
    let g = b.global_zero("slot", 16);
    let main = b.function("main", 0, |f| {
        let gp = f.vreg();
        f.lea_global(gp, g, 0);
        // A plausible heap address, stored as *data*.
        let addr = f.vreg();
        f.mov_imm(addr, 0x4010_0000);
        f.store_int(addr, gp, 0, MemSize::S8);
        // Load it back as a pointer and dereference.
        let forged = f.vreg();
        f.load_ptr(forged, gp, 0);
        let v = f.vreg();
        f.load_int(v, forged, 0, MemSize::S8);
        f.halt_code(v);
    });
    b.set_entry(main);
    match Interp::new(InterpConfig::default()).run(&lower(&b.build()), &mut NullSink) {
        Err(InterpError::Fault { fault, .. }) => {
            assert_eq!(fault.kind, FaultKind::TagViolation)
        }
        other => panic!("forgery must fault with a tag violation, got {other:?}"),
    }
}

#[test]
fn use_after_free_blocked_by_quarantine_reuse_distance() {
    // With temporal-safety quarantine, a freed block's memory is not
    // immediately handed back, so the classic overlap exploit (free A,
    // allocate B over it, write through stale A) does not see B's data.
    let mut b = ProgramBuilder::new("uaf", Abi::Purecap);
    let main = b.function("main", 0, |f| {
        let a = f.vreg();
        f.malloc(a, 64);
        f.free(a);
        let bp = f.vreg();
        f.malloc(bp, 64);
        let ai = f.vreg();
        f.ptr_to_int(ai, a);
        let bi = f.vreg();
        f.ptr_to_int(bi, bp);
        let same = f.vreg();
        f.mov_imm(same, 0);
        let differ = f.label();
        f.br(Cond::Ne, ai, bi, differ);
        f.mov_imm(same, 1);
        f.bind(differ);
        f.halt_code(same);
    });
    b.set_entry(main);
    let res = Interp::new(InterpConfig::default())
        .run(&lower(&b.build()), &mut NullSink)
        .unwrap();
    assert_eq!(res.exit_code, 0, "quarantine must prevent immediate reuse");
}

// --- Methodology ----------------------------------------------------------

#[test]
fn multiplexed_collection_equals_ground_truth_for_every_abi() {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let w = cheri_workloads::by_key("xz_557").unwrap();
    for abi in Abi::ALL {
        let single = runner.run(&w, abi).unwrap();
        let (multi, runs) = runner.run_multiplexed(&w, abi).unwrap();
        assert_eq!(runs, 12, "60 events / 5 per group after the anchor");
        assert_eq!(multi, single.counts, "{abi}");
    }
}

#[test]
fn derived_metrics_match_manual_formulas() {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let w = cheri_workloads::by_key("leela_541").unwrap();
    let rep = runner.run(&w, Abi::Purecap).unwrap();
    let c = &rep.counts;
    let m = DerivedMetrics::from_counts(c);
    let ipc = c.get(PmuEvent::InstRetired) as f64 / c.get(PmuEvent::CpuCycles) as f64;
    assert!((m.ipc - ipc).abs() < 1e-12);
    let mi = (c.get(PmuEvent::LdSpec) + c.get(PmuEvent::StSpec)) as f64
        / (c.get(PmuEvent::DpSpec) + c.get(PmuEvent::AseSpec) + c.get(PmuEvent::VfpSpec)) as f64;
    assert!((m.memory_intensity - mi).abs() < 1e-12);
    // The paper's idiosyncratic Retiring: INST_SPEC / SUM(*_SPEC) ~ 0.5.
    assert!((0.35..0.65).contains(&m.retiring));
    // Top-down shares are shares.
    assert!(m.frontend_bound + m.backend_bound < 1.0);
}

#[test]
fn determinism_across_repeated_runs() {
    // The paper reports <1% variance on quiesced hardware; the simulator
    // is exactly deterministic.
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let w = cheri_workloads::by_key("sqlite").unwrap();
    let a = runner.run(&w, Abi::Purecap).unwrap();
    let b = runner.run(&w, Abi::Purecap).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.exit_code, b.exit_code);
}

#[test]
fn whole_registry_runs_at_test_scale() {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    for w in registry() {
        for abi in Abi::ALL {
            if !w.supports(abi) {
                continue;
            }
            let rep = runner
                .run(&w, abi)
                .unwrap_or_else(|e| panic!("{} under {abi}: {e}", w.name));
            assert!(rep.retired > 1000, "{} under {abi} too small", w.name);
            assert!(rep.derived.ipc > 0.05 && rep.derived.ipc <= 4.0);
        }
    }
}

#[test]
fn projection_removes_overhead_where_morello_artefacts_bite() {
    let w = cheri_workloads::by_key("xalancbmk_523").unwrap();
    let row = morello_sim::project(Platform::morello().with_scale(Scale::Test), &w).unwrap();
    assert!(row.projected_slowdown < row.morello_slowdown);
    assert!(row.overhead_removed() > 0.25, "{}", row.overhead_removed());
}
