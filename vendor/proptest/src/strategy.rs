//! Strategies: deterministic value generators with combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `f` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// An erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] combinator.
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry limit exceeded: {}", self.reason)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u128) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53-bit mantissa fraction in [0, 1).
                let frac = (rng.below(1u128 << 53) as f64) / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * frac as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}
