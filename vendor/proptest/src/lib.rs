//! Vendored, registry-free stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use: `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, `prop_oneof!`, `any::<T>()`, `Just`, integer-range
//! strategies, tuple strategies, `prop_map`, and `collection::vec`.
//!
//! Differences from upstream: case generation is seeded
//! deterministically (reproducible across runs and machines) and there
//! is no shrinking — a failing case reports its generated inputs via the
//! assertion message instead.

pub mod strategy;

pub mod collection;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — generate another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

pub mod test_runner {
    //! Test-loop configuration and the deterministic case RNG.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by every `proptest!` test.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x5EED_CAFE_F00D_D00D,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `span` (> 0).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128) * span) >> 64
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! The glob-import surface, as in upstream proptest.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs one property over `cases` accepted cases — the engine behind the
/// `proptest!` macro.
pub fn run_property<F>(cfg: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = test_runner::TestRng::deterministic();
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = cfg.cases as u64 * 20 + 1000;
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest: too many rejected cases ({attempts} attempts for {} cases)",
            cfg.cases
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case #{accepted} failed: {msg}")
            }
        }
    }
}

/// Defines property tests: `proptest! { fn name(x in strategy) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::run_property(&__cfg, |__rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), __rng); )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} != {}` (both {:?})",
                        stringify!($a),
                        stringify!($b),
                        __l
                    )));
                }
            }
        }
    };
}

/// Vetoes the current case, drawing a fresh one instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
