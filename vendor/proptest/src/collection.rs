//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
