//! Vendored, registry-free stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde [`Value`] model as JSON text.
//! Covers the workspace's needs: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and a faithful round-trip for every type the simulator
//! serialises (integers stay exact; floats print with Rust's shortest
//! round-trip formatting; non-finite floats render as `null`, as
//! upstream serde_json does).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// A JSON value (alias of the vendored serde data model).
pub type JsonValue = Value;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialises a value into the [`Value`] tree without rendering text.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::deserialize(&v)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float repr and is
                // valid JSON (digits, `.`, `e`, `-`).
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::custom("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), 1.5f64);
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains("\"x\": 1.5"));
        let back: std::collections::BTreeMap<String, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
