//! Vendored, registry-free stand-in for `rand 0.8`.
//!
//! Supplies exactly the surface the workloads use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.
//! The generator is xoshiro256++ seeded through splitmix64 — fully
//! deterministic for a given seed, which is all the synthetic workload
//! generators need (they fix their seeds). The streams differ from
//! upstream rand's StdRng, so generated workload *data* differs in the
//! bytes, but every statistical property the kernels rely on (uniform
//! ranges, Bernoulli draws) is preserved.

use std::ops::{Range, RangeInclusive};

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, as in upstream rand's `Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, as upstream.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// ChaCha-based `StdRng`; same API, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Uniform draw from `[0, span)` by widening multiply (bias is
/// negligible for the spans the workloads use and irrelevant to a
/// deterministic simulator).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = rng.next_u64() as u128;
    (wide * span) >> 64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = uniform_below(rng, span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = uniform_below(rng, span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let x = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + x * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0..8u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(4..24);
            assert!((4..24).contains(&v));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "{hits}");
    }
}
