//! Vendored, registry-free stand-in for `serde`.
//!
//! The build environment has no network access and no cargo registry
//! cache, so the workspace vendors the small slice of serde it actually
//! uses: `Serialize`/`Deserialize` traits, derive macros for plain
//! structs and enums, and the `#[serde(skip)]` / `#[serde(default)]`
//! field attributes.
//!
//! Unlike upstream serde's visitor architecture, this implementation
//! round-trips through an owned [`Value`] tree (the JSON data model).
//! That is dramatically simpler, and every serialisation consumer in this
//! workspace is JSON anyway (`serde_json` renders/parses `Value`
//! directly). The external JSON representation matches serde_json's
//! conventions: structs are maps, unit enum variants are strings,
//! data-carrying variants are single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model every type serialises into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negatives normalise to `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

/// Serialisation/deserialisation error: a plain message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A required struct field was absent.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a `Value` tree.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a `Value` tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by generated code ----

/// Looks up a key in a serialised map.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Expects a map value.
pub fn as_map(v: &Value) -> Result<&Vec<(String, Value)>, Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::custom(format!("expected map, got {other:?}"))),
    }
}

/// Expects a sequence of exactly `len` elements.
pub fn as_seq(v: &Value, len: usize) -> Result<&Vec<Value>, Error> {
    match v {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => Err(Error::custom(format!(
            "expected sequence of {len}, got {}",
            s.len()
        ))),
        other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
    }
}

// ---- primitive impls ----

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        // Values beyond u64 render as decimal strings so the JSON text
        // round-trips exactly through a u64-based number model.
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as u128),
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("bad u128 `{s}`"))),
            other => Err(Error::custom(format!("expected u128, got {other:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) if n >= 0 => Value::U64(n as u64),
            Ok(n) => Value::I64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}
impl Deserialize for i128 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as i128),
            Value::I64(n) => Ok(*n as i128),
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("bad i128 `{s}`"))),
            other => Err(Error::custom(format!("expected i128, got {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // serde_json renders non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        items.try_into().map_err(|items: Vec<T>| {
            Error::custom(format!("expected {N} elements, got {}", items.len()))
        })
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = as_seq(v, 2)?;
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = as_seq(v, 3)?;
        Ok((
            A::deserialize(&s[0])?,
            B::deserialize(&s[1])?,
            C::deserialize(&s[2])?,
        ))
    }
}

/// Renders a serialised key for use as a JSON object key (unit enum
/// variants and strings pass through; integers stringify, as serde_json
/// does for integer-keyed maps).
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(Error::custom(format!("unsupported map key {other:?}"))),
    }
}

/// Rebuilds a key type from a JSON object key.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot interpret map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(k.serialize()).expect("map key must be string-like"),
                        v.serialize(),
                    )
                })
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = as_map(v)?;
        m.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k.serialize()).expect("map key must be string-like"),
                    v.serialize(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = as_map(v)?;
        m.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
