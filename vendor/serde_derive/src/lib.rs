//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde.
//!
//! The environment has no registry access, so `syn`/`quote` are not
//! available; this macro parses the derive input token stream directly
//! and emits generated impls by formatting Rust source strings. It
//! supports exactly the shapes this workspace uses:
//!
//! - structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! - tuple / newtype / unit structs,
//! - enums with unit, tuple, and struct variants,
//! - no generic parameters.
//!
//! The external representation mirrors serde_json: named structs are
//! maps, newtype structs are transparent, unit enum variants are
//! strings, and data-carrying variants are single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ----

/// Consumes leading attributes (`#[...]`), folding any `#[serde(...)]`
/// flags into the returned attrs.
fn take_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    merge_serde_attr(&g.stream(), &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

/// If the bracket group is `serde(...)`, records its flags.
fn merge_serde_attr(inner: &TokenStream, attrs: &mut FieldAttrs) {
    let mut it = inner.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    if let Some(TokenTree::Group(args)) = it.next() {
        for t in args.stream() {
            if let TokenTree::Ident(id) = t {
                match id.to_string().as_str() {
                    "skip" => attrs.skip = true,
                    "default" => attrs.default = true,
                    other => panic!("unsupported serde attribute `{other}`"),
                }
            }
        }
    }
}

/// Consumes a visibility qualifier if present.
fn take_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            // `pub(crate)` / `pub(in ...)`
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Skips a type (or discriminant expression) up to a top-level comma,
/// tracking `<...>` nesting so `BTreeMap<K, V>` stays one field.
fn skip_to_comma(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle = 0i32;
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut toks);
        take_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_to_comma(&mut toks);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts tuple-struct / tuple-variant fields (top-level commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut n = 0;
    while toks.peek().is_some() {
        take_attrs(&mut toks);
        take_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_to_comma(&mut toks);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(g.stream()));
                toks.next();
                k
            }
            _ => VariantKind::Unit,
        };
        // Optional `= discriminant`, then the separating comma.
        skip_to_comma(&mut toks);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    take_attrs(&mut toks);
    take_vis(&mut toks);
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic types ({name})");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}`"),
    };
    Input { name, shape }
}

// ---- code generation ----

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                let fname = &f.name;
                let _ = writeln!(
                    s,
                    "m.push((\"{fname}\".to_string(), \
                     ::serde::Serialize::serialize(&self.{fname})));"
                );
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            s,
                            "{name}::{vname} => \
                             ::serde::Value::Str(\"{vname}\".to_string()),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        let inner = if *n == 1 {
                            sers[0].clone()
                        } else {
                            format!("::serde::Value::Seq(vec![{}])", sers.join(", "))
                        };
                        let _ = writeln!(
                            s,
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), {inner})]),",
                            binds = binds.join(", "),
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let sers: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), \
                                     ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            s,
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), \
                             ::serde::Value::Map(vec![{sers}]))]),",
                            binds = binds.join(", "),
                            sers = sers.join(", "),
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_expr(container: &str, f: &Field) -> String {
    if f.attrs.skip {
        return format!("{}: ::core::default::Default::default()", f.name);
    }
    let fallback = if f.attrs.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
    };
    format!(
        "{fname}: match ::serde::map_get({container}, \"{fname}\") {{\n\
         Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
         None => {fallback},\n}}",
        fname = f.name,
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let field_exprs: Vec<String> =
                fields.iter().map(|f| named_field_expr("m", f)).collect();
            format!(
                "let m = ::serde::as_map(v)?;\n\
                 Ok({name} {{\n{}\n}})",
                field_exprs.join(",\n")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                .collect();
            format!(
                "let s = ::serde::as_seq(v, {n})?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = v;\nOk({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(unit_arms, "\"{vname}\" => Ok({name}::{vname}),");
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            data_arms,
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            data_arms,
                            "\"{vname}\" => {{ let s = ::serde::as_seq(inner, {n})?; \
                             Ok({name}::{vname}({})) }},",
                            items.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let field_exprs: Vec<String> =
                            fields.iter().map(|f| named_field_expr("fm", f)).collect();
                        let _ = writeln!(
                            data_arms,
                            "\"{vname}\" => {{ let fm = ::serde::as_map(inner)?; \
                             Ok({name}::{vname} {{ {} }}) }},",
                            field_exprs.join(", ")
                        );
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (k, inner) = &m[0];\n\
                 match k.as_str() {{\n{data_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"expected {name}, got {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
