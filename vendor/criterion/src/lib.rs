//! Vendored, registry-free stand-in for `criterion`.
//!
//! Keeps the upstream API shape (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, `black_box`,
//! `Throughput`) but replaces the statistical machinery with a simple
//! timed loop: each benchmark warms up briefly, then runs enough
//! iterations to fill a short measurement window and reports the mean
//! wall-clock time per iteration. Under `cargo test` (any CLI argument
//! present, e.g. `--test`), benchmarks run exactly one iteration as a
//! smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation (recorded, displayed with results).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    smoke_only: bool,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Any argument (cargo test passes `--test`; users may pass
        // filters) switches to one-iteration smoke mode so test runs
        // stay fast.
        let smoke_only = std::env::args().len() > 1;
        Criterion {
            smoke_only,
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, &id, None, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(c: &mut Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if c.smoke_only {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        eprintln!("  {id}: ok (smoke)");
        return;
    }
    // Calibrate: run once to estimate the per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(10));
    let iters = (c.measure.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    eprintln!("  {id}: {:.3e} s/iter ({iters} iters){rate}", per_iter);
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
