//! Quickstart: run one paper workload under all three CHERI ABIs and
//! print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_sim::{Platform, Runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's platform: a Neoverse-N1-class core with Morello's
    // prototype CHERI artefacts (PCC-blind branch predictor, narrow store
    // buffer, no capability MADD).
    let runner = Runner::new(Platform::morello().with_scale(Scale::Small));

    // 520.omnetpp_r: the paper's memory-intensity champion (MI = 1.164).
    let workload = by_key("omnetpp_520").expect("registered workload");
    println!("workload: {}\n", workload.name);

    let mut hybrid_seconds = None;
    for abi in Abi::ALL {
        if !workload.supports(abi) {
            println!("{abi:>10}: NA (as in the paper)");
            continue;
        }
        let report = runner.run(&workload, abi)?;
        let norm = hybrid_seconds
            .map(|h: f64| report.seconds / h)
            .unwrap_or(1.0);
        if abi == Abi::Hybrid {
            hybrid_seconds = Some(report.seconds);
        }
        println!(
            "{abi:>10}: {:>8.4}s  ({norm:.2}x)  IPC {:.3}  L1D-MR {:.2}%  cap-traffic {:.1}%",
            report.seconds,
            report.derived.ipc,
            report.derived.l1d_miss_rate * 100.0,
            report.derived.cap_traffic_share * 100.0,
        );
    }

    println!("\nTop-down (purecap):");
    let p = runner.run(&workload, Abi::Purecap)?;
    let t = p.topdown;
    println!(
        "  retiring {:.3}  bad-spec {:.3}  frontend {:.3}  backend {:.3}",
        t.retiring, t.bad_speculation, t.frontend_bound, t.backend_bound
    );
    println!(
        "  memory-bound {:.3} (L1 {:.3} / L2 {:.3} / ExtMem {:.3})  core-bound {:.3}",
        t.memory_bound, t.l1_bound, t.l2_bound, t.ext_mem_bound, t.core_bound
    );
    Ok(())
}
