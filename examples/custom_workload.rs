//! Author a workload of your own against the pointer-aware program
//! builder, compile it for all three ABIs, and measure it like the paper
//! measures SPEC: this is the template for extending the study.
//!
//! The kernel below is a classic CHERI stress test: binary-tree insert +
//! search (pointer chasing with allocation).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use cheri_isa::{Abi, Cond, GenericProgram, Interp, InterpConfig, MemSize, ProgramBuilder};
use morello_pmu::{DerivedMetrics, EventCounts};
use morello_uarch::{TimingCore, UarchConfig};

/// node = { key: i64, left: ptr, right: ptr } — laid out per ABI.
fn build(abi: Abi) -> GenericProgram {
    let ps = abi.pointer_size() as i64;
    let (k_off, l_off, r_off) = (0i64, ps, 2 * ps);
    let node_size = (3 * ps) as u64;

    let mut b = ProgramBuilder::new("bst", abi);
    let main = b.function("main", 0, |f| {
        let n = f.vreg();
        f.mov_imm(n, 4000);
        let root = f.vreg();
        f.malloc(root, node_size);
        let seed = f.vreg();
        f.mov_imm(seed, 0x243F6A8885A308D3);
        f.store_int(seed, root, k_off, MemSize::S8);

        // Insert pseudo-random keys.
        f.for_loop(0, n, 1, |f, _| {
            // xorshift
            let t = f.vreg();
            f.lsl(t, seed, 13);
            f.eor(seed, seed, t);
            f.lsr(t, seed, 7);
            f.eor(seed, seed, t);
            let key = f.vreg();
            f.and(key, seed, 0xFFFFFF);

            let cur = f.vreg();
            f.mov(cur, root);
            let inserted = f.label();
            let walk = f.here();
            let ck = f.vreg();
            f.load_int(ck, cur, k_off, MemSize::S8);
            let side = f.vreg();
            f.mov_imm(side, l_off as u64);
            let go_right = f.label();
            let chosen = f.label();
            f.br(Cond::Ltu, key, ck, go_right);
            f.mov_imm(side, r_off as u64);
            f.bind(go_right);
            f.bind(chosen);
            // child = *(cur + side)
            let cp = f.vreg();
            f.ptr_add(cp, cur, side);
            let child = f.vreg();
            f.load_ptr(child, cp, 0);
            let ci = f.vreg();
            f.ptr_to_int(ci, child);
            let attach = f.label();
            f.br(Cond::Eq, ci, 0, attach);
            f.mov(cur, child);
            f.jump(walk);
            f.bind(attach);
            let fresh = f.vreg();
            f.malloc(fresh, node_size);
            f.store_int(key, fresh, k_off, MemSize::S8);
            f.store_ptr(fresh, cp, 0);
            f.jump(inserted);
            f.bind(inserted);
        });
        f.halt();
    });
    b.set_entry(main);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("binary-search-tree stress, per ABI:\n");
    let mut hybrid = None;
    for abi in Abi::ALL {
        let prog = cheri_isa::lower(&build(abi));
        let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
        let res = Interp::new(InterpConfig::default()).run(&prog, &mut core)?;
        let stats = core.finish();
        let m = DerivedMetrics::from_counts(&EventCounts::from_uarch(&stats));
        let norm = hybrid
            .map(|h: u64| stats.cpu_cycles as f64 / h as f64)
            .unwrap_or(1.0);
        if abi == Abi::Hybrid {
            hybrid = Some(stats.cpu_cycles);
        }
        println!(
            "{abi:>10}: {:>9} cycles ({norm:.2}x)  retired {:>8}  IPC {:.3}  cap-loads {:.1}%  heap {} KiB",
            stats.cpu_cycles,
            stats.inst_retired,
            m.ipc,
            m.cap_load_density * 100.0,
            res.heap_stats.live_bytes / 1024,
        );
    }
    println!("\nThe pointer-per-node layout doubles under purecap — watch the heap size.");
    Ok(())
}
