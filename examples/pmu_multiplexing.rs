//! The paper's measurement methodology (§3.2): Morello exposes only six
//! configurable PMU counters, so collecting the full Table 1 event set
//! takes several runs with different counter programmings. This example
//! replays that methodology and shows it reconstructs the single-run
//! ground truth exactly (the simulator is deterministic, like an ideal
//! quiesced system).
//!
//! ```sh
//! cargo run --release --example pmu_multiplexing
//! ```

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_pmu::{DerivedMetrics, MultiplexedSession, PmuEvent};
use morello_sim::{Platform, Runner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let workload = by_key("deepsjeng_531").expect("registered workload");

    let session = MultiplexedSession::plan_full();
    println!(
        "full Table 1 event set: {} events -> {} runs of {} (6 slots, INST_RETIRED anchored)",
        PmuEvent::ALL.len(),
        session.required_runs(),
        workload.name,
    );
    for (i, group) in session.groups().iter().enumerate() {
        let names: Vec<_> = group.iter().map(|e| e.name()).collect();
        println!("  run {}: {}", i + 1, names.join(", "));
    }

    let (counts, runs) = runner.run_multiplexed(&workload, Abi::Purecap)?;
    println!("\ncollected in {runs} runs:");
    for e in [
        PmuEvent::CpuCycles,
        PmuEvent::InstRetired,
        PmuEvent::L1dCacheRefill,
        PmuEvent::CapMemAccessRd,
        PmuEvent::MemAccessRdCtag,
        PmuEvent::DtlbWalk,
    ] {
        println!("  {:<22} {}", e.name(), counts.get(e));
    }

    // The merged counts equal what a single ideal run sees.
    let single = runner.run(&workload, Abi::Purecap)?;
    assert_eq!(counts, single.counts);
    println!("\nmultiplexed == single-run ground truth ✓");

    let m = DerivedMetrics::from_counts(&counts);
    println!(
        "derived: IPC {:.3}, cap load density {:.1}%, memory intensity {:.3} ({})",
        m.ipc,
        m.cap_load_density * 100.0,
        m.memory_intensity,
        m.intensity_class()
    );
    Ok(())
}
