//! The CHERI capability model, hands on: derivation, bounds enforcement,
//! sealing, compression, and the representability rules that shape
//! CHERI-aware allocators.
//!
//! ```sh
//! cargo run --release --example capability_playground
//! ```

use cheri_cap::{
    representable_alignment_mask, round_representable_length, Capability, FaultKind, Perms,
};

fn main() {
    // Everything derives monotonically from a root capability.
    let root = Capability::root_rw();
    println!("root: {root}");

    // A heap object: exact bounds for a small allocation.
    let obj = root.set_bounds_exact(0x4000, 64).unwrap();
    println!("64-byte object: {obj}");

    // In-bounds access: fine. One byte past the end: a bounds fault.
    assert!(obj.check_access(0x4000, 64, Perms::LOAD).is_ok());
    let fault = obj.check_access(0x4040, 1, Perms::LOAD).unwrap_err();
    println!("out-of-bounds: {fault}");
    assert_eq!(fault.kind, FaultKind::BoundsViolation);

    // Pointer arithmetic may leave bounds (C idioms), but going far enough
    // that the compressed bounds can't be reconstructed clears the tag.
    let past_end = obj.inc_address(64);
    assert!(past_end.tag(), "one-past-the-end stays representable");
    let wild = obj.inc_address(1 << 20);
    assert!(!wild.tag(), "wild pointers lose their tag");
    println!("wild pointer: {wild}");

    // Monotonicity: a narrowed capability cannot regrow.
    let narrow = obj.set_bounds_exact(0x4010, 16).unwrap();
    let err = narrow.set_bounds_exact(0x4000, 64).unwrap_err();
    println!("regrow attempt: {err}");

    // Permissions only shrink.
    let ro = obj.and_perms(Perms::LOAD | Perms::LOAD_CAP).unwrap();
    assert!(ro.check_access(0x4000, 8, Perms::STORE).is_err());

    // Sealing: an opaque, unforgeable handle until unsealed.
    let sealer = Capability::root_all()
        .set_bounds_exact(0, 4096)
        .unwrap()
        .set_address(42);
    let sealed = obj.seal(&sealer).unwrap();
    println!("sealed handle: {sealed}");
    assert!(sealed.check_access(0x4000, 8, Perms::LOAD).is_err());
    assert_eq!(sealed.unseal(&sealer).unwrap(), obj);

    // Compression: 129 bits in memory — and why big mallocs get padded.
    let cc = obj.to_compressed();
    println!(
        "compressed image: meta={:#018x} addr={:#018x}",
        cc.meta, cc.addr
    );
    assert_eq!(Capability::from_compressed(cc, obj.tag()), obj);

    for req in [100u64, 5000, 1 << 20, (1 << 20) + 1, 100 << 20] {
        let len = round_representable_length(req);
        let align = !representable_alignment_mask(req) + 1;
        println!("malloc({req:>10}) -> padded {len:>10}, base alignment {align:>6}");
    }
}
