//! Quick timing split: interp-with-NullSink vs interp-with-TimingCore.
use cheri_isa::{lower, Abi, Interp, InterpConfig, NullSink};
use cheri_workloads::{by_key, Scale};
use morello_uarch::{TimingCore, UarchConfig};
use std::time::Instant;

fn main() {
    let scale = match std::env::var("SCALE").as_deref() {
        Ok("default") => Scale::Default,
        Ok("small") => Scale::Small,
        _ => Scale::Test,
    };
    for key in [
        "lbm_519",
        "omnetpp_520",
        "xz_557",
        "quickjs",
        "alloc_stress",
    ] {
        let w = by_key(key).unwrap();
        for abi in [Abi::Hybrid, Abi::Purecap] {
            if !w.supports(abi) {
                continue;
            }
            let prog = lower(&w.build(abi, scale));
            let interp = Interp::new(InterpConfig::default());
            // warmup
            let r = interp.run(&prog, &mut NullSink).unwrap();
            let t0 = Instant::now();
            for _ in 0..5 {
                interp.run(&prog, &mut NullSink).unwrap();
            }
            let null_t = t0.elapsed().as_secs_f64() / 5.0;
            let t0 = Instant::now();
            for _ in 0..5 {
                let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
                interp.run(&prog, &mut core).unwrap();
                core.finish();
            }
            let core_t = t0.elapsed().as_secs_f64() / 5.0;
            println!(
                "{key:14} {abi:10} retired={:9} null={:7.1}M/s timed={:7.1}M/s sink_share={:.0}%",
                r.retired,
                r.retired as f64 / null_t / 1e6,
                r.retired as f64 / core_t / 1e6,
                (core_t - null_t) / core_t * 100.0
            );
        }
    }
}
