//! The paper's §5 projection: how much of the purecap overhead is the
//! Morello *prototype* rather than CHERI itself? Flip the three documented
//! artefacts — PCC-aware branch prediction, a capability-wide store
//! buffer, capability MADD — and re-measure.
//!
//! ```sh
//! cargo run --release --example whatif_microarch
//! ```

use cheri_workloads::{by_key, Scale};
use morello_sim::{project, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::morello().with_scale(Scale::Test);
    println!("purecap slowdown vs hybrid, per microarchitecture:\n");
    println!(
        "{:<18} {:>9} {:>13} {:>13} {:>10} {:>11}",
        "workload", "morello", "+pcc-aware", "+wide cap SB", "+cap MADD", "projected"
    );
    for key in ["xalancbmk_523", "omnetpp_520", "leela_541", "lbm_519"] {
        let w = by_key(key).expect("registered workload");
        let row = project(platform, &w)?;
        println!(
            "{:<18} {:>8.3}x {:>12.3}x {:>12.3}x {:>9.3}x {:>10.3}x",
            row.name,
            row.morello_slowdown,
            row.pcc_aware_slowdown,
            row.wide_sb_slowdown,
            row.cap_madd_slowdown,
            row.projected_slowdown,
        );
    }
    println!(
        "\nReading: the gap between `morello` and `projected` is overhead a\n\
         CHERI-native design removes; what remains is the price of 128-bit\n\
         capabilities themselves (footprint, tag traffic, extra µops)."
    );
    Ok(())
}
