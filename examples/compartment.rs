//! Compartmentalisation at the ISA level: sealed capabilities as opaque,
//! unforgeable handles across a trust boundary.
//!
//! The paper motivates SQLite partly as "a compelling use case for
//! evaluating CHERI's compartmentalization capabilities". This example
//! shows the primitive that makes that possible: a *trusted* module hands
//! an *untrusted* module a **sealed** capability to a secret buffer. The
//! untrusted code can store, pass and return the handle — but any attempt
//! to dereference it faults with a seal violation. Only the trusted gate,
//! holding the loader-provided sealing authority (CheriBSD installs such
//! a root for userspace sealing), can unseal and use it.
//!
//! ```sh
//! cargo run --release --example compartment
//! ```

use cheri_isa::{
    lower, Abi, CapOpKind, Cond, GlobalDef, Interp, InterpConfig, InterpError, MemSize, NullSink,
    ProgramBuilder, PtrInit,
};

const SEAL_OTYPE: u16 = 77;

/// Builds the two-compartment program. When `attack` is set, the
/// untrusted code tries to dereference the sealed handle directly.
fn build(attack: bool) -> cheri_isa::Program {
    let mut b = ProgramBuilder::new("compartment", Abi::Purecap);
    let untrusted = b.module("untrusted_plugin");

    // The loader installs the sealing authority here at startup.
    let g_auth = b.add_global(GlobalDef {
        name: "sealing_root".into(),
        size: 16,
        init: Vec::new(),
        ptr_inits: vec![(0, PtrInit::SealRoot(SEAL_OTYPE))],
        is_const: false,
        align: 16,
    });

    // Trusted gate: unseals the handle and reads the secret on behalf of
    // the caller.
    let gate = b.function("trusted_gate", 1, |f| {
        let handle = f.arg(0);
        let authp = f.vreg();
        f.lea_global(authp, g_auth, 0);
        let auth = f.vreg();
        f.load_ptr(auth, authp, 0);
        let secret = f.vreg();
        f.unseal(secret, handle, auth);
        let v = f.vreg();
        f.load_int(v, secret, 0, MemSize::S8);
        f.ret(Some(v));
    });

    // Untrusted plugin: receives the sealed handle.
    let plugin = b.function_in(untrusted, "plugin_main", 1, move |f| {
        let handle = f.arg(0);
        if attack {
            // Try to use the handle directly: seal violation.
            let stolen = f.vreg();
            f.load_int(stolen, handle, 0, MemSize::S8);
            f.ret(Some(stolen));
        } else {
            // Play by the rules: inspect harmless metadata, then ask the
            // gate.
            let tag = f.vreg();
            f.cap_op(CapOpKind::GetTag, tag, handle, 0);
            let len = f.vreg();
            f.cap_op(CapOpKind::GetLen, len, handle, 0);
            let ok = f.label();
            f.br(Cond::Eq, tag, 1, ok);
            f.ret(Some(tag)); // untagged handle: refuse
            f.bind(ok);
            let v = f.vreg();
            f.call(gate, &[handle], Some(v));
            f.add(v, v, len);
            f.ret(Some(v));
        }
    });

    let main = b.function("main", 0, |f| {
        // The secret.
        let secret = f.vreg();
        f.malloc(secret, 64);
        let value = f.vreg();
        f.mov_imm(value, 0x5EC2E7);
        f.store_int(value, secret, 0, MemSize::S8);

        // Seal it into an opaque handle under the loader's authority.
        let authp = f.vreg();
        f.lea_global(authp, g_auth, 0);
        let auth = f.vreg();
        f.load_ptr(auth, authp, 0);
        let handle = f.vreg();
        f.seal(handle, secret, auth);

        // Hand it to the untrusted plugin (cross-module call).
        let r = f.vreg();
        f.call(plugin, &[handle], Some(r));
        f.halt_code(r);
    });
    b.set_entry(main);
    lower(&b.build())
}

fn library_demo() {
    use cheri_cap::{Capability, FaultKind, Perms};
    let secret = Capability::root_rw().set_bounds_exact(0x9000, 64).unwrap();
    let authority = Capability::root_all()
        .set_bounds_exact(0, 1024)
        .unwrap()
        .set_address(77);
    let handle = secret.seal(&authority).unwrap();
    // The handle is useless to its holder...
    assert_eq!(
        handle
            .check_access(0x9000, 8, Perms::LOAD)
            .unwrap_err()
            .kind,
        FaultKind::SealViolation
    );
    println!("sealed handle is opaque: {handle}");
    // ...until the gate unseals it.
    let back = handle.unseal(&authority).unwrap();
    assert!(back.check_access(0x9000, 8, Perms::LOAD).is_ok());
    println!("gate unsealed it: {back}");
}

fn main() {
    println!("== library-level compartment (explicit authority) ==");
    library_demo();

    println!("\n== ISA-level compartment ==");
    match Interp::new(InterpConfig::default()).run(&build(false), &mut NullSink) {
        Ok(r) => println!(
            "well-behaved plugin, via gate: secret+len = {:#x}",
            r.exit_code
        ),
        Err(e) => println!("unexpected: {e}"),
    }
    match Interp::new(InterpConfig::default()).run(&build(true), &mut NullSink) {
        Ok(r) => println!("ATTACK SUCCEEDED?! exit={:#x}", r.exit_code),
        Err(InterpError::Fault { fault, func, .. }) => {
            println!("attack blocked in `{func}`: {fault}")
        }
        Err(e) => println!("attack blocked: {e}"),
    }
}
