//! Microbenchmark: per-event cost of TimingCore by event-mix variant.
use cheri_isa::{BranchKind, EventSink, InstClass, OpClass, RetiredEvent, RetiredInfo};
use morello_uarch::{TimingCore, UarchConfig};
use std::time::Instant;

const N: u64 = 4_000_000;

fn run(name: &str, mut ev: impl FnMut(u64) -> RetiredEvent) {
    let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
    // warmup
    for i in 0..100_000 {
        let e = ev(i);
        core.retire_classified(e, OpClass::of(e.pc, &e.info));
    }
    let t0 = Instant::now();
    for i in 0..N {
        let e = ev(i);
        core.retire_classified(e, OpClass::of(e.pc, &e.info));
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{name:28} {:6.1}M ev/s  {:5.1} ns/ev",
        N as f64 / dt / 1e6,
        dt / N as f64 * 1e9
    );
    std::hint::black_box(core.finish());
}

fn main() {
    // Sequential code in a 1 KiB loop: all IntAlu.
    run("intalu/loop", |i| RetiredEvent {
        pc: 0x1000 + (i % 256) * 4,
        info: RetiredInfo::Simple(InstClass::Dp),
    });
    // Loads, all to one hot line (L1 hit, same page).
    run("load/hot-line", |i| RetiredEvent {
        pc: 0x1000 + (i % 256) * 4,
        info: RetiredInfo::Load {
            addr: 0x10000,
            size: 8,
            is_cap: false,
            dep_load: false,
        },
    });
    // Loads streaming over 64 MiB (misses to DRAM every 8th).
    run("load/stream-64M", |i| RetiredEvent {
        pc: 0x1000 + (i % 256) * 4,
        info: RetiredInfo::Load {
            addr: 0x100_0000 + (i * 8) % (64 << 20),
            size: 8,
            is_cap: false,
            dep_load: false,
        },
    });
    // Loads over a 256 KiB set (fits L2, misses L1).
    run("load/l2-set", |i| RetiredEvent {
        pc: 0x1000 + (i % 256) * 4,
        info: RetiredInfo::Load {
            addr: 0x100_0000 + (i * 64) % (256 << 10),
            size: 8,
            is_cap: false,
            dep_load: false,
        },
    });
    // Stores to one hot line.
    run("store/hot-line", |i| RetiredEvent {
        pc: 0x1000 + (i % 256) * 4,
        info: RetiredInfo::Store {
            addr: 0x10000,
            size: 8,
            is_cap: false,
        },
    });
    // Taken branch closing a 64-inst loop.
    run("branch/loop", |i| {
        if i % 16 == 15 {
            RetiredEvent {
                pc: 0x1000 + 15 * 4,
                info: RetiredInfo::Branch {
                    kind: BranchKind::Immediate,
                    taken: true,
                    target: 0x1000,
                    pcc_change: false,
                },
            }
        } else {
            RetiredEvent {
                pc: 0x1000 + (i % 16) * 4,
                info: RetiredInfo::Simple(InstClass::Dp),
            }
        }
    });
}
