//! Property tests for the revocation subsystem: allocator padding
//! cross-checked against `cheri-cap` representability, and tag-sweep
//! exactness (revoked granules lose their tags, nothing else does).

use cheri_cap::{
    representable_alignment, representable_alignment_mask, round_representable_length, Capability,
};
use cheri_mem::{HeapAllocator, TaggedMemory, CAP_GRANULE};
use cheri_revoke::{RevocationEpoch, RevokingHeap, StrategyKind};
use proptest::prelude::*;
use std::collections::HashSet;

const LO: u64 = 0x4010_0000;
const HI: u64 = 0x6000_0000;
const BM: u64 = 0x4008_0000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every capability-discipline allocation is padded exactly per the
    /// compressed-bounds contract: `padded` is the representable rounding
    /// of the size class, the base honours the CRAM alignment mask, and
    /// exact bounds always encode.
    #[test]
    fn padding_matches_cap_representability(
        sizes in proptest::collection::vec(1u64..(8 << 20), 1..40),
        swept in any::<bool>(),
    ) {
        let kind = if swept {
            StrategyKind::swept_bytes(1 << 30) // never fires; layout only
        } else {
            StrategyKind::CapabilityPadded
        };
        let mut h = RevokingHeap::new(LO, HI, BM, kind);
        let root = Capability::root_rw();
        for &size in &sizes {
            let a = h.malloc(size).unwrap();
            let usable = HeapAllocator::size_class(size);
            prop_assert_eq!(a.usable, usable);
            prop_assert_eq!(a.padded, round_representable_length(usable));
            let mask = representable_alignment_mask(a.padded);
            prop_assert_eq!(a.addr & !mask, 0, "base obeys the CRAM mask");
            prop_assert_eq!(
                a.addr % representable_alignment(a.padded).max(16), 0,
                "base obeys the alignment in bytes"
            );
            let cap = root.set_bounds_exact(a.addr, a.padded);
            prop_assert!(cap.is_ok(), "size={} alloc={:?}: {:?}", size, a, cap);
        }
    }

    /// A tag sweep clears exactly the tags of capabilities whose base
    /// lies in a revoked range — no survivor among stale capabilities,
    /// no collateral damage among live ones, and data bits untouched.
    #[test]
    fn sweep_clears_exactly_revoked_granules(
        slots in proptest::collection::vec(
            ((0u64..2048), (0u64..64), any::<bool>()),
            1..80
        ),
        ranges in proptest::collection::vec(0u64..60, 1..6),
    ) {
        let mut mem = TaggedMemory::new();
        let root = Capability::root_rw();
        // Revoked ranges: disjoint 1 KiB blocks inside the arena.
        let blocks: HashSet<u64> = ranges.iter().map(|r| LO + r * 1024).collect();
        let ranges: Vec<(u64, u64)> = blocks.iter().map(|&b| (b, 1024)).collect();

        // Store capabilities at distinct granules; each points at some
        // 1 KiB block, tagged or not.
        let mut stored: Vec<(u64, u64, bool)> = Vec::new();
        let mut used = HashSet::new();
        for &(slot, target, tagged) in &slots {
            let addr = LO + slot * CAP_GRANULE;
            if !used.insert(addr) {
                continue;
            }
            let base = LO + target * 1024;
            let cap = root.set_bounds_exact(base, 512).unwrap();
            mem.store_cap(addr, cap.to_compressed(), tagged).unwrap();
            stored.push((addr, base, tagged));
        }

        let eng = RevocationEpoch::new(BM, LO);
        let out = eng.sweep(&mut mem, &ranges, LO, LO + (1 << 21));

        let mut expect_cleared = 0u64;
        for &(addr, base, tagged) in &stored {
            let (cc, tag) = mem.peek_cap(addr).unwrap();
            let should_revoke = tagged && blocks.contains(&base);
            if should_revoke {
                expect_cleared += 1;
            }
            prop_assert_eq!(tag, tagged && !should_revoke,
                "granule {:#x} (base {:#x})", addr, base);
            // Sweeps only clear tags; the capability image is untouched.
            let img = root.set_bounds_exact(base, 512).unwrap().to_compressed();
            prop_assert_eq!(cc, img);
        }
        prop_assert_eq!(out.tags_cleared, expect_cleared);
        prop_assert!(out.granules_visited >= out.tags_cleared);
    }
}
