//! The strategy-driven heap: `cheri-mem`'s allocator mechanics with a
//! pluggable discipline and a revocation epoch engine attached.

use crate::epoch::{RevocationEpoch, SweepOutcome};
use crate::strategy::{AllocStrategy, EpochAction, StrategyKind};
use cheri_mem::{AllocError, Allocation, HeapAllocator, HeapStats, TaggedMemory};
use std::collections::{HashMap, VecDeque};

/// What a [`RevokingHeap::free`] did beyond releasing the block.
#[derive(Debug, Default)]
pub struct FreeOutcome {
    /// The tag sweep an epoch trigger performed, if any — the caller
    /// replays its accesses through the timing model.
    pub sweep: Option<SweepOutcome>,
}

/// A size-class heap allocator over a fixed arena whose padding,
/// quarantine, and revocation behaviour is decided by an
/// [`AllocStrategy`].
///
/// Mechanically this mirrors [`cheri_mem::HeapAllocator`] (same size
/// classes, free lists, and bump arena, so the
/// [`StrategyKind::CapabilityPadded`] discipline reproduces it
/// address-for-address); the difference is the policy object and the
/// attached [`RevocationEpoch`] engine.
pub struct RevokingHeap {
    strategy: Box<dyn AllocStrategy + Send + Sync>,
    kind: StrategyKind,
    start: u64,
    end: u64,
    bump: u64,
    free_lists: HashMap<u64, Vec<u64>>,
    live: HashMap<u64, Allocation>,
    quarantine: VecDeque<(u64, u64)>,
    epoch: RevocationEpoch,
    stats: HeapStats,
}

impl core::fmt::Debug for RevokingHeap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RevokingHeap")
            .field("strategy", &self.strategy.name())
            .field("arena", &(self.start..self.end))
            .field("live", &self.live.len())
            .field("quarantined", &self.quarantine.len())
            .finish()
    }
}

impl RevokingHeap {
    /// Creates a heap over the arena `[start, end)` with the revocation
    /// bitmap window at `bitmap_base` (outside the arena).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not 16-byte aligned or `end <= start`.
    pub fn new(start: u64, end: u64, bitmap_base: u64, kind: StrategyKind) -> RevokingHeap {
        assert!(
            start.is_multiple_of(16),
            "arena start must be 16-byte aligned"
        );
        assert!(end > start, "empty arena");
        RevokingHeap {
            strategy: kind.strategy(),
            kind,
            start,
            end,
            bump: start,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            quarantine: VecDeque::new(),
            epoch: RevocationEpoch::new(bitmap_base, start),
            stats: HeapStats::default(),
        }
    }

    /// The discipline selector this heap was built with.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Cumulative statistics (including quarantine occupancy and sweep
    /// counters).
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Number of currently live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of blocks currently in quarantine.
    pub fn quarantined_blocks(&self) -> usize {
        self.quarantine.len()
    }

    /// The epoch engine (bitmap geometry).
    pub fn epoch_engine(&self) -> &RevocationEpoch {
        &self.epoch
    }

    /// Allocates `size` bytes under the configured discipline.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the arena is exhausted.
    pub fn malloc(&mut self, size: u64) -> Result<Allocation, AllocError> {
        let usable = HeapAllocator::size_class(size);
        let (padded, align) = self.strategy.layout(usable);
        let addr = self.free_lists.get_mut(&padded).and_then(|list| list.pop());
        let addr = match addr {
            Some(a) => a,
            None => {
                let base = (self.bump + align - 1) & !(align - 1);
                let next = base
                    .checked_add(padded)
                    .ok_or(AllocError::OutOfMemory { requested: size })?;
                if next > self.end {
                    return Err(AllocError::OutOfMemory { requested: size });
                }
                self.bump = next;
                self.stats.arena_used = self.bump - self.start;
                base
            }
        };

        let alloc = Allocation {
            addr,
            usable,
            padded,
        };
        self.live.insert(addr, alloc);
        self.stats.total_allocs += 1;
        self.stats.requested_bytes += size;
        self.stats.live_bytes += padded;
        self.stats.padding_bytes += padded - usable;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        Ok(alloc)
    }

    /// Releases a block; may trigger a revocation epoch per the
    /// discipline's thresholds.
    ///
    /// # Errors
    ///
    /// [`AllocError::DoubleFreeQuarantined`] for a double free of a block
    /// still in quarantine, [`AllocError::InvalidFree`] for a wild free.
    pub fn free(&mut self, mem: &mut TaggedMemory, addr: u64) -> Result<FreeOutcome, AllocError> {
        let alloc = match self.live.remove(&addr) {
            Some(a) => a,
            None if self.quarantine.iter().any(|&(a, _)| a == addr) => {
                return Err(AllocError::DoubleFreeQuarantined { addr });
            }
            None => return Err(AllocError::InvalidFree { addr }),
        };
        self.stats.total_frees += 1;
        self.stats.live_bytes -= alloc.padded;

        if !self.strategy.quarantines() {
            self.free_lists.entry(alloc.padded).or_default().push(addr);
            return Ok(FreeOutcome::default());
        }

        self.quarantine.push_back((addr, alloc.padded));
        self.stats.quarantine_bytes += alloc.padded;
        self.stats.quarantine_blocks += 1;
        self.stats.quarantine_bytes_hwm = self
            .stats
            .quarantine_bytes_hwm
            .max(self.stats.quarantine_bytes);
        self.stats.quarantine_blocks_hwm = self
            .stats
            .quarantine_blocks_hwm
            .max(self.stats.quarantine_blocks);
        if self.strategy.maintains_bitmap() {
            self.epoch.mark_range(mem, addr, alloc.padded, true);
        }

        let action = self
            .strategy
            .epoch_after_free(self.stats.quarantine_bytes, self.quarantine.len());
        match action {
            None => Ok(FreeOutcome::default()),
            Some(EpochAction::SilentDrain { count }) => {
                self.stats.revocation_epochs += 1;
                for _ in 0..count {
                    if let Some((a, sz)) = self.quarantine.pop_front() {
                        self.recycle(mem, a, sz);
                    }
                }
                Ok(FreeOutcome::default())
            }
            Some(EpochAction::TagSweep) => {
                self.stats.revocation_epochs += 1;
                let ranges: Vec<(u64, u64)> = self.quarantine.iter().copied().collect();
                let mut sweep = self.epoch.sweep(mem, &ranges, self.start, self.bump);
                while let Some((a, sz)) = self.quarantine.pop_front() {
                    sweep.bytes_recycled += sz;
                    sweep.blocks_recycled += 1;
                    self.recycle(mem, a, sz);
                }
                self.stats.sweep_granules_visited += sweep.granules_visited;
                self.stats.sweep_tags_cleared += sweep.tags_cleared;
                Ok(FreeOutcome { sweep: Some(sweep) })
            }
        }
    }

    fn recycle(&mut self, mem: &mut TaggedMemory, addr: u64, size: u64) {
        self.stats.quarantine_bytes -= size;
        self.stats.quarantine_blocks -= 1;
        if self.strategy.maintains_bitmap() {
            self.epoch.mark_range(mem, addr, size, false);
        }
        self.free_lists.entry(size).or_default().push(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_mem::AllocMode;

    const LO: u64 = 0x4010_0000;
    const HI: u64 = 0x5000_0000;
    const BM: u64 = 0x4008_0000;

    #[test]
    fn capability_padded_matches_legacy_allocator_addresses() {
        let mut legacy = HeapAllocator::new(LO, HI, AllocMode::Capability);
        let mut new = RevokingHeap::new(LO, HI, BM, StrategyKind::CapabilityPadded);
        let mut mem = TaggedMemory::new();
        let mut live = Vec::new();
        for i in 0..800u64 {
            let sz = 16 + (i * 977) % 60_000;
            let a = legacy.malloc(sz).unwrap();
            let b = new.malloc(sz).unwrap();
            assert_eq!(a, b, "allocation {i} diverged");
            live.push(a.addr);
            if i % 3 == 0 {
                let victim = live.remove((i as usize * 7) % live.len());
                legacy.free(victim).unwrap();
                new.free(&mut mem, victim).unwrap();
            }
        }
        assert_eq!(legacy.stats(), new.stats());
        assert_eq!(mem.pages_touched(), 0, "padded discipline keeps no bitmap");
    }

    #[test]
    fn classic_recycles_immediately_without_traffic() {
        let mut h = RevokingHeap::new(LO, HI, BM, StrategyKind::Classic);
        let mut mem = TaggedMemory::new();
        let a = h.malloc(64).unwrap();
        let out = h.free(&mut mem, a.addr).unwrap();
        assert!(out.sweep.is_none());
        let b = h.malloc(64).unwrap();
        assert_eq!(a.addr, b.addr);
        assert_eq!(h.stats().revocation_epochs, 0);
        assert_eq!(h.stats().quarantine_blocks_hwm, 0);
    }

    #[test]
    fn swept_epoch_triggers_on_byte_threshold_and_recycles() {
        let mut h = RevokingHeap::new(LO, HI, BM, StrategyKind::swept_bytes(4096));
        let mut mem = TaggedMemory::new();
        let mut swept = None;
        for _ in 0..200 {
            let a = h.malloc(256).unwrap();
            mem.write_u64(a.addr, 1).unwrap(); // touch the heap page
            if let Some(s) = h.free(&mut mem, a.addr).unwrap().sweep {
                swept = Some(s);
                break;
            }
        }
        let s = swept.expect("byte threshold must trigger an epoch");
        assert!(s.blocks_recycled > 0);
        assert!(s.pages_visited > 0);
        assert!(h.stats().revocation_epochs == 1);
        assert_eq!(h.stats().quarantine_blocks, 0, "sweep drains everything");
        // Freed blocks are reusable: the next malloc comes off the free
        // lists without growing the arena.
        let used = h.stats().arena_used;
        h.malloc(256).unwrap();
        assert_eq!(h.stats().arena_used, used, "post-sweep reuse, not bump");
    }

    #[test]
    fn sweep_revokes_stale_heap_capabilities() {
        use cheri_cap::Capability;
        let mut h = RevokingHeap::new(LO, HI, BM, StrategyKind::swept_bytes(1024));
        let mut mem = TaggedMemory::new();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        // Store a capability to block `a` inside block `b` (a dangling
        // pointer once `a` is freed).
        let cap_a = Capability::root_rw()
            .set_bounds_exact(a.addr, a.padded)
            .unwrap();
        mem.store_cap(b.addr, cap_a.to_compressed(), true).unwrap();
        h.free(&mut mem, a.addr).unwrap();
        // Flood frees until the epoch fires.
        let mut sweep = None;
        for _ in 0..100 {
            let x = h.malloc(512).unwrap();
            if let Some(s) = h.free(&mut mem, x.addr).unwrap().sweep {
                sweep = Some(s);
                break;
            }
        }
        let s = sweep.expect("epoch fires");
        assert!(s.tags_cleared >= 1);
        assert!(!mem.peek_cap(b.addr).unwrap().1, "dangling cap revoked");
    }
}
