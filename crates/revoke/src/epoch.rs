//! The revocation epoch engine: per-granule bitmap maintenance and the
//! load-side tag sweep.

use cheri_cap::Capability;
use cheri_mem::{TaggedMemory, CAP_GRANULE, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// One memory access performed by a sweep, for the interpreter to replay
/// as retired load/store events so the traffic is charged through the
/// cache/TLB hierarchy (sweeps cost cycles and pollute L1D/L2, as on
/// real Cornucopia).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Accessed address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Store (true) or load (false).
    pub write: bool,
    /// Capability-width, tag-checked access.
    pub is_cap: bool,
}

/// What a tag sweep did: the counters feed the `Sweep*` PMU events and
/// `accesses` is replayed through the timing model.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Heap pages the sweep walked.
    pub pages_visited: u64,
    /// Capability granules probed: every granule of every walked page —
    /// the sweep loads each capability-sized word, CHERIvoke's
    /// load-side scan.
    pub granules_visited: u64,
    /// Stale capability tags cleared (revocations).
    pub tags_cleared: u64,
    /// Bytes returned from quarantine to the free lists.
    pub bytes_recycled: u64,
    /// Blocks returned from quarantine to the free lists.
    pub blocks_recycled: u64,
    /// The sweep's memory traffic, in deterministic address order.
    pub accesses: Vec<MemAccess>,
}

/// Size of the revocation-bitmap window in bytes (one bit per 16-byte
/// granule; the window wraps, like the interpreter's metadata lines).
pub const BITMAP_BYTES: u64 = 1 << 19;

/// The epoch engine: owns the bitmap geometry and performs sweeps.
///
/// The per-granule revocation bitmap lives *in* [`TaggedMemory`] at
/// `bitmap_base` (a [`BITMAP_BYTES`]-sized window below the arena), so
/// bitmap maintenance has a real memory footprint, exactly like
/// CheriBSD's shadow bitmap.
#[derive(Clone, Copy, Debug)]
pub struct RevocationEpoch {
    bitmap_base: u64,
    arena_lo: u64,
}

impl RevocationEpoch {
    /// Creates an engine for an arena starting at `arena_lo`, with the
    /// bitmap window at `bitmap_base`.
    pub fn new(bitmap_base: u64, arena_lo: u64) -> RevocationEpoch {
        RevocationEpoch {
            bitmap_base,
            arena_lo,
        }
    }

    /// Address of the bitmap word holding the bit for granule `addr`.
    pub fn bitmap_word(&self, addr: u64) -> u64 {
        let bit = (addr.wrapping_sub(self.arena_lo)) / CAP_GRANULE;
        let byte = (bit / 8) % BITMAP_BYTES;
        self.bitmap_base + (byte & !7)
    }

    fn bitmap_bit(&self, addr: u64) -> (u64, u32) {
        let bit = (addr.wrapping_sub(self.arena_lo)) / CAP_GRANULE;
        let byte = (bit / 8) % BITMAP_BYTES;
        (
            self.bitmap_base + (byte & !7),
            ((byte & 7) * 8 + bit % 8) as u32,
        )
    }

    /// Marks (`set = true`) or clears every granule of `[addr,
    /// addr + len)` in the bitmap, one functional word access per touched
    /// bitmap word.
    pub fn mark_range(&self, mem: &mut TaggedMemory, addr: u64, len: u64, set: bool) {
        let mut g = addr;
        let end = addr.saturating_add(len);
        let mut pending: Option<(u64, u64)> = None;
        while g < end {
            let (word, bit) = self.bitmap_bit(g);
            match pending {
                Some((w, ref mut bits)) if w == word => *bits |= 1 << bit,
                _ => {
                    if let Some((w, bits)) = pending.take() {
                        Self::apply_word(mem, w, bits, set);
                    }
                    pending = Some((word, 1u64 << bit));
                }
            }
            g += CAP_GRANULE;
        }
        if let Some((w, bits)) = pending {
            Self::apply_word(mem, w, bits, set);
        }
    }

    fn apply_word(mem: &mut TaggedMemory, word: u64, bits: u64, set: bool) {
        let cur = mem.read_u64(word).expect("bitmap window in range");
        let new = if set { cur | bits } else { cur & !bits };
        mem.write_u64(word, new).expect("bitmap window in range");
    }

    /// Performs a load-side tag sweep of `[span_lo, span_hi)`: probes the
    /// tags of every touched heap page, loads each tagged capability, and
    /// clears the tag of every capability whose *base* points into one of
    /// the quarantined `ranges` (`(base, len)` pairs, any order).
    ///
    /// The returned [`SweepOutcome`] carries the traffic to replay
    /// through the timing model; the tag clears have already been applied
    /// to `mem`.
    pub fn sweep(
        &self,
        mem: &mut TaggedMemory,
        ranges: &[(u64, u64)],
        span_lo: u64,
        span_hi: u64,
    ) -> SweepOutcome {
        let mut sorted: Vec<(u64, u64)> = ranges.to_vec();
        sorted.sort_unstable();
        let revoked = |addr: u64| -> bool {
            match sorted.binary_search_by(|&(base, _)| base.cmp(&addr)) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => {
                    let (base, len) = sorted[i - 1];
                    addr < base + len
                }
            }
        };

        let mut out = SweepOutcome::default();
        for page in mem.touched_pages_in(span_lo, span_hi) {
            out.pages_visited += 1;
            out.granules_visited += PAGE_SIZE / CAP_GRANULE;
            // One bitmap-word load per page: is anything here quarantined?
            out.accesses.push(MemAccess {
                addr: self.bitmap_word(page),
                size: 8,
                write: false,
                is_cap: false,
            });
            // CHERIvoke-style load-side scan: one capability-width load
            // per granule (the tag rides along with the load), with a
            // tag-clearing store for every stale capability found. This
            // per-granule traffic is what a larger quarantine amortises.
            let tagged = mem.tagged_granules_in(page, page + PAGE_SIZE);
            let mut next_tagged = 0;
            let mut granule = page;
            while granule < page + PAGE_SIZE {
                let is_tagged = tagged.get(next_tagged) == Some(&granule);
                out.accesses.push(MemAccess {
                    addr: granule,
                    size: 16,
                    write: false,
                    is_cap: is_tagged,
                });
                if is_tagged {
                    next_tagged += 1;
                    let (cc, tag) = mem.peek_cap(granule).expect("tagged page is touched");
                    let cap = Capability::from_compressed(cc, tag);
                    if revoked(cap.base()) {
                        mem.clear_tag(granule);
                        out.tags_cleared += 1;
                        out.accesses.push(MemAccess {
                            addr: granule,
                            size: 16,
                            write: true,
                            is_cap: false,
                        });
                    }
                }
                granule += CAP_GRANULE;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_marks_roundtrip() {
        let mut mem = TaggedMemory::new();
        let eng = RevocationEpoch::new(0x1000, 0x10_0000);
        eng.mark_range(&mut mem, 0x10_0000, 256, true);
        let w = eng.bitmap_word(0x10_0000);
        assert_eq!(mem.read_u64(w).unwrap() & 0xFFFF, 0xFFFF, "16 granules");
        eng.mark_range(&mut mem, 0x10_0000, 256, false);
        assert_eq!(mem.read_u64(w).unwrap(), 0);
    }

    #[test]
    fn sweep_is_deterministic_and_exact() {
        let mut mem = TaggedMemory::new();
        let eng = RevocationEpoch::new(0x1000, 0x10_0000);
        let root = Capability::root_rw();
        let stale = root.set_bounds_exact(0x10_0000, 64).unwrap();
        let live = root.set_bounds_exact(0x10_1000, 64).unwrap();
        mem.store_cap(0x10_0000, stale.to_compressed(), true)
            .unwrap();
        mem.store_cap(0x10_2000, stale.to_compressed(), true)
            .unwrap();
        mem.store_cap(0x10_2010, live.to_compressed(), true)
            .unwrap();
        let out = eng.sweep(&mut mem, &[(0x10_0000, 64)], 0x10_0000, 0x11_0000);
        assert_eq!(out.tags_cleared, 2);
        assert_eq!(out.pages_visited, 2);
        assert_eq!(out.granules_visited, 512);
        assert!(!mem.peek_cap(0x10_0000).unwrap().1);
        assert!(!mem.peek_cap(0x10_2000).unwrap().1);
        assert!(mem.peek_cap(0x10_2010).unwrap().1, "live cap survives");
        let again = eng.sweep(&mut mem, &[(0x10_0000, 64)], 0x10_0000, 0x11_0000);
        assert_eq!(again.tags_cleared, 0, "sweep is idempotent");
    }
}
