//! # cheri-revoke
//!
//! Heap temporal safety for the Morello model: an epoch-driven tag-sweep
//! revoker (Cornucopia/CheriBSD style) and a pluggable
//! allocator-strategy lab.
//!
//! Freed capability blocks are parked in a quarantine; when a
//! discipline's threshold is exceeded a *revocation epoch* fires, the
//! per-granule revocation bitmap kept in
//! [`TaggedMemory`](cheri_mem::TaggedMemory) is consulted, and a
//! load-side tag sweep walks the heap clearing the tag of every
//! capability that still points into quarantined blocks. Only then is
//! the memory recycled — a use-after-free can never reach a new owner.
//!
//! The sweep's memory traffic is returned as a deterministic access list
//! ([`SweepOutcome::accesses`]) that `cheri-isa` replays as retired
//! load/store events, so sweeps cost cycles and pollute the L1D/L2/TLB
//! exactly like the paper's measured revocation overheads.
//!
//! Three disciplines ship ([`AllocStrategy`]):
//!
//! * [`Classic`] — no padding, immediate reuse, no revocation (hybrid
//!   ABI; structurally zero sweep cost).
//! * [`CapabilityPadded`] — representability padding plus the legacy
//!   fixed-size silent quarantine (the default capability-ABI
//!   behaviour).
//! * [`QuarantineSwept`] — padding plus a swept quarantine with
//!   configurable byte/block thresholds, the `fig8_revocation`
//!   amortisation knob.
//!
//! ```
//! use cheri_mem::TaggedMemory;
//! use cheri_revoke::{RevokingHeap, StrategyKind};
//!
//! let mut mem = TaggedMemory::new();
//! let mut heap = RevokingHeap::new(
//!     0x4010_0000,
//!     0x5000_0000,
//!     0x4008_0000,
//!     StrategyKind::swept_bytes(64 << 10),
//! );
//! let a = heap.malloc(4096).unwrap();
//! let freed = heap.free(&mut mem, a.addr).unwrap();
//! assert!(freed.sweep.is_none(), "below threshold: no epoch yet");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod heap;
mod strategy;

pub use epoch::{MemAccess, RevocationEpoch, SweepOutcome, BITMAP_BYTES};
pub use heap::{FreeOutcome, RevokingHeap};
pub use strategy::{
    AllocStrategy, CapabilityPadded, Classic, EpochAction, QuarantineSwept, StrategyKind,
    PADDED_QUARANTINE_BLOCKS,
};
