//! Allocation disciplines: the policy half of the revocation subsystem.

use cheri_cap::{representable_alignment, round_representable_length};
use serde::{Deserialize, Serialize};

/// What a strategy wants done once a free has been quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochAction {
    /// Recycle the `count` oldest quarantined blocks without scanning for
    /// stale capabilities — the pre-revocation behaviour, unsound against
    /// use-after-free but free of sweep traffic.
    SilentDrain {
        /// Blocks to recycle from the front of the quarantine.
        count: usize,
    },
    /// Run a full load-side tag sweep over the heap, revoke every
    /// capability into quarantined blocks, then recycle the whole
    /// quarantine (Cornucopia's epoch).
    TagSweep,
}

/// An allocation discipline: how blocks are laid out, whether frees are
/// quarantined, and when a revocation epoch fires.
///
/// Strategies are stateless policy objects; all bookkeeping lives in
/// [`RevokingHeap`](crate::RevokingHeap).
pub trait AllocStrategy {
    /// Short human-readable discipline name.
    fn name(&self) -> &'static str;

    /// Reserved size and base alignment for a size-class-rounded request.
    /// Returns `(padded, align)` with `padded >= usable` and
    /// `align >= 16`.
    fn layout(&self, usable: u64) -> (u64, u64);

    /// Whether frees are parked in the temporal-safety quarantine (false
    /// means immediate free-list reuse).
    fn quarantines(&self) -> bool;

    /// Whether the per-granule revocation bitmap in `TaggedMemory` is
    /// maintained (only sweeping strategies consult it).
    fn maintains_bitmap(&self) -> bool {
        false
    }

    /// Epoch decision, evaluated after every quarantined free against the
    /// current quarantine occupancy.
    fn epoch_after_free(
        &self,
        quarantine_bytes: u64,
        quarantine_blocks: usize,
    ) -> Option<EpochAction>;
}

/// Capability-style layout shared by the padded disciplines: the
/// size-class-rounded block is grown to a representable length and its
/// base aligned per the compressed-bounds contract, so
/// `set_bounds_exact(addr, padded)` always succeeds.
fn capability_layout(usable: u64) -> (u64, u64) {
    let padded = round_representable_length(usable);
    let align = representable_alignment(padded).max(16);
    (padded, align)
}

/// Classic `malloc`: 16-byte alignment, no representability padding,
/// immediate free-list reuse, no revocation. The hybrid-ABI discipline —
/// structurally zero sweep cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Classic;

impl AllocStrategy for Classic {
    fn name(&self) -> &'static str {
        "classic"
    }

    fn layout(&self, usable: u64) -> (u64, u64) {
        (usable, 16)
    }

    fn quarantines(&self) -> bool {
        false
    }

    fn epoch_after_free(&self, _bytes: u64, _blocks: usize) -> Option<EpochAction> {
        None
    }
}

/// Blocks a [`CapabilityPadded`] quarantine holds before silently
/// recycling half of them (the legacy fixed-size quarantine).
pub const PADDED_QUARANTINE_BLOCKS: usize = 256;

/// CHERI-aware padding plus the legacy fixed-size quarantine: freed
/// blocks park until the quarantine exceeds
/// [`PADDED_QUARANTINE_BLOCKS`], then half drain to the free lists with
/// no sweep. This is the pre-`cheri-revoke` purecap behaviour, refactored
/// onto the strategy trait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CapabilityPadded;

impl AllocStrategy for CapabilityPadded {
    fn name(&self) -> &'static str {
        "capability-padded"
    }

    fn layout(&self, usable: u64) -> (u64, u64) {
        capability_layout(usable)
    }

    fn quarantines(&self) -> bool {
        true
    }

    fn epoch_after_free(&self, _bytes: u64, blocks: usize) -> Option<EpochAction> {
        (blocks > PADDED_QUARANTINE_BLOCKS).then_some(EpochAction::SilentDrain {
            count: PADDED_QUARANTINE_BLOCKS / 2,
        })
    }
}

/// CHERI-aware padding plus a swept quarantine: freed blocks park until
/// either threshold is exceeded, then a revocation epoch tag-sweeps the
/// heap and recycles the whole quarantine. Larger thresholds mean fewer,
/// larger sweeps — the amortisation knob `fig8_revocation` characterises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineSwept {
    /// Epoch fires once quarantined bytes exceed this.
    pub quarantine_bytes: u64,
    /// Epoch fires once quarantined blocks exceed this.
    pub quarantine_blocks: usize,
}

impl AllocStrategy for QuarantineSwept {
    fn name(&self) -> &'static str {
        "quarantine-swept"
    }

    fn layout(&self, usable: u64) -> (u64, u64) {
        capability_layout(usable)
    }

    fn quarantines(&self) -> bool {
        true
    }

    fn maintains_bitmap(&self) -> bool {
        true
    }

    fn epoch_after_free(&self, bytes: u64, blocks: usize) -> Option<EpochAction> {
        (bytes > self.quarantine_bytes || blocks > self.quarantine_blocks)
            .then_some(EpochAction::TagSweep)
    }
}

/// Serialisable strategy selector, carried by interpreter/platform
/// configuration (and therefore by run journals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// [`Classic`].
    Classic,
    /// [`CapabilityPadded`] — the default capability-ABI discipline.
    #[default]
    CapabilityPadded,
    /// [`QuarantineSwept`] with the given thresholds.
    QuarantineSwept {
        /// Byte threshold (see [`QuarantineSwept::quarantine_bytes`]).
        quarantine_bytes: u64,
        /// Block threshold (see [`QuarantineSwept::quarantine_blocks`]).
        quarantine_blocks: usize,
    },
}

impl StrategyKind {
    /// A swept quarantine with the given byte budget and an effectively
    /// unbounded block budget (the `fig8_revocation` knob).
    pub fn swept_bytes(quarantine_bytes: u64) -> StrategyKind {
        StrategyKind::QuarantineSwept {
            quarantine_bytes,
            quarantine_blocks: usize::MAX,
        }
    }

    /// Instantiates the discipline.
    pub fn strategy(self) -> Box<dyn AllocStrategy + Send + Sync> {
        match self {
            StrategyKind::Classic => Box::new(Classic),
            StrategyKind::CapabilityPadded => Box::new(CapabilityPadded),
            StrategyKind::QuarantineSwept {
                quarantine_bytes,
                quarantine_blocks,
            } => Box::new(QuarantineSwept {
                quarantine_bytes,
                quarantine_blocks,
            }),
        }
    }

    /// Short human-readable discipline name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Classic => "classic",
            StrategyKind::CapabilityPadded => "capability-padded",
            StrategyKind::QuarantineSwept { .. } => "quarantine-swept",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_never_pads_or_quarantines() {
        let s = Classic;
        assert_eq!(s.layout(48), (48, 16));
        assert!(!s.quarantines());
        assert!(!s.maintains_bitmap());
        assert_eq!(s.epoch_after_free(u64::MAX, usize::MAX), None);
    }

    #[test]
    fn padded_matches_representability_contract() {
        let s = CapabilityPadded;
        let (padded, align) = s.layout(5 << 20);
        assert_eq!(padded, round_representable_length(5 << 20));
        assert_eq!(align, representable_alignment(padded).max(16));
        assert!(s.quarantines());
        assert!(!s.maintains_bitmap());
        assert_eq!(
            s.epoch_after_free(0, PADDED_QUARANTINE_BLOCKS + 1),
            Some(EpochAction::SilentDrain {
                count: PADDED_QUARANTINE_BLOCKS / 2
            })
        );
        assert_eq!(s.epoch_after_free(u64::MAX, 1), None, "byte-blind");
    }

    #[test]
    fn swept_triggers_on_either_threshold() {
        let s = QuarantineSwept {
            quarantine_bytes: 1024,
            quarantine_blocks: 8,
        };
        assert!(s.maintains_bitmap());
        assert_eq!(s.epoch_after_free(1024, 8), None, "thresholds inclusive");
        assert_eq!(s.epoch_after_free(1025, 1), Some(EpochAction::TagSweep));
        assert_eq!(s.epoch_after_free(16, 9), Some(EpochAction::TagSweep));
    }

    #[test]
    fn kind_roundtrips_and_instantiates() {
        for kind in [
            StrategyKind::Classic,
            StrategyKind::CapabilityPadded,
            StrategyKind::swept_bytes(64 << 10),
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: StrategyKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
            assert_eq!(kind.strategy().name(), kind.name());
        }
        assert_eq!(StrategyKind::default(), StrategyKind::CapabilityPadded);
    }
}
