//! A model of ELF binary-section sizes under the three ABIs (Figure 2 of
//! the paper).
//!
//! Section sizes are a deterministic function of the lowered program:
//!
//! * `.text` grows with the (ABI-specific) instruction count;
//! * `.rodata` *shrinks* under purecap because constant objects containing
//!   pointers must be writable at load time and move to `.data.rel.ro`
//!   (the paper's −19% observation);
//! * `.rela.dyn` explodes under purecap: every capability in the
//!   capability table and in initialised data needs a
//!   `R_MORELLO_RELATIVE`-style dynamic relocation (the paper's ~85×);
//! * `.got` slots double to 16 bytes;
//! * `.note.cheri` exists only in capability binaries.

use crate::program::Program;
use serde::{Deserialize, Serialize};

/// ELF relocation entry size (RELA, 24 bytes on AArch64/Morello).
const RELA_ENTRY: u64 = 24;
/// Statically linked runtime code (crt0 + libc/libc++ slices), which
/// dominates the text of small benchmark binaries.
const RT_TEXT: u64 = 128 << 10;
/// Runtime read-only data (format strings, tables).
const RT_RODATA: u64 = 24 << 10;
/// The slice of runtime rodata that contains pointers and must move to
/// `.data.rel.ro` under the capability ABIs (the paper's −19% .rodata).
const RT_RODATA_PTRISH: u64 = 4800;
/// Runtime writable data / bss.
const RT_DATA: u64 = 4 << 10;
const RT_BSS: u64 = 16 << 10;
/// Dynamic relocations of a hybrid PIE runtime (a handful of RELATIVE
/// entries).
const BASE_RELOCS: u64 = 10;
/// Capability relocations of a purecap runtime: every function pointer,
/// vtable slot, and global capability in libc needs one — the source of
/// the paper's ~85x `.rela.dyn` growth.
const CAP_RT_RELOCS: u64 = 680;
/// Purecap code is emitted slightly longer (capability moves, GOT loads).
const CAP_TEXT_FACTOR: f64 = 1.09;

/// Modelled sizes of the binary sections the paper reports, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionSizes {
    /// Executable code.
    pub text: u64,
    /// Read-only constants without load-time relocations.
    pub rodata: u64,
    /// Initialised writable data.
    pub data: u64,
    /// Zero-initialised data.
    pub bss: u64,
    /// Global offset table (+ plt got).
    pub got: u64,
    /// Dynamic relocations.
    pub rela_dyn: u64,
    /// Relocated-then-remapped-read-only data (capability ABIs).
    pub data_rel_ro: u64,
    /// The CHERI ABI note (capability ABIs).
    pub note_cheri: u64,
    /// Debug information.
    pub debug: u64,
    /// Everything else (symbol tables, strings, dynamic section, …).
    pub others: u64,
}

impl SectionSizes {
    /// Total binary size.
    pub fn total(&self) -> u64 {
        self.text
            + self.rodata
            + self.data
            + self.bss
            + self.got
            + self.rela_dyn
            + self.data_rel_ro
            + self.note_cheri
            + self.debug
            + self.others
    }

    /// `(section name, size)` pairs in the paper's Figure 2 order.
    pub fn named(&self) -> [(&'static str, u64); 10] {
        [
            (".text", self.text),
            (".rodata", self.rodata),
            (".data", self.data),
            (".bss", self.bss),
            (".got+.got.plt", self.got),
            (".rela.dyn", self.rela_dyn),
            (".data.rel.ro", self.data_rel_ro),
            (".note.cheri", self.note_cheri),
            (".debug", self.debug),
            (".others", self.others),
        ]
    }
}

/// Computes the binary layout of a lowered program.
#[derive(Clone, Copy, Debug, Default)]
pub struct BinaryLayout;

impl BinaryLayout {
    /// Models the section sizes of `prog`'s on-disk binary.
    pub fn of(prog: &Program) -> SectionSizes {
        let cap = prog.abi.is_capability();
        let ptr = prog.abi.pointer_size();
        let n_funcs = prog.funcs.len() as u64;
        let n_globals = prog.globals.len() as u64;

        let app_text = prog.map.func_size.iter().sum::<u64>();
        let text = if cap {
            app_text + (RT_TEXT as f64 * CAP_TEXT_FACTOR) as u64
        } else {
            app_text + RT_TEXT
        };

        let mut rodata = RT_RODATA;
        let mut data = RT_DATA;
        let mut bss = RT_BSS;
        let mut data_rel_ro = 0;
        if cap {
            // Runtime pointer tables leave .rodata under purecap.
            rodata -= RT_RODATA_PTRISH;
            data_rel_ro += RT_RODATA_PTRISH + 512;
        }
        let mut data_ptr_slots = 0u64;
        for g in &prog.globals {
            let has_ptrs = !g.ptr_inits.is_empty();
            data_ptr_slots += g.ptr_inits.len() as u64;
            if g.is_const {
                if has_ptrs && cap {
                    // Constant pointer tables need load-time capability
                    // initialisation: they leave .rodata.
                    data_rel_ro += g.size;
                } else {
                    rodata += g.size;
                }
            } else if g.init.is_empty() && !has_ptrs {
                bss += g.size;
            } else {
                data += g.size;
            }
        }

        // GOT: one pointer-sized slot per function and global symbol, plus
        // a handful of runtime entries.
        let got_slots = n_funcs + n_globals + 160;
        let got = got_slots * ptr;

        // Dynamic relocations. Hybrid PIE: one RELATIVE entry per
        // initialised data pointer. Capability ABIs: every captable slot,
        // every data capability, and per-function entry capabilities each
        // need an init-time relocation, plus fragment descriptors.
        let rela_entries = if cap {
            BASE_RELOCS + CAP_RT_RELOCS + 4 * (n_funcs + n_globals) + got_slots + data_ptr_slots
        } else {
            BASE_RELOCS + data_ptr_slots
        };
        let rela_dyn = rela_entries * RELA_ENTRY;

        let note_cheri = if cap { 48 } else { 0 };
        // Captable lives in .data.rel.ro under capability ABIs.
        if cap {
            data_rel_ro += prog.map.captable_slots * 16 + 64;
        }

        let debug = app_text * 2 + 64 * 1024 + (n_funcs + n_globals) * 96;
        let others = 0x4000 + (n_funcs + n_globals) * 40 + 16 * ptr;

        SectionSizes {
            text,
            rodata,
            data,
            bss,
            got,
            rela_dyn,
            data_rel_ro,
            note_cheri,
            debug,
            others,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abi, MemSize, ProgramBuilder, PtrInit};

    fn layouts() -> (SectionSizes, SectionSizes, SectionSizes) {
        let build = |abi: Abi| {
            let mut b = ProgramBuilder::new("bin", abi);
            let ps = b.ptr_size();
            let _big = b.global_zero("bss_arr", 64 * 1024);
            let _rod = b.global_const("strings", vec![7u8; 4096]);
            let data = b.global_data("counters", vec![1u8; 512]);
            // A constant table of pointers (e.g. a vtable).
            let mut fs = Vec::new();
            for i in 0..8 {
                fs.push(b.function(format!("f{i}"), 0, |f| {
                    let r = f.vreg();
                    f.mov_imm(r, 1);
                    f.ret(Some(r))
                }));
            }
            let _vt = b.func_table("vtable", &fs);
            // A data global with embedded pointers.
            b.add_global(crate::GlobalDef {
                name: "linked".into(),
                size: 4 * ps,
                init: Vec::new(),
                ptr_inits: vec![(0, PtrInit::Global(data, 0))],
                is_const: false,
                align: 16,
            });
            let main = b.function("main", 0, |f| {
                let v = f.vreg();
                f.mov_imm(v, 0);
                let p = f.vreg();
                f.malloc(p, 64);
                f.store_int(v, p, 0, MemSize::S8);
                f.free(p);
                f.halt();
            });
            b.set_entry(main);
            BinaryLayout::of(&b.lower())
        };
        (
            build(Abi::Hybrid),
            build(Abi::Benchmark),
            build(Abi::Purecap),
        )
    }

    #[test]
    fn rela_dyn_explodes_under_purecap() {
        let (h, _, p) = layouts();
        let ratio = p.rela_dyn as f64 / h.rela_dyn as f64;
        // This toy binary has unusually many static data pointers relative
        // to its symbol count; real workloads reach far higher ratios (the
        // fig2 harness reports them).
        assert!(ratio > 5.0, "rela.dyn ratio {ratio} too small");
    }

    #[test]
    fn rodata_shrinks_under_purecap() {
        let (h, _, p) = layouts();
        assert!(p.rodata < h.rodata, "pointer tables must leave .rodata");
        assert!(p.data_rel_ro > 0);
        assert_eq!(h.data_rel_ro, 0);
    }

    #[test]
    fn note_cheri_only_in_capability_binaries() {
        let (h, b, p) = layouts();
        assert_eq!(h.note_cheri, 0);
        assert!(b.note_cheri > 0);
        assert_eq!(b.note_cheri, p.note_cheri);
    }

    #[test]
    fn got_slots_double() {
        let (h, _, p) = layouts();
        assert_eq!(p.got, 2 * h.got);
    }

    #[test]
    fn total_growth_is_modest() {
        let (h, _, p) = layouts();
        let ratio = p.total() as f64 / h.total() as f64;
        assert!(
            ratio > 1.0 && ratio < 1.35,
            "total size ratio {ratio} outside the paper's 'modest' range"
        );
    }

    #[test]
    fn benchmark_matches_purecap_sizes() {
        let (_, b, p) = layouts();
        // Same code shape and data layout; allow tiny differences.
        assert_eq!(b.total(), p.total());
    }

    #[test]
    fn named_covers_every_field() {
        let (h, _, _) = layouts();
        let sum: u64 = h.named().iter().map(|(_, s)| s).sum();
        assert_eq!(sum, h.total());
    }
}
