//! The decoded micro-op arena behind the fast engine.
//!
//! [`DecodedProgram::decode`] lowers a [`Program`] once into a flat
//! per-function array of [`Op`]s with everything the per-instruction
//! `match` of the reference executor re-derives on every visit already
//! resolved: label targets become `(ip, pc)` pairs, `Lea*`/captable
//! addresses are absolute, long-latency extras and direct-call
//! `pcc_change` bits are pre-computed, and call argument lists live in
//! one shared pool so every [`Op`] stays `Copy` and cache-dense. The
//! execution loop in [`crate::fastexec`] then dispatches on this dense
//! enum without touching the original [`Inst`] stream.

use crate::inst::{
    CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, IntOp, LoadKind, MemSize, Operand, VecKind,
};
use crate::program::{ModuleId, Program};

/// A call's argument registers: a window into [`DecodedProgram::args`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArgsRef {
    /// First index in the shared argument pool.
    pub(crate) start: u32,
    /// Number of arguments.
    pub(crate) len: u16,
}

/// A pre-resolved memory-operand offset. `RegScaled` keeps the scale
/// implicit (the access width) exactly as the `scaled` flag does on
/// [`Inst::Load`]/[`Inst::Store`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum Off {
    /// Immediate byte offset.
    Imm(i64),
    /// Register byte offset.
    Reg(u16),
    /// Register element offset, scaled by the access width.
    RegScaled(u16),
}

/// One decoded micro-op. Mirrors [`Inst`] one-to-one (the fast engine
/// retires exactly one event per op, plus the synthetic frames and
/// allocator bodies), but with operands in execution-ready form.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
// `CapOp`/`CapOp2` deliberately mirror the `Inst` variant names.
#[allow(clippy::enum_variant_names)]
pub(crate) enum Op {
    MovImm {
        dst: u16,
        imm: u64,
    },
    MovF64 {
        dst: u16,
        imm: f64,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    /// `ll` is the pre-computed long-latency extra (0 = pipelined).
    IntAlu {
        op: IntOp,
        dst: u16,
        a: u16,
        b: Operand,
        ll: u8,
    },
    Madd {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    FloatAlu {
        op: FloatOp,
        dst: u16,
        a: u16,
        b: u16,
        ll: u8,
    },
    FMadd {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    FCmp {
        cond: Cond,
        dst: u16,
        a: u16,
        b: u16,
    },
    Vec {
        op: VecKind,
        dst: u16,
        a: u16,
        b: u16,
    },
    Cvt {
        dst: u16,
        src: u16,
        to_int: bool,
    },
    /// `LeaGlobal`/`LeaFunc` with the absolute address pre-computed.
    LeaConst {
        dst: u16,
        addr: u64,
    },
    MovNullPtr {
        dst: u16,
    },
    PtrAdd {
        dst: u16,
        base: u16,
        off: Operand,
    },
    PtrToInt {
        dst: u16,
        src: u16,
    },
    /// A pointer-generic memory op that survived lowering (the
    /// reference rejects these with `BadProgram`; so does the fast
    /// engine).
    BadGeneric,
    /// Captable load with the slot address pre-computed.
    LoadCapTable {
        dst: u16,
        addr: u64,
        off: i64,
    },
    Load {
        dst: u16,
        base: u16,
        off: Off,
        size: MemSize,
        kind: LoadKind,
        bytes: u8,
    },
    Store {
        src: u16,
        base: u16,
        off: Off,
        size: MemSize,
        kind: LoadKind,
        bytes: u8,
    },
    Jump {
        t_ip: u32,
        t_pc: u64,
    },
    CondBr {
        cond: Cond,
        a: u16,
        b: Operand,
        t_ip: u32,
        t_pc: u64,
    },
    /// Direct call: `pcc_change` is static (caller and callee modules
    /// are both known at decode time).
    Call {
        callee: u32,
        args: ArgsRef,
        ret: Option<u16>,
        pcc_change: bool,
    },
    CallIndirect {
        target: u16,
        args: ArgsRef,
        ret: Option<u16>,
    },
    Ret {
        val: Option<u16>,
    },
    Malloc {
        dst: u16,
        size: Operand,
    },
    Free {
        ptr: u16,
    },
    CapOp {
        op: CapOpKind,
        dst: u16,
        a: u16,
        b: Operand,
    },
    CapOp2 {
        op: CapOp2Kind,
        a: u16,
        auth: u16,
        dst: u16,
    },
    Halt {
        code: Option<u16>,
    },
    Region {
        id: u32,
    },
}

/// One decoded function: its op array plus the frame/layout facts the
/// call and return paths need without chasing back into [`Program`].
pub(crate) struct DecodedFunc {
    pub(crate) ops: Box<[Op]>,
    pub(crate) base_pc: u64,
    pub(crate) frame_size: u64,
    pub(crate) params: u16,
    pub(crate) vregs: u16,
    pub(crate) module: ModuleId,
}

/// The whole program, decoded once per run.
pub(crate) struct DecodedProgram {
    pub(crate) funcs: Box<[DecodedFunc]>,
    /// Shared pool of call-argument registers ([`ArgsRef`] windows).
    pub(crate) args: Box<[u16]>,
}

impl DecodedProgram {
    /// Lowers `prog` into the micro-op arena.
    pub(crate) fn decode(prog: &Program) -> DecodedProgram {
        let mut pool: Vec<u16> = Vec::new();
        let mut funcs = Vec::with_capacity(prog.funcs.len());
        for (fi, f) in prog.funcs.iter().enumerate() {
            let base_pc = prog.map.func_base[fi];
            let caller_module = f.module;
            let mut intern = |args: &[u16]| {
                let start = pool.len() as u32;
                pool.extend_from_slice(args);
                ArgsRef {
                    start,
                    len: args.len() as u16,
                }
            };
            let label = |l: crate::inst::Label| {
                let t_ip = f.labels[l.0 as usize];
                (t_ip, base_pc + u64::from(t_ip) * 4)
            };
            let ops: Vec<Op> = f
                .insts
                .iter()
                .map(|inst| match inst {
                    Inst::MovImm { dst, imm } => Op::MovImm {
                        dst: *dst,
                        imm: *imm,
                    },
                    Inst::MovF64 { dst, imm } => Op::MovF64 {
                        dst: *dst,
                        imm: *imm,
                    },
                    Inst::Mov { dst, src } => Op::Mov {
                        dst: *dst,
                        src: *src,
                    },
                    Inst::IntOp { op, dst, a, b } => Op::IntAlu {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                        ll: match op {
                            IntOp::Mul => 1,
                            IntOp::UDiv | IntOp::URem => 9,
                            _ => 0,
                        },
                    },
                    Inst::Madd { dst, a, b, c, .. } => Op::Madd {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        c: *c,
                    },
                    Inst::FloatOp { op, dst, a, b } => Op::FloatAlu {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                        ll: match op {
                            FloatOp::FDiv => 12,
                            FloatOp::FSqrt => 16,
                            _ => 0,
                        },
                    },
                    Inst::FMadd { dst, a, b, c } => Op::FMadd {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        c: *c,
                    },
                    Inst::FCmp { cond, dst, a, b } => Op::FCmp {
                        cond: *cond,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::VecOp { op, dst, a, b } => Op::Vec {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::Cvt { dst, src, to_int } => Op::Cvt {
                        dst: *dst,
                        src: *src,
                        to_int: *to_int,
                    },
                    Inst::LeaGlobal { dst, global, off } => Op::LeaConst {
                        dst: *dst,
                        addr: prog.map.global_base[global.0 as usize].wrapping_add(*off as u64),
                    },
                    Inst::LeaFunc { dst, func } => Op::LeaConst {
                        dst: *dst,
                        addr: prog.map.func_base[func.0 as usize],
                    },
                    Inst::MovNullPtr { dst } => Op::MovNullPtr { dst: *dst },
                    Inst::PtrAdd { dst, base, off } => Op::PtrAdd {
                        dst: *dst,
                        base: *base,
                        off: *off,
                    },
                    Inst::PtrToInt { dst, src } => Op::PtrToInt {
                        dst: *dst,
                        src: *src,
                    },
                    Inst::LoadPtr { .. }
                    | Inst::StorePtr { .. }
                    | Inst::LoadPtrIdx { .. }
                    | Inst::StorePtrIdx { .. } => Op::BadGeneric,
                    Inst::LoadCapTable { dst, slot, off } => Op::LoadCapTable {
                        dst: *dst,
                        addr: prog.map.captable_base + u64::from(*slot) * 16,
                        off: *off,
                    },
                    Inst::Load {
                        dst,
                        base,
                        off,
                        size,
                        kind,
                        scaled,
                    } => {
                        let bytes = match kind {
                            LoadKind::Cap => 16,
                            _ => size.bytes(),
                        } as u8;
                        Op::Load {
                            dst: *dst,
                            base: *base,
                            off: decode_off(*off, *scaled),
                            size: *size,
                            kind: *kind,
                            bytes,
                        }
                    }
                    Inst::Store {
                        src,
                        base,
                        off,
                        size,
                        kind,
                        scaled,
                    } => {
                        let bytes = match kind {
                            LoadKind::Cap => 16,
                            _ => size.bytes(),
                        } as u8;
                        Op::Store {
                            src: *src,
                            base: *base,
                            off: decode_off(*off, *scaled),
                            size: *size,
                            kind: *kind,
                            bytes,
                        }
                    }
                    Inst::Jump { target } => {
                        let (t_ip, t_pc) = label(*target);
                        Op::Jump { t_ip, t_pc }
                    }
                    Inst::CondBr { cond, a, b, target } => {
                        let (t_ip, t_pc) = label(*target);
                        Op::CondBr {
                            cond: *cond,
                            a: *a,
                            b: *b,
                            t_ip,
                            t_pc,
                        }
                    }
                    Inst::Call { func, args, ret } => Op::Call {
                        callee: func.0,
                        args: intern(args),
                        ret: *ret,
                        pcc_change: prog.abi.capability_branches()
                            && prog.funcs[func.0 as usize].module != caller_module,
                    },
                    Inst::CallIndirect { target, args, ret } => Op::CallIndirect {
                        target: *target,
                        args: intern(args),
                        ret: *ret,
                    },
                    Inst::Ret { val } => Op::Ret { val: *val },
                    Inst::Malloc { dst, size } => Op::Malloc {
                        dst: *dst,
                        size: *size,
                    },
                    Inst::Free { ptr } => Op::Free { ptr: *ptr },
                    Inst::CapOp { op, dst, a, b } => Op::CapOp {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::CapOp2 { op, a, auth, dst } => Op::CapOp2 {
                        op: *op,
                        a: *a,
                        auth: *auth,
                        dst: *dst,
                    },
                    Inst::Halt { code } => Op::Halt { code: *code },
                    Inst::Region { id } => Op::Region { id: *id },
                })
                .collect();
            funcs.push(DecodedFunc {
                ops: ops.into_boxed_slice(),
                base_pc,
                frame_size: f.frame_size,
                params: f.params,
                vregs: f.vregs,
                module: f.module,
            });
        }
        DecodedProgram {
            funcs: funcs.into_boxed_slice(),
            args: pool.into_boxed_slice(),
        }
    }
}

fn decode_off(off: Operand, scaled: bool) -> Off {
    match off {
        Operand::Imm(i) => Off::Imm(i),
        Operand::Reg(r) if scaled => Off::RegScaled(r),
        Operand::Reg(r) => Off::Reg(r),
    }
}
