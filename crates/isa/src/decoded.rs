//! The decoded micro-op arena behind the fast engine.
//!
//! [`DecodedProgram::decode`] lowers a [`Program`] once into a flat
//! per-function array of [`Op`]s with everything the per-instruction
//! `match` of the reference executor re-derives on every visit already
//! resolved: label targets become `(ip, pc)` pairs, `Lea*`/captable
//! addresses are absolute, long-latency extras and direct-call
//! `pcc_change` bits are pre-computed, and call argument lists live in
//! one shared pool so every [`Op`] stays `Copy` and cache-dense. The
//! execution loop in [`crate::fastexec`] then dispatches on this dense
//! enum without touching the original [`Inst`] stream.

use crate::classify::{ClassCounts, OpClass};
use crate::inst::{
    CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, IntOp, LoadKind, MemSize, Operand, VecKind,
};
use crate::program::{ModuleId, Program};

/// A call's argument registers: a window into [`DecodedProgram::args`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArgsRef {
    /// First index in the shared argument pool.
    pub(crate) start: u32,
    /// Number of arguments.
    pub(crate) len: u16,
}

/// A pre-resolved memory-operand offset. `RegScaled` keeps the scale
/// implicit (the access width) exactly as the `scaled` flag does on
/// [`Inst::Load`]/[`Inst::Store`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum Off {
    /// Immediate byte offset.
    Imm(i64),
    /// Register byte offset.
    Reg(u16),
    /// Register element offset, scaled by the access width.
    RegScaled(u16),
}

/// One decoded micro-op. Mirrors [`Inst`] one-to-one (the fast engine
/// retires exactly one event per op, plus the synthetic frames and
/// allocator bodies), but with operands in execution-ready form.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
// `CapOp`/`CapOp2` deliberately mirror the `Inst` variant names.
#[allow(clippy::enum_variant_names)]
pub(crate) enum Op {
    MovImm {
        dst: u16,
        imm: u64,
    },
    MovF64 {
        dst: u16,
        imm: f64,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    /// `ll` is the pre-computed long-latency extra (0 = pipelined).
    IntAlu {
        op: IntOp,
        dst: u16,
        a: u16,
        b: Operand,
        ll: u8,
    },
    Madd {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    FloatAlu {
        op: FloatOp,
        dst: u16,
        a: u16,
        b: u16,
        ll: u8,
    },
    FMadd {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    FCmp {
        cond: Cond,
        dst: u16,
        a: u16,
        b: u16,
    },
    Vec {
        op: VecKind,
        dst: u16,
        a: u16,
        b: u16,
    },
    Cvt {
        dst: u16,
        src: u16,
        to_int: bool,
    },
    /// `LeaGlobal`/`LeaFunc` with the absolute address pre-computed.
    LeaConst {
        dst: u16,
        addr: u64,
    },
    MovNullPtr {
        dst: u16,
    },
    PtrAdd {
        dst: u16,
        base: u16,
        off: Operand,
    },
    PtrToInt {
        dst: u16,
        src: u16,
    },
    /// A pointer-generic memory op that survived lowering (the
    /// reference rejects these with `BadProgram`; so does the fast
    /// engine).
    BadGeneric,
    /// Captable load with the slot address pre-computed.
    LoadCapTable {
        dst: u16,
        addr: u64,
        off: i64,
    },
    Load {
        dst: u16,
        base: u16,
        off: Off,
        size: MemSize,
        kind: LoadKind,
        bytes: u8,
    },
    Store {
        src: u16,
        base: u16,
        off: Off,
        size: MemSize,
        kind: LoadKind,
        bytes: u8,
    },
    Jump {
        t_ip: u32,
        t_pc: u64,
    },
    CondBr {
        cond: Cond,
        a: u16,
        b: Operand,
        t_ip: u32,
        t_pc: u64,
    },
    /// Direct call: `pcc_change` is static (caller and callee modules
    /// are both known at decode time).
    Call {
        callee: u32,
        args: ArgsRef,
        ret: Option<u16>,
        pcc_change: bool,
    },
    CallIndirect {
        target: u16,
        args: ArgsRef,
        ret: Option<u16>,
    },
    Ret {
        val: Option<u16>,
    },
    Malloc {
        dst: u16,
        size: Operand,
    },
    Free {
        ptr: u16,
    },
    CapOp {
        op: CapOpKind,
        dst: u16,
        a: u16,
        b: Operand,
    },
    CapOp2 {
        op: CapOp2Kind,
        a: u16,
        auth: u16,
        dst: u16,
    },
    Halt {
        code: Option<u16>,
    },
    Region {
        id: u32,
    },
}

/// One decoded function: its op array plus the frame/layout facts the
/// call and return paths need without chasing back into [`Program`],
/// and its superblock partition (micro-op arena, block table, and the
/// ip→block map) for the direct-threaded dispatch loop.
pub(crate) struct DecodedFunc {
    pub(crate) ops: Box<[Op]>,
    /// Flat arena of packed interior micro-ops, block by block.
    pub(crate) micros: Box<[MicroOp]>,
    /// Superblocks in `start_ip` order; they tile `ops` exactly.
    pub(crate) blocks: Box<[Superblock]>,
    /// Pre-summed interior event classes per block (parallel to
    /// `blocks`). Kept out of [`Superblock`] so the dispatch loop's
    /// block table stays cache-dense; only the run-end class fold and
    /// the stats reader touch this.
    pub(crate) block_classes: Box<[ClassCounts]>,
    /// `block_idx[ip]` = index into `blocks` of the block containing
    /// `ip`. Every control-transfer target is a block's `start_ip`.
    pub(crate) block_idx: Box<[u32]>,
    /// This function's offset into the program-wide block numbering
    /// (`block_base + local index` = global block id), used by the
    /// engine's per-block execution counters.
    pub(crate) block_base: u32,
    pub(crate) base_pc: u64,
    pub(crate) frame_size: u64,
    pub(crate) params: u16,
    pub(crate) vregs: u16,
    pub(crate) module: ModuleId,
}

/// The whole program, decoded once per run.
pub(crate) struct DecodedProgram {
    pub(crate) funcs: Box<[DecodedFunc]>,
    /// Shared pool of call-argument registers ([`ArgsRef`] windows).
    pub(crate) args: Box<[u16]>,
    /// Total superblocks across all functions (sizes the engine's
    /// per-block execution-count table).
    pub(crate) total_blocks: u32,
}

impl DecodedProgram {
    /// Lowers `prog` into the micro-op arena.
    pub(crate) fn decode(prog: &Program) -> DecodedProgram {
        let mut pool: Vec<u16> = Vec::new();
        let mut funcs = Vec::with_capacity(prog.funcs.len());
        let mut total_blocks: u32 = 0;
        for (fi, f) in prog.funcs.iter().enumerate() {
            let base_pc = prog.map.func_base[fi];
            let caller_module = f.module;
            let mut intern = |args: &[u16]| {
                let start = pool.len() as u32;
                pool.extend_from_slice(args);
                ArgsRef {
                    start,
                    len: args.len() as u16,
                }
            };
            let label = |l: crate::inst::Label| {
                let t_ip = f.labels[l.0 as usize];
                (t_ip, base_pc + u64::from(t_ip) * 4)
            };
            let ops: Vec<Op> = f
                .insts
                .iter()
                .map(|inst| match inst {
                    Inst::MovImm { dst, imm } => Op::MovImm {
                        dst: *dst,
                        imm: *imm,
                    },
                    Inst::MovF64 { dst, imm } => Op::MovF64 {
                        dst: *dst,
                        imm: *imm,
                    },
                    Inst::Mov { dst, src } => Op::Mov {
                        dst: *dst,
                        src: *src,
                    },
                    Inst::IntOp { op, dst, a, b } => Op::IntAlu {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                        ll: match op {
                            IntOp::Mul => 1,
                            IntOp::UDiv | IntOp::URem => 9,
                            _ => 0,
                        },
                    },
                    Inst::Madd { dst, a, b, c, .. } => Op::Madd {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        c: *c,
                    },
                    Inst::FloatOp { op, dst, a, b } => Op::FloatAlu {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                        ll: match op {
                            FloatOp::FDiv => 12,
                            FloatOp::FSqrt => 16,
                            _ => 0,
                        },
                    },
                    Inst::FMadd { dst, a, b, c } => Op::FMadd {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        c: *c,
                    },
                    Inst::FCmp { cond, dst, a, b } => Op::FCmp {
                        cond: *cond,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::VecOp { op, dst, a, b } => Op::Vec {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::Cvt { dst, src, to_int } => Op::Cvt {
                        dst: *dst,
                        src: *src,
                        to_int: *to_int,
                    },
                    Inst::LeaGlobal { dst, global, off } => Op::LeaConst {
                        dst: *dst,
                        addr: prog.map.global_base[global.0 as usize].wrapping_add(*off as u64),
                    },
                    Inst::LeaFunc { dst, func } => Op::LeaConst {
                        dst: *dst,
                        addr: prog.map.func_base[func.0 as usize],
                    },
                    Inst::MovNullPtr { dst } => Op::MovNullPtr { dst: *dst },
                    Inst::PtrAdd { dst, base, off } => Op::PtrAdd {
                        dst: *dst,
                        base: *base,
                        off: *off,
                    },
                    Inst::PtrToInt { dst, src } => Op::PtrToInt {
                        dst: *dst,
                        src: *src,
                    },
                    Inst::LoadPtr { .. }
                    | Inst::StorePtr { .. }
                    | Inst::LoadPtrIdx { .. }
                    | Inst::StorePtrIdx { .. } => Op::BadGeneric,
                    Inst::LoadCapTable { dst, slot, off } => Op::LoadCapTable {
                        dst: *dst,
                        addr: prog.map.captable_base + u64::from(*slot) * 16,
                        off: *off,
                    },
                    Inst::Load {
                        dst,
                        base,
                        off,
                        size,
                        kind,
                        scaled,
                    } => {
                        let bytes = match kind {
                            LoadKind::Cap => 16,
                            _ => size.bytes(),
                        } as u8;
                        Op::Load {
                            dst: *dst,
                            base: *base,
                            off: decode_off(*off, *scaled),
                            size: *size,
                            kind: *kind,
                            bytes,
                        }
                    }
                    Inst::Store {
                        src,
                        base,
                        off,
                        size,
                        kind,
                        scaled,
                    } => {
                        let bytes = match kind {
                            LoadKind::Cap => 16,
                            _ => size.bytes(),
                        } as u8;
                        Op::Store {
                            src: *src,
                            base: *base,
                            off: decode_off(*off, *scaled),
                            size: *size,
                            kind: *kind,
                            bytes,
                        }
                    }
                    Inst::Jump { target } => {
                        let (t_ip, t_pc) = label(*target);
                        Op::Jump { t_ip, t_pc }
                    }
                    Inst::CondBr { cond, a, b, target } => {
                        let (t_ip, t_pc) = label(*target);
                        Op::CondBr {
                            cond: *cond,
                            a: *a,
                            b: *b,
                            t_ip,
                            t_pc,
                        }
                    }
                    Inst::Call { func, args, ret } => Op::Call {
                        callee: func.0,
                        args: intern(args),
                        ret: *ret,
                        pcc_change: prog.abi.capability_branches()
                            && prog.funcs[func.0 as usize].module != caller_module,
                    },
                    Inst::CallIndirect { target, args, ret } => Op::CallIndirect {
                        target: *target,
                        args: intern(args),
                        ret: *ret,
                    },
                    Inst::Ret { val } => Op::Ret { val: *val },
                    Inst::Malloc { dst, size } => Op::Malloc {
                        dst: *dst,
                        size: *size,
                    },
                    Inst::Free { ptr } => Op::Free { ptr: *ptr },
                    Inst::CapOp { op, dst, a, b } => Op::CapOp {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                    },
                    Inst::CapOp2 { op, a, auth, dst } => Op::CapOp2 {
                        op: *op,
                        a: *a,
                        auth: *auth,
                        dst: *dst,
                    },
                    Inst::Halt { code } => Op::Halt { code: *code },
                    Inst::Region { id } => Op::Region { id: *id },
                })
                .collect();
            let (micros, blocks, block_idx, block_classes) = build_blocks(&ops, base_pc);
            let block_base = total_blocks;
            total_blocks += blocks.len() as u32;
            funcs.push(DecodedFunc {
                ops: ops.into_boxed_slice(),
                micros: micros.into_boxed_slice(),
                blocks: blocks.into_boxed_slice(),
                block_classes: block_classes.into_boxed_slice(),
                block_idx: block_idx.into_boxed_slice(),
                block_base,
                base_pc,
                frame_size: f.frame_size,
                params: f.params,
                vregs: f.vregs,
                module: f.module,
            });
        }
        DecodedProgram {
            funcs: funcs.into_boxed_slice(),
            args: pool.into_boxed_slice(),
            total_blocks,
        }
    }
}

fn decode_off(off: Operand, scaled: bool) -> Off {
    match off {
        Operand::Imm(i) => Off::Imm(i),
        Operand::Reg(r) if scaled => Off::RegScaled(r),
        Operand::Reg(r) => Off::Reg(r),
    }
}

// ---- Superblocks and packed micro-ops ------------------------------------
//
// The direct-threaded engine does not dispatch on the `Op` enum at all:
// decode additionally partitions each function into *superblocks* —
// single-entry straight-line runs whose interiors are ops that retire
// exactly one event, neither transfer control nor touch the runtime,
// and pack into a flat [`MicroOp`]. A block ends at a *terminator*
// (branch, call, return, allocator intrinsic, halt, region marker,
// `BadGeneric`, or the rare op whose operands do not fit the packed
// form); the terminator stays an `Op` and is executed by the per-op
// slow path. Interiors dispatch through a per-ABI fn-pointer table
// indexed by [`MicroOp::kind`], with the per-instruction bookkeeping
// (fuel check, retired count, `ClassCounts`) hoisted to block
// boundaries via the pre-summed [`DecodedFunc::block_classes`].

/// One packed interior micro-op: 32 bytes, flat fields, no nested
/// enums. `kind` indexes the dispatch table; the other fields are
/// kind-specific (see [`mk`] for the conventions).
#[derive(Clone, Copy, Debug)]
pub(crate) struct MicroOp {
    /// Absolute pc of this op (`base_pc + ip * 4`).
    pub(crate) pc: u64,
    /// Immediate payload: integer/f64-bits immediates, absolute
    /// addresses, byte offsets.
    pub(crate) imm: u64,
    /// Secondary payload: `Madd`/`FMadd` third register, or the
    /// captable post-increment offset (as `i32`).
    pub(crate) aux: u32,
    /// Destination register (source register for stores).
    pub(crate) dst: u16,
    /// First source register (base register for memory ops).
    pub(crate) a: u16,
    /// Second source register (offset register for memory ops).
    pub(crate) b: u16,
    /// Dispatch-table index.
    pub(crate) kind: u8,
    /// Access width in bytes for memory ops; long-latency extra for
    /// int/float ALU ops; unused otherwise.
    pub(crate) sz: u8,
}

/// Micro-op kinds: the dispatch-table indices. One kind per (operation
/// × operand-form) so handlers are fully specialised — no inner operand
/// or size `match` survives on the interior path. `*_RR` reads its
/// second operand from register `b`, `*_RI` from `imm`. Memory-op
/// kinds come in `IMM`/`REG`/`SCL` offset-mode triples (immediate
/// offset in `imm`, register offset in `b`, width-scaled register
/// offset in `b`), and those triples must stay adjacent (`pack` relies
/// on `base + 1` / `base + 2`).
#[allow(missing_docs)]
pub(crate) mod mk {
    pub const MOV_IMM: u8 = 1;
    pub const MOV_F64: u8 = 2;
    pub const MOV: u8 = 3;
    pub const ADD_RR: u8 = 4;
    pub const ADD_RI: u8 = 5;
    pub const SUB_RR: u8 = 6;
    pub const SUB_RI: u8 = 7;
    pub const MUL_RR: u8 = 8;
    pub const MUL_RI: u8 = 9;
    pub const UDIV_RR: u8 = 10;
    pub const UDIV_RI: u8 = 11;
    pub const UREM_RR: u8 = 12;
    pub const UREM_RI: u8 = 13;
    pub const AND_RR: u8 = 14;
    pub const AND_RI: u8 = 15;
    pub const ORR_RR: u8 = 16;
    pub const ORR_RI: u8 = 17;
    pub const EOR_RR: u8 = 18;
    pub const EOR_RI: u8 = 19;
    pub const LSL_RR: u8 = 20;
    pub const LSL_RI: u8 = 21;
    pub const LSR_RR: u8 = 22;
    pub const LSR_RI: u8 = 23;
    pub const ASR_RR: u8 = 24;
    pub const ASR_RI: u8 = 25;
    pub const MADD: u8 = 26;
    pub const FADD: u8 = 27;
    pub const FSUB: u8 = 28;
    pub const FMUL: u8 = 29;
    pub const FDIV: u8 = 30;
    pub const FMIN: u8 = 31;
    pub const FMAX: u8 = 32;
    pub const FSQRT: u8 = 33;
    pub const FMADD: u8 = 34;
    pub const FCEQ: u8 = 35;
    pub const FCNE: u8 = 36;
    pub const FCLT: u8 = 37;
    pub const FCLE: u8 = 38;
    pub const FCGT: u8 = 39;
    pub const FCGE: u8 = 40;
    pub const VADD: u8 = 41;
    pub const VMUL: u8 = 42;
    pub const VFMA: u8 = 43;
    pub const VSAD: u8 = 44;
    pub const CVT_TO_INT: u8 = 45;
    pub const CVT_TO_F64: u8 = 46;
    pub const LEA: u8 = 47;
    pub const MOV_NULL: u8 = 48;
    pub const PTR_ADD_RR: u8 = 49;
    pub const PTR_ADD_RI: u8 = 50;
    pub const PTR_TO_INT: u8 = 51;
    pub const LOAD_CT: u8 = 52;
    pub const LD_U8_IMM: u8 = 53;
    pub const LD_U16_IMM: u8 = 56;
    pub const LD_U32_IMM: u8 = 59;
    pub const LD_U64_IMM: u8 = 62;
    pub const LD_F64_IMM: u8 = 65;
    pub const LD_CAP_IMM: u8 = 68;
    pub const ST_U8_IMM: u8 = 71;
    pub const ST_U16_IMM: u8 = 74;
    pub const ST_U32_IMM: u8 = 77;
    pub const ST_U64_IMM: u8 = 80;
    pub const ST_F64_IMM: u8 = 83;
    pub const ST_CAP_IMM: u8 = 86;
    pub const CINC_RR: u8 = 89;
    pub const CINC_RI: u8 = 90;
    pub const CSETADDR_RR: u8 = 91;
    pub const CSETADDR_RI: u8 = 92;
    pub const CSETB_RR: u8 = 93;
    pub const CSETB_RI: u8 = 94;
    pub const CSETBE_RR: u8 = 95;
    pub const CSETBE_RI: u8 = 96;
    pub const CANDP_RR: u8 = 97;
    pub const CANDP_RI: u8 = 98;
    pub const CGETADDR: u8 = 99;
    pub const CGETLEN: u8 = 100;
    pub const CGETBASE: u8 = 101;
    pub const CGETTAG: u8 = 102;
    pub const CSEALE: u8 = 103;
    pub const CCLEARTAG: u8 = 104;
    pub const CSEAL: u8 = 105;
    pub const CUNSEAL: u8 = 106;
    /// Offset-mode strides within a memory-kind triple.
    pub const OFF_REG: u8 = 1;
    pub const OFF_SCL: u8 = 2;
}

/// Sentinel `term` for a block that falls through into the next leader
/// without a terminator op (no control transfer happens at the seam, so
/// no event and no extra fuel check either).
pub(crate) const NO_TERM: u32 = u32::MAX;

/// One single-entry straight-line run of packed micro-ops.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Superblock {
    /// First op ip of the block (always a leader: every control
    /// transfer in the function lands on some block's `start_ip`).
    pub(crate) start_ip: u32,
    /// First interior micro-op in [`DecodedFunc::micros`].
    pub(crate) first: u32,
    /// Number of interior micro-ops. Each retires exactly one event,
    /// so `n` is also the block's interior fuel cost.
    pub(crate) n: u32,
    /// ip of the terminator `Op`, or [`NO_TERM`] for fallthrough.
    pub(crate) term: u32,
    /// Pre-resolved local block index of the terminator's branch target
    /// when the terminator is `Jump`/`CondBr`, else [`NO_TERM`]. Lets
    /// the dispatch loop chain block-to-block without re-deriving the
    /// block index from the target ip.
    pub(crate) t_blk: u32,
}

/// Packs one interior op into a [`MicroOp`] with its (payload-static)
/// event class, or `None` for terminators. Interior classes never
/// depend on the pc: application code lives at `pc >= CODE_BASE`, above
/// every runtime window, so `OpClass::of` is payload-only here (the
/// engine's debug asserts re-check every emitted event against a fresh
/// classification).
fn pack(op: &Op, pc: u64) -> Option<(MicroOp, OpClass)> {
    let mut mo = MicroOp {
        pc,
        imm: 0,
        aux: 0,
        dst: 0,
        a: 0,
        b: 0,
        kind: 0,
        sz: 0,
    };
    let class = match *op {
        Op::MovImm { dst, imm } => {
            mo.kind = mk::MOV_IMM;
            mo.dst = dst;
            mo.imm = imm;
            OpClass::IntAlu
        }
        Op::MovF64 { dst, imm } => {
            mo.kind = mk::MOV_F64;
            mo.dst = dst;
            mo.imm = imm.to_bits();
            OpClass::IntAlu
        }
        Op::Mov { dst, src } => {
            mo.kind = mk::MOV;
            mo.dst = dst;
            mo.a = src;
            OpClass::IntAlu
        }
        Op::IntAlu { op, dst, a, b, ll } => {
            // The long-latency extra rides in the (otherwise unused)
            // width byte; the handler rebuilds the exact event info.
            mo.sz = ll;
            let (rr, ri) = match op {
                IntOp::Add => (mk::ADD_RR, mk::ADD_RI),
                IntOp::Sub => (mk::SUB_RR, mk::SUB_RI),
                IntOp::Mul => (mk::MUL_RR, mk::MUL_RI),
                IntOp::UDiv => (mk::UDIV_RR, mk::UDIV_RI),
                IntOp::URem => (mk::UREM_RR, mk::UREM_RI),
                IntOp::And => (mk::AND_RR, mk::AND_RI),
                IntOp::Orr => (mk::ORR_RR, mk::ORR_RI),
                IntOp::Eor => (mk::EOR_RR, mk::EOR_RI),
                IntOp::Lsl => (mk::LSL_RR, mk::LSL_RI),
                IntOp::Lsr => (mk::LSR_RR, mk::LSR_RI),
                IntOp::Asr => (mk::ASR_RR, mk::ASR_RI),
            };
            mo.dst = dst;
            mo.a = a;
            match b {
                Operand::Reg(r) => {
                    mo.kind = rr;
                    mo.b = r;
                }
                Operand::Imm(i) => {
                    mo.kind = ri;
                    mo.imm = i as u64;
                }
            }
            OpClass::IntAlu
        }
        Op::Madd { dst, a, b, c } => {
            mo.kind = mk::MADD;
            mo.dst = dst;
            mo.a = a;
            mo.b = b;
            mo.aux = u32::from(c);
            OpClass::IntAlu
        }
        Op::FloatAlu { op, dst, a, b, ll } => {
            mo.sz = ll;
            mo.kind = match op {
                FloatOp::FAdd => mk::FADD,
                FloatOp::FSub => mk::FSUB,
                FloatOp::FMul => mk::FMUL,
                FloatOp::FDiv => mk::FDIV,
                FloatOp::FMin => mk::FMIN,
                FloatOp::FMax => mk::FMAX,
                FloatOp::FSqrt => mk::FSQRT,
            };
            mo.dst = dst;
            mo.a = a;
            mo.b = b;
            OpClass::IntAlu
        }
        Op::FMadd { dst, a, b, c } => {
            mo.kind = mk::FMADD;
            mo.dst = dst;
            mo.a = a;
            mo.b = b;
            mo.aux = u32::from(c);
            OpClass::IntAlu
        }
        Op::FCmp { cond, dst, a, b } => {
            // Signed and unsigned orderings coincide on f64 compares,
            // exactly as the reference arm folds them.
            mo.kind = match cond {
                Cond::Eq => mk::FCEQ,
                Cond::Ne => mk::FCNE,
                Cond::Ltu | Cond::Lts => mk::FCLT,
                Cond::Leu => mk::FCLE,
                Cond::Gtu | Cond::Gts => mk::FCGT,
                Cond::Geu => mk::FCGE,
            };
            mo.dst = dst;
            mo.a = a;
            mo.b = b;
            OpClass::IntAlu
        }
        Op::Vec { op, dst, a, b } => {
            mo.kind = match op {
                VecKind::VAdd => mk::VADD,
                VecKind::VMul => mk::VMUL,
                VecKind::VFma => mk::VFMA,
                VecKind::VSad => mk::VSAD,
            };
            mo.dst = dst;
            mo.a = a;
            mo.b = b;
            OpClass::IntAlu
        }
        Op::Cvt { dst, src, to_int } => {
            mo.kind = if to_int {
                mk::CVT_TO_INT
            } else {
                mk::CVT_TO_F64
            };
            mo.dst = dst;
            mo.a = src;
            OpClass::IntAlu
        }
        Op::LeaConst { dst, addr } => {
            mo.kind = mk::LEA;
            mo.dst = dst;
            mo.imm = addr;
            OpClass::IntAlu
        }
        Op::MovNullPtr { dst } => {
            mo.kind = mk::MOV_NULL;
            mo.dst = dst;
            OpClass::IntAlu
        }
        Op::PtrAdd { dst, base, off } => {
            mo.dst = dst;
            mo.a = base;
            match off {
                Operand::Reg(r) => {
                    mo.kind = mk::PTR_ADD_RR;
                    mo.b = r;
                }
                Operand::Imm(i) => {
                    mo.kind = mk::PTR_ADD_RI;
                    mo.imm = i as u64;
                }
            }
            OpClass::IntAlu
        }
        Op::PtrToInt { dst, src } => {
            mo.kind = mk::PTR_TO_INT;
            mo.dst = dst;
            mo.a = src;
            OpClass::IntAlu
        }
        Op::LoadCapTable { dst, addr, off } => {
            // The post-increment must fit `aux`; a wider one demotes
            // the op to a terminator (slow-path executed, still exact).
            let off32 = i32::try_from(off).ok()?;
            mo.kind = mk::LOAD_CT;
            mo.dst = dst;
            mo.imm = addr;
            mo.aux = off32 as u32;
            OpClass::MemCap
        }
        Op::Load {
            dst,
            base,
            off,
            kind,
            bytes,
            ..
        } => {
            let col = match kind {
                LoadKind::Int => match bytes {
                    1 => mk::LD_U8_IMM,
                    2 => mk::LD_U16_IMM,
                    4 => mk::LD_U32_IMM,
                    _ => mk::LD_U64_IMM,
                },
                LoadKind::F64 => mk::LD_F64_IMM,
                LoadKind::Cap => mk::LD_CAP_IMM,
            };
            mo.dst = dst;
            mo.a = base;
            mo.sz = bytes;
            pack_off(&mut mo, col, off);
            if matches!(kind, LoadKind::Cap) {
                OpClass::MemCap
            } else {
                OpClass::MemScalar
            }
        }
        Op::Store {
            src,
            base,
            off,
            kind,
            bytes,
            ..
        } => {
            let col = match kind {
                LoadKind::Int => match bytes {
                    1 => mk::ST_U8_IMM,
                    2 => mk::ST_U16_IMM,
                    4 => mk::ST_U32_IMM,
                    _ => mk::ST_U64_IMM,
                },
                LoadKind::F64 => mk::ST_F64_IMM,
                LoadKind::Cap => mk::ST_CAP_IMM,
            };
            mo.dst = src;
            mo.a = base;
            mo.sz = bytes;
            pack_off(&mut mo, col, off);
            if matches!(kind, LoadKind::Cap) {
                OpClass::MemCap
            } else {
                OpClass::MemScalar
            }
        }
        Op::CapOp { op, dst, a, b } => {
            mo.dst = dst;
            mo.a = a;
            mo.kind = match op {
                CapOpKind::IncOffset
                | CapOpKind::SetAddr
                | CapOpKind::SetBounds
                | CapOpKind::SetBoundsExact
                | CapOpKind::AndPerm => {
                    let (rr, ri) = match op {
                        CapOpKind::IncOffset => (mk::CINC_RR, mk::CINC_RI),
                        CapOpKind::SetAddr => (mk::CSETADDR_RR, mk::CSETADDR_RI),
                        CapOpKind::SetBounds => (mk::CSETB_RR, mk::CSETB_RI),
                        CapOpKind::SetBoundsExact => (mk::CSETBE_RR, mk::CSETBE_RI),
                        _ => (mk::CANDP_RR, mk::CANDP_RI),
                    };
                    match b {
                        Operand::Reg(r) => {
                            mo.b = r;
                            rr
                        }
                        Operand::Imm(i) => {
                            mo.imm = i as u64;
                            ri
                        }
                    }
                }
                CapOpKind::GetAddr => mk::CGETADDR,
                CapOpKind::GetLen => mk::CGETLEN,
                CapOpKind::GetBase => mk::CGETBASE,
                CapOpKind::GetTag => mk::CGETTAG,
                CapOpKind::SealEntry => mk::CSEALE,
                CapOpKind::ClearTag => mk::CCLEARTAG,
            };
            OpClass::CapManip
        }
        Op::CapOp2 { op, a, auth, dst } => {
            mo.kind = match op {
                CapOp2Kind::Seal => mk::CSEAL,
                CapOp2Kind::Unseal => mk::CUNSEAL,
            };
            mo.dst = dst;
            mo.a = a;
            mo.b = auth;
            OpClass::CapManip
        }
        // Terminators: control transfers, runtime intrinsics, region
        // markers, halt, and the lowering-reject sentinel.
        Op::Jump { .. }
        | Op::CondBr { .. }
        | Op::Call { .. }
        | Op::CallIndirect { .. }
        | Op::Ret { .. }
        | Op::Malloc { .. }
        | Op::Free { .. }
        | Op::Halt { .. }
        | Op::Region { .. }
        | Op::BadGeneric => return None,
    };
    Some((mo, class))
}

/// Applies the offset mode to a memory-kind triple base (`IMM` base,
/// `+1` register, `+2` scaled register).
fn pack_off(mo: &mut MicroOp, col: u8, off: Off) {
    match off {
        Off::Imm(i) => {
            mo.kind = col;
            mo.imm = i as u64;
        }
        Off::Reg(r) => {
            mo.kind = col + mk::OFF_REG;
            mo.b = r;
        }
        Off::RegScaled(r) => {
            mo.kind = col + mk::OFF_SCL;
            mo.b = r;
        }
    }
}

/// Partitions one function into superblocks. Leaders are ip 0, every
/// in-function branch target, and the op after every terminator; blocks
/// run from a leader to the next terminator (inclusive, as `term`) or
/// fall through at the next leader ([`NO_TERM`]).
fn build_blocks(
    ops: &[Op],
    base_pc: u64,
) -> (Vec<MicroOp>, Vec<Superblock>, Vec<u32>, Vec<ClassCounts>) {
    let len = ops.len();
    let packed: Vec<Option<(MicroOp, OpClass)>> = ops
        .iter()
        .enumerate()
        .map(|(ip, op)| pack(op, base_pc + ip as u64 * 4))
        .collect();
    // `leader` has one extra slot so a branch target of `len` (or a
    // terminator as last op) needs no bounds special-casing.
    let mut leader = vec![false; len + 1];
    if len > 0 {
        leader[0] = true;
    }
    for (ip, op) in ops.iter().enumerate() {
        match *op {
            Op::Jump { t_ip, .. } => leader[t_ip as usize] = true,
            Op::CondBr { t_ip, .. } => leader[t_ip as usize] = true,
            _ => {}
        }
        if packed[ip].is_none() {
            leader[ip + 1] = true;
        }
    }
    let mut micros = Vec::new();
    let mut blocks = Vec::new();
    let mut block_idx = vec![0u32; len];
    let mut block_classes = Vec::new();
    let mut ip = 0usize;
    while ip < len {
        let start = ip;
        let first = micros.len() as u32;
        let mut classes = ClassCounts::new();
        let mut term = NO_TERM;
        loop {
            match packed[ip] {
                Some((mo, class)) => {
                    micros.push(mo);
                    classes.bump(class);
                    ip += 1;
                    if ip == len || leader[ip] {
                        break;
                    }
                }
                None => {
                    term = ip as u32;
                    ip += 1;
                    break;
                }
            }
        }
        let b = blocks.len() as u32;
        for slot in &mut block_idx[start..ip] {
            *slot = b;
        }
        blocks.push(Superblock {
            start_ip: start as u32,
            first,
            n: micros.len() as u32 - first,
            term,
            t_blk: NO_TERM,
        });
        block_classes.push(classes);
    }
    // Resolve branch-terminator targets to block indices now that the
    // whole partition exists.
    for blk in &mut blocks {
        if blk.term != NO_TERM {
            match ops[blk.term as usize] {
                Op::Jump { t_ip, .. } | Op::CondBr { t_ip, .. } => {
                    blk.t_blk = block_idx[t_ip as usize];
                }
                _ => {}
            }
        }
    }
    (micros, blocks, block_idx, block_classes)
}

/// Superblock-shape statistics for one program — the observability
/// counterpart of the direct-threaded engine (reported by the speed
/// bench as the schema-v2 block-size histogram).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct SuperblockStats {
    /// Total superblocks across all functions.
    pub blocks: u64,
    /// Total packed interior micro-ops (fast-path dispatched).
    pub interior_ops: u64,
    /// Ops kept as terminators (slow-path stepped).
    pub terminators: u64,
    /// Blocks that fall through without a terminator.
    pub fallthrough_blocks: u64,
    /// `size_hist[k]` = blocks with `k` interior ops; the final bucket
    /// aggregates every larger block.
    pub size_hist: Vec<u64>,
}

/// Buckets in [`SuperblockStats::size_hist`] (0..=30 exact, 31 = "31+").
const SIZE_HIST_BUCKETS: usize = 32;

/// Decodes `prog` and folds its superblock partition into
/// [`SuperblockStats`]. Pure observability — the result has no effect
/// on execution.
pub fn superblock_stats(prog: &Program) -> SuperblockStats {
    let dec = DecodedProgram::decode(prog);
    let mut s = SuperblockStats {
        size_hist: vec![0; SIZE_HIST_BUCKETS],
        ..SuperblockStats::default()
    };
    for f in dec.funcs.iter() {
        for b in f.blocks.iter() {
            s.blocks += 1;
            s.interior_ops += u64::from(b.n);
            if b.term == NO_TERM {
                s.fallthrough_blocks += 1;
            } else {
                s.terminators += 1;
            }
            let bucket = (b.n as usize).min(SIZE_HIST_BUCKETS - 1);
            s.size_hist[bucket] += 1;
        }
    }
    s
}
