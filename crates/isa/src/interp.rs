//! The architectural interpreter.
//!
//! Executes a lowered [`Program`] against [`cheri_mem::TaggedMemory`],
//! enforcing full capability semantics under the capability ABIs, and
//! streams one [`RetiredEvent`] per retired instruction (including the
//! synthetic prologue/epilogue and allocator instructions) to an
//! [`EventSink`] — the interface the microarchitectural timing model
//! consumes.
//!
//! Loads carry a *dependent-load* hint: whether the address was derived
//! from a recently loaded value. This distinguishes pointer-chasing
//! (serialised misses, low memory-level parallelism — `520.omnetpp_r`)
//! from streaming access (overlapped misses — `519.lbm_r`, LLaMA matmul),
//! which is what makes the backend-bound split in the paper's top-down
//! analysis reproducible.

use crate::classify::{ClassCounts, OpClass};
use crate::inst::{BranchKind, FloatOp, InstClass, IntOp};
use crate::program::Program;
use cheri_cap::CapFault;
use cheri_mem::{HeapStats, MemError, MemStats};
use cheri_revoke::StrategyKind;
use core::fmt;

/// One retired instruction, as observed by the timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetiredEvent {
    /// The code address of the instruction (drives L1I/ITLB modelling).
    pub pc: u64,
    /// What retired.
    pub info: RetiredInfo,
}

/// Payload of a retired instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetiredInfo {
    /// A non-memory, non-branch instruction of the given class.
    Simple(InstClass),
    /// A non-pipelined long-latency instruction (multiply, divide, square
    /// root): `extra` is its additional execution latency in cycles.
    LongLatency {
        /// The instruction class.
        class: InstClass,
        /// Extra execution cycles beyond a pipelined op.
        extra: u8,
    },
    /// A capability-manipulation instruction (counts as `DP_SPEC`, but
    /// tracked separately — the paper's instruction-mix shift).
    CapManip,
    /// A data load.
    Load {
        /// Effective address.
        addr: u64,
        /// Access size in bytes (16 for capabilities).
        size: u8,
        /// Capability (tag-checked) load?
        is_cap: bool,
        /// Was the address derived from a recently loaded value
        /// (pointer chasing)?
        dep_load: bool,
    },
    /// A data store.
    Store {
        /// Effective address.
        addr: u64,
        /// Access size in bytes (16 for capabilities).
        size: u8,
        /// Capability (tag-carrying) store?
        is_cap: bool,
    },
    /// A control-flow instruction.
    Branch {
        /// The branch kind (for `BR_*_SPEC` and predictor modelling).
        kind: BranchKind,
        /// Whether it was taken.
        taken: bool,
        /// The (would-be) target address.
        target: u64,
        /// Did this branch change PCC bounds (purecap cross-module or
        /// indirect control flow)? Morello's predictor stalls on these.
        pcc_change: bool,
    },
}

impl RetiredInfo {
    /// The `*_SPEC` class of this event.
    pub fn class(&self) -> InstClass {
        match self {
            RetiredInfo::Simple(c) => *c,
            RetiredInfo::LongLatency { class, .. } => *class,
            RetiredInfo::CapManip => InstClass::Dp,
            RetiredInfo::Load { .. } => InstClass::Ld,
            RetiredInfo::Store { .. } => InstClass::St,
            RetiredInfo::Branch { kind, .. } => match kind {
                BranchKind::Immediate | BranchKind::Call => InstClass::BrImmed,
                BranchKind::Indirect | BranchKind::IndirectCall => InstClass::BrIndirect,
                BranchKind::Return => InstClass::BrReturn,
            },
        }
    }
}

/// Consumer of retired-instruction events (the timing model).
pub trait EventSink {
    /// `true` when this sink wants superblock-batched delivery: the
    /// fast engine then buffers each straight-line block's interior
    /// events and hands them over in one
    /// [`retire_block_classified`](EventSink::retire_block_classified)
    /// call at the block boundary instead of one virtual hop per op.
    /// The default (`false`) keeps per-op delivery; sinks that override
    /// this must preserve per-event ordering semantics exactly.
    const WANTS_BLOCK_EVENTS: bool = false;

    /// Called once per retired instruction, in program order.
    fn retire(&mut self, ev: RetiredEvent);

    /// As [`retire`](EventSink::retire), but with the event's
    /// [`OpClass`] already computed by the caller. The pre-decoded
    /// engine resolves classes at decode time and uses this entry point
    /// so sinks that classify (the timing core) can skip re-deriving
    /// it. `class` must equal `OpClass::of(ev.pc, &ev.info)`; the
    /// default ignores the hint and forwards to `retire`, so the two
    /// entry points are always observationally identical.
    #[inline]
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        let _ = class;
        self.retire(ev);
    }

    /// Delivers one superblock's retired events (with pre-computed
    /// classes) in program order. Only called by the fast engine, and
    /// only when [`WANTS_BLOCK_EVENTS`](EventSink::WANTS_BLOCK_EVENTS)
    /// is `true`; the batch never spans a control transfer, a region
    /// marker, or an error, so delivery order across calls is identical
    /// to per-op delivery. The default unrolls to
    /// [`retire_classified`](EventSink::retire_classified), keeping the
    /// two delivery modes observationally identical.
    #[inline]
    fn retire_block_classified(&mut self, evs: &[(RetiredEvent, OpClass)]) {
        for (ev, class) in evs {
            self.retire_classified(*ev, *class);
        }
    }

    /// Called when execution crosses a [`Region`](crate::Inst::Region)
    /// marker. Markers retire no instruction and cost no cycles; sinks
    /// that do not attribute work to regions can ignore them (the
    /// default does nothing). `u32::MAX` means "leave the current
    /// region".
    #[inline]
    fn region(&mut self, id: u32) {
        let _ = id;
    }
}

/// A sink that discards all events (functional-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn retire(&mut self, _ev: RetiredEvent) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    const WANTS_BLOCK_EVENTS: bool = S::WANTS_BLOCK_EVENTS;

    #[inline]
    fn retire(&mut self, ev: RetiredEvent) {
        (**self).retire(ev);
    }

    #[inline]
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        (**self).retire_classified(ev, class);
    }

    #[inline]
    fn retire_block_classified(&mut self, evs: &[(RetiredEvent, OpClass)]) {
        (**self).retire_block_classified(evs);
    }

    #[inline]
    fn region(&mut self, id: u32) {
        (**self).region(id);
    }
}

/// What the SIGPROT-analogue handler does with a capability fault — the
/// per-run disposition CheriBSD processes choose between dying on
/// `SIGPROT`, ignoring it, or longjmp-ing out of the faulting frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RecoveryPolicy {
    /// The fault ends the run (`InterpError::Fault` propagates) — the
    /// default, and the only behaviour before fault injection existed.
    #[default]
    Abort,
    /// The faulting instruction is suppressed and execution resumes at
    /// the next instruction (an ignoring signal handler).
    SkipFaultingOp,
    /// The faulting frame is abandoned: control returns to the caller
    /// as if the call had returned zero (a `longjmp` checkpoint at
    /// every call site). Unwinding the entry frame ends the program
    /// with [`UNWIND_EXIT`].
    UnwindToCheckpoint,
}

/// Exit code reported when [`RecoveryPolicy::UnwindToCheckpoint`]
/// unwinds the entry frame itself: distinguishable from any workload
/// checksum, so a fully-unwound run never masquerades as a clean one.
pub const UNWIND_EXIT: u64 = 0xFA17_DEAD_0000_0000;

/// The architectural corruption a triggered injection applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionKind {
    /// Clear the tag on the base capability (a wild store over tagged
    /// memory, the canonical CHERI-detected corruption). Under hybrid
    /// the analogous raw-pointer corruption goes unchecked.
    TagClear,
    /// Nudge the pointer past the top of its allocation by `delta`
    /// bytes (a linear overflow).
    BoundsNudge {
        /// Bytes past the top of the object.
        delta: u64,
    },
    /// Strip the load/store permissions (a confused-deputy handoff).
    PermDrop,
    /// Corrupt the program counter capability. Under capability ABIs
    /// the next fetch traps; under hybrid the raw PC is unchecked and
    /// the corruption is journaled as undetected.
    PccCorrupt,
}

/// A deterministic fault injector armed for one run.
///
/// The interpreter polls the injector at every memory access and at the
/// top of the fetch loop; all methods default to "inactive", and
/// [`active`](FaultInjector::active) gates every poll so a [`NoInjector`]
/// run compiles down to the original fault-free interpreter loop.
pub trait FaultInjector {
    /// Whether any trigger is still armed. `false` (the default) makes
    /// every other hook unreachable.
    #[inline]
    fn active(&self) -> bool {
        false
    }

    /// Polled before each instruction fetch; returning `true` corrupts
    /// the PCC at this point.
    #[inline]
    fn poll_pcc(&mut self, retired: u64, pc: u64) -> bool {
        let _ = (retired, pc);
        false
    }

    /// Polled at each data access with the would-be effective address;
    /// returning a kind applies that corruption to the base register
    /// before the access is checked.
    #[inline]
    fn poll_mem(
        &mut self,
        retired: u64,
        pc: u64,
        ea: u64,
        is_store: bool,
    ) -> Option<InjectionKind> {
        let _ = (retired, pc, ea, is_store);
        None
    }

    /// A capability fault (injected or organic) reached the handler.
    #[inline]
    fn trapped(&mut self, pc: u64) {
        let _ = pc;
    }

    /// The handler unwound a frame ([`RecoveryPolicy::UnwindToCheckpoint`]).
    #[inline]
    fn unwound(&mut self, pc: u64) {
        let _ = pc;
    }

    /// The fault disposition for this run.
    #[inline]
    fn policy(&self) -> RecoveryPolicy {
        RecoveryPolicy::Abort
    }
}

/// The inert injector: every plain [`Interp::run`] uses it, and its
/// `active() == false` keeps the injection hooks off the hot path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoInjector;

impl FaultInjector for NoInjector {}

impl<I: FaultInjector + ?Sized> FaultInjector for &mut I {
    #[inline]
    fn active(&self) -> bool {
        (**self).active()
    }

    #[inline]
    fn poll_pcc(&mut self, retired: u64, pc: u64) -> bool {
        (**self).poll_pcc(retired, pc)
    }

    #[inline]
    fn poll_mem(
        &mut self,
        retired: u64,
        pc: u64,
        ea: u64,
        is_store: bool,
    ) -> Option<InjectionKind> {
        (**self).poll_mem(retired, pc, ea, is_store)
    }

    #[inline]
    fn trapped(&mut self, pc: u64) {
        (**self).trapped(pc);
    }

    #[inline]
    fn unwound(&mut self, pc: u64) {
        (**self).unwound(pc);
    }

    #[inline]
    fn policy(&self) -> RecoveryPolicy {
        (**self).policy()
    }
}

/// Interpreter configuration.
///
/// Serialisable so a [`Platform`](../morello_sim/struct.Platform.html)
/// snapshot (and therefore a run journal) records the interpreter limits
/// it ran under, not just the microarchitecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InterpConfig {
    /// Abort after this many retired instructions.
    pub max_insts: u64,
    /// A load whose base was produced within this many loads is flagged
    /// dependent (pointer chasing).
    pub dep_window: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
    /// Allocator discipline for the capability ABIs (hybrid always runs
    /// classic `malloc`). [`StrategyKind::Classic`] is promoted to
    /// [`StrategyKind::CapabilityPadded`] here, because capability ABIs
    /// need representable bounds.
    #[serde(default)]
    pub cap_alloc: StrategyKind,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            max_insts: 2_000_000_000,
            dep_window: 6,
            max_call_depth: 4096,
            cap_alloc: StrategyKind::CapabilityPadded,
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum InterpError {
    /// A capability violation (the CHERI security exception). Under the
    /// hybrid ABI these cannot occur.
    Fault {
        /// The underlying fault.
        fault: CapFault,
        /// The faulting instruction's address.
        pc: u64,
        /// The enclosing function's name.
        func: String,
    },
    /// A functional memory error (alignment/wrap).
    Mem {
        /// The underlying error.
        err: MemError,
        /// The faulting instruction's address.
        pc: u64,
    },
    /// A register held the wrong kind of value (workload bug).
    TypeConfusion {
        /// The faulting instruction's address.
        pc: u64,
        /// What was expected.
        expected: &'static str,
    },
    /// An indirect branch targeted an address outside any function.
    UnknownCode {
        /// The bogus target.
        addr: u64,
        /// The faulting instruction's address.
        pc: u64,
    },
    /// The instruction budget ran out.
    FuelExhausted {
        /// Instructions retired before the abort.
        retired: u64,
    },
    /// Call depth exceeded.
    CallDepth {
        /// The faulting instruction's address.
        pc: u64,
    },
    /// Static program error (arg-count mismatch, heap exhaustion, …).
    BadProgram {
        /// Description.
        msg: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Fault { fault, pc, func } => {
                write!(f, "capability fault in `{func}` at pc {pc:#x}: {fault}")
            }
            InterpError::Mem { err, pc } => write!(f, "memory error at pc {pc:#x}: {err}"),
            InterpError::TypeConfusion { pc, expected } => {
                write!(f, "type confusion at pc {pc:#x}: expected {expected}")
            }
            InterpError::UnknownCode { addr, pc } => {
                write!(f, "indirect branch to unknown code {addr:#x} at pc {pc:#x}")
            }
            InterpError::FuelExhausted { retired } => {
                write!(
                    f,
                    "instruction budget exhausted after {retired} instructions"
                )
            }
            InterpError::CallDepth { pc } => write!(f, "call depth exceeded at pc {pc:#x}"),
            InterpError::BadProgram { msg } => write!(f, "bad program: {msg}"),
        }
    }
}

impl std::error::Error for InterpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterpError::Fault { fault, .. } => Some(fault),
            InterpError::Mem { err, .. } => Some(err),
            _ => None,
        }
    }
}

/// The outcome of a completed run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Total retired instructions (architectural events).
    pub retired: u64,
    /// The program's exit code (from `Halt` or `main`'s return value).
    pub exit_code: u64,
    /// Functional memory statistics.
    pub mem_stats: MemStats,
    /// Heap allocator statistics.
    pub heap_stats: HeapStats,
    /// Distinct 4 KiB pages touched (memory footprint).
    pub pages_touched: u64,
    /// Per-opcode-class retired counts; `classes.total() == retired`.
    pub classes: ClassCounts,
}

/// The architectural interpreter. Stateless between runs; all machine
/// state is created per [`run`](Interp::run).
#[derive(Clone, Copy, Debug, Default)]
pub struct Interp {
    cfg: InterpConfig,
}

impl Interp {
    /// Creates an interpreter with the given configuration.
    pub fn new(cfg: InterpConfig) -> Interp {
        Interp { cfg }
    }

    /// Executes the program to completion.
    ///
    /// Runs on the pre-decoded fast engine ([`crate::fastexec`]): the
    /// program is lowered once into a flat arena of decoded micro-ops
    /// and dispatched without the per-instruction decode `match` or
    /// fault-injection polls. The event stream, architectural state,
    /// and every error are bit-identical to the reference executor
    /// (locked by `tests/differential.rs`).
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on capability faults, functional memory
    /// errors, workload bugs (type confusion, unknown indirect targets),
    /// or fuel exhaustion.
    pub fn run<S: EventSink>(
        &self,
        prog: &Program,
        sink: &mut S,
    ) -> Result<RunResult, InterpError> {
        crate::fastexec::run(prog, self.cfg, sink, &mut NoInjector)
    }

    /// Executes the program under a [`FaultInjector`]: the injector's
    /// triggers corrupt machine state mid-run and its
    /// [`RecoveryPolicy`] decides whether capability faults end the run
    /// or are survived (skip / unwind). With an inactive injector this
    /// is bit-identical to [`run`](Interp::run).
    ///
    /// Engine selection: an *inert* injector (`active() == false` under
    /// [`RecoveryPolicy::Abort`]) cannot fire any hook mid-run, so the
    /// pre-decoded fast engine applies; anything armed — or any
    /// non-abort recovery policy — disarms the fast path and the run
    /// falls back to the reference executor, whose loop polls the
    /// injector before every fetch and memory access.
    ///
    /// # Errors
    ///
    /// As [`run`](Interp::run); additionally, injected faults propagate
    /// as [`InterpError::Fault`] only under [`RecoveryPolicy::Abort`].
    pub fn run_with_faults<S: EventSink, I: FaultInjector>(
        &self,
        prog: &Program,
        sink: &mut S,
        inj: &mut I,
    ) -> Result<RunResult, InterpError> {
        if !inj.active() && inj.policy() == RecoveryPolicy::Abort {
            crate::fastexec::run(prog, self.cfg, sink, inj)
        } else {
            crate::refexec::run(prog, self.cfg, sink, inj)
        }
    }

    /// Executes the program on the reference executor — the original
    /// per-instruction `match` interpreter the fast engine is checked
    /// against. Semantically identical to [`run`](Interp::run) (the
    /// differential harness enforces this); only host speed differs.
    ///
    /// # Errors
    ///
    /// As [`run`](Interp::run).
    pub fn run_reference<S: EventSink>(
        &self,
        prog: &Program,
        sink: &mut S,
    ) -> Result<RunResult, InterpError> {
        crate::refexec::run(prog, self.cfg, sink, &mut NoInjector)
    }
}

pub(crate) fn eval_int_op(op: IntOp, a: u64, b: u64) -> u64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::UDiv => a.checked_div(b).unwrap_or(0),
        IntOp::URem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        IntOp::And => a & b,
        IntOp::Orr => a | b,
        IntOp::Eor => a ^ b,
        IntOp::Lsl => a.wrapping_shl(b as u32 & 63),
        IntOp::Lsr => a.wrapping_shr(b as u32 & 63),
        IntOp::Asr => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
    }
}

pub(crate) fn eval_float_op(op: FloatOp, a: f64, b: f64) -> f64 {
    match op {
        FloatOp::FAdd => a + b,
        FloatOp::FSub => a - b,
        FloatOp::FMul => a * b,
        FloatOp::FDiv => a / b,
        FloatOp::FMin => a.min(b),
        FloatOp::FMax => a.max(b),
        FloatOp::FSqrt => a.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_op_semantics_match_aarch64() {
        assert_eq!(eval_int_op(IntOp::Add, u64::MAX, 1), 0, "wrapping add");
        assert_eq!(eval_int_op(IntOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_int_op(IntOp::Mul, 1 << 63, 2), 0);
        assert_eq!(eval_int_op(IntOp::UDiv, 7, 2), 3);
        assert_eq!(eval_int_op(IntOp::UDiv, 7, 0), 0, "AArch64 divide-by-zero");
        assert_eq!(eval_int_op(IntOp::URem, 7, 0), 7);
        assert_eq!(eval_int_op(IntOp::Lsl, 1, 65), 2, "shift amount mod 64");
        assert_eq!(eval_int_op(IntOp::Lsr, 0x8000_0000_0000_0000, 63), 1);
        assert_eq!(
            eval_int_op(IntOp::Asr, (-8i64) as u64, 2),
            (-2i64) as u64,
            "arithmetic shift keeps sign"
        );
        assert_eq!(eval_int_op(IntOp::And, 0xF0, 0x3C), 0x30);
        assert_eq!(eval_int_op(IntOp::Orr, 0xF0, 0x0F), 0xFF);
        assert_eq!(eval_int_op(IntOp::Eor, 0xFF, 0x0F), 0xF0);
    }

    #[test]
    fn float_op_semantics() {
        assert_eq!(eval_float_op(FloatOp::FAdd, 1.5, 2.5), 4.0);
        assert_eq!(eval_float_op(FloatOp::FSub, 1.5, 2.5), -1.0);
        assert_eq!(eval_float_op(FloatOp::FMul, 3.0, 4.0), 12.0);
        assert_eq!(eval_float_op(FloatOp::FDiv, 1.0, 4.0), 0.25);
        assert_eq!(eval_float_op(FloatOp::FMin, 1.0, 2.0), 1.0);
        assert_eq!(eval_float_op(FloatOp::FMax, 1.0, 2.0), 2.0);
        assert_eq!(eval_float_op(FloatOp::FSqrt, 9.0, 0.0), 3.0);
    }

    #[test]
    fn retired_info_classes() {
        assert_eq!(RetiredInfo::CapManip.class(), InstClass::Dp);
        assert_eq!(
            RetiredInfo::LongLatency {
                class: InstClass::Vfp,
                extra: 12
            }
            .class(),
            InstClass::Vfp
        );
        assert_eq!(
            RetiredInfo::Load {
                addr: 0,
                size: 16,
                is_cap: true,
                dep_load: false
            }
            .class(),
            InstClass::Ld
        );
        assert_eq!(
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: 0,
                pcc_change: false
            }
            .class(),
            InstClass::BrReturn
        );
    }

    #[test]
    fn interp_error_messages() {
        let e = InterpError::TypeConfusion {
            pc: 0x1000,
            expected: "capability",
        };
        assert!(e.to_string().contains("0x1000"));
        let e = InterpError::FuelExhausted { retired: 5 };
        assert!(e.to_string().contains('5'));
        let e = InterpError::UnknownCode { addr: 0x1, pc: 0x2 };
        assert!(e.to_string().contains("0x1"));
    }

    #[test]
    fn default_config_is_generous() {
        let c = InterpConfig::default();
        assert!(c.max_insts >= 1_000_000_000);
        assert!(c.max_call_depth >= 1024);
        assert!(c.dep_window >= 1);
    }
}
