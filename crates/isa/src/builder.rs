//! Ergonomic construction of portable programs.
//!
//! Workloads write against [`FunctionBuilder`]'s pointer-aware API; the
//! builder records pointer-generic instructions which
//! [`lower`](crate::lower) later specialises per ABI.

use crate::inst::{
    CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, IntOp, Label, LoadKind, MemSize, Operand, VecKind,
};
use crate::program::{
    FuncId, Function, GenericProgram, GlobalDef, GlobalId, ModuleId, PtrInit, VReg,
};
use crate::{lower, Abi, Program};

impl From<VReg> for Operand {
    fn from(r: VReg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v as i64)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Operand {
        Operand::Imm(v as i64)
    }
}

/// Builds a [`GenericProgram`] function by function.
///
/// The builder is constructed for a specific [`Abi`] so that workload code
/// can compute ABI-correct struct layouts (pointer fields double in size
/// under capability ABIs — the very effect the paper measures).
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    abi: Abi,
    funcs: Vec<Option<Function>>,
    func_names: Vec<(String, ModuleId, u16)>,
    globals: Vec<GlobalDef>,
    modules: Vec<String>,
    entry: Option<FuncId>,
    regions: Vec<String>,
}

impl ProgramBuilder {
    /// Creates a builder for a program named `name`, targeting `abi`.
    /// Module 0 (`"app"`) exists from the start.
    pub fn new(name: impl Into<String>, abi: Abi) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            abi,
            funcs: Vec::new(),
            func_names: Vec::new(),
            globals: Vec::new(),
            modules: vec!["app".to_owned()],
            entry: None,
            regions: Vec::new(),
        }
    }

    /// Declares (or looks up) a named profiling region and returns its
    /// id, for use with [`FunctionBuilder::region`]. Regions partition
    /// the retired-instruction stream for cycle attribution; they have
    /// no architectural or timing effect.
    pub fn region(&mut self, name: impl AsRef<str>) -> u32 {
        let name = name.as_ref();
        if let Some(i) = self.regions.iter().position(|r| r == name) {
            return i as u32;
        }
        self.regions.push(name.to_owned());
        (self.regions.len() - 1) as u32
    }

    /// The target ABI.
    pub fn abi(&self) -> Abi {
        self.abi
    }

    /// The pointer size for this ABI, for struct-layout computation.
    pub fn ptr_size(&self) -> u64 {
        self.abi.pointer_size()
    }

    /// Registers an additional module (shared object / library). Calls
    /// crossing modules change PCC bounds under purecap.
    pub fn module(&mut self, name: impl Into<String>) -> ModuleId {
        self.modules.push(name.into());
        ModuleId((self.modules.len() - 1) as u16)
    }

    /// Adds a zero-initialised mutable global of `size` bytes.
    pub fn global_zero(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.add_global(GlobalDef {
            name: name.into(),
            size,
            init: Vec::new(),
            ptr_inits: Vec::new(),
            is_const: false,
            align: 16,
        })
    }

    /// Adds an initialised mutable global.
    pub fn global_data(&mut self, name: impl Into<String>, init: Vec<u8>) -> GlobalId {
        self.add_global(GlobalDef {
            name: name.into(),
            size: init.len() as u64,
            init,
            ptr_inits: Vec::new(),
            is_const: false,
            align: 16,
        })
    }

    /// Adds an initialised constant global (`.rodata`).
    pub fn global_const(&mut self, name: impl Into<String>, init: Vec<u8>) -> GlobalId {
        self.add_global(GlobalDef {
            name: name.into(),
            size: init.len() as u64,
            init,
            ptr_inits: Vec::new(),
            is_const: true,
            align: 16,
        })
    }

    /// Adds a fully specified global.
    pub fn add_global(&mut self, def: GlobalDef) -> GlobalId {
        assert!(def.align.is_power_of_two() && def.align >= 8);
        assert!(def.init.len() as u64 <= def.size);
        self.globals.push(def);
        GlobalId((self.globals.len() - 1) as u32)
    }

    /// Builds a table-of-pointers constant global: one pointer slot per
    /// entry (sized per ABI), each pointing at a function. Used for
    /// dispatch tables and vtables.
    pub fn func_table(&mut self, name: impl Into<String>, funcs: &[FuncId]) -> GlobalId {
        let ps = self.ptr_size();
        let ptr_inits = funcs
            .iter()
            .enumerate()
            .map(|(i, &f)| (i as u64 * ps, PtrInit::Func(f)))
            .collect();
        self.add_global(GlobalDef {
            name: name.into(),
            size: funcs.len() as u64 * ps,
            init: Vec::new(),
            ptr_inits,
            is_const: true,
            align: 16,
        })
    }

    /// Declares a function (in module 0) for forward references; define it
    /// later with [`define`](ProgramBuilder::define).
    pub fn declare(&mut self, name: impl Into<String>, params: u16) -> FuncId {
        self.declare_in(ModuleId(0), name, params)
    }

    /// Declares a function in a specific module.
    pub fn declare_in(&mut self, module: ModuleId, name: impl Into<String>, params: u16) -> FuncId {
        assert!((module.0 as usize) < self.modules.len(), "unknown module");
        self.funcs.push(None);
        self.func_names.push((name.into(), module, params));
        FuncId((self.funcs.len() - 1) as u32)
    }

    /// Defines a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics on double definition or an unbound label.
    pub fn define(&mut self, id: FuncId, body: impl FnOnce(&mut FunctionBuilder)) {
        assert!(
            self.funcs[id.0 as usize].is_none(),
            "function {:?} defined twice",
            id
        );
        let (name, module, params) = self.func_names[id.0 as usize].clone();
        let mut fb = FunctionBuilder::new(params);
        body(&mut fb);
        self.funcs[id.0 as usize] = Some(fb.finish(name, module, params));
    }

    /// Declares and defines a function (in module 0) in one step.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: u16,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare(name, params);
        self.define(id, body);
        id
    }

    /// Declares and defines a function in a specific module.
    pub fn function_in(
        &mut self,
        module: ModuleId,
        name: impl Into<String>,
        params: u16,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare_in(module, name, params);
        self.define(id, body);
        id
    }

    /// Sets the entry function.
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    /// Finalises the portable program.
    ///
    /// # Panics
    ///
    /// Panics when the entry is unset or any declared function is
    /// undefined.
    pub fn build(self) -> GenericProgram {
        let entry = self.entry.expect("entry function not set");
        let funcs: Vec<Function> = self
            .funcs
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function #{i} declared but not defined")))
            .collect();
        GenericProgram {
            name: self.name,
            abi: self.abi,
            funcs,
            globals: self.globals,
            modules: self.modules,
            entry,
            regions: self.regions,
        }
    }

    /// Builds and lowers in one step.
    ///
    /// # Panics
    ///
    /// As [`build`](ProgramBuilder::build).
    pub fn lower(self) -> Program {
        let gp = self.build();
        lower(&gp)
    }
}

/// Emits the body of one function.
///
/// Register 0 is the stack pointer; arguments arrive in registers
/// `1..=params`. Fresh registers come from [`vreg`](FunctionBuilder::vreg);
/// stack locals from [`local`](FunctionBuilder::local).
#[derive(Debug)]
pub struct FunctionBuilder {
    insts: Vec<Inst>,
    labels: Vec<u32>,
    next_vreg: u16,
    frame_size: u64,
}

const UNBOUND: u32 = u32::MAX;

impl FunctionBuilder {
    fn new(params: u16) -> FunctionBuilder {
        FunctionBuilder {
            insts: Vec::new(),
            labels: Vec::new(),
            next_vreg: params + 1,
            frame_size: 0,
        }
    }

    fn finish(self, name: String, module: ModuleId, params: u16) -> Function {
        for (i, &target) in self.labels.iter().enumerate() {
            assert!(target != UNBOUND, "label {i} in {name} never bound");
        }
        Function {
            name,
            module,
            params,
            frame_size: (self.frame_size + 15) & !15,
            insts: self.insts,
            labels: self.labels,
            vregs: self.next_vreg,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let r = self.next_vreg;
        self.next_vreg = self
            .next_vreg
            .checked_add(1)
            .expect("virtual register overflow");
        r
    }

    /// The stack-pointer register (pointer-typed, frame base).
    pub fn sp(&self) -> VReg {
        0
    }

    /// The register holding argument `i` (0-based).
    pub fn arg(&self, i: u16) -> VReg {
        i + 1
    }

    /// Reserves `size` bytes of stack frame, returning the byte offset of
    /// the new local relative to [`sp`](FunctionBuilder::sp).
    pub fn local(&mut self, size: u64) -> i64 {
        let off = self.frame_size;
        self.frame_size += (size + 7) & !7;
        off as i64
    }

    /// Creates a forward label; bind it later with
    /// [`bind`](FunctionBuilder::bind).
    pub fn label(&mut self) -> Label {
        self.labels.push(UNBOUND);
        Label((self.labels.len() - 1) as u32)
    }

    /// Binds a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, l: Label) {
        assert_eq!(self.labels[l.0 as usize], UNBOUND, "label bound twice");
        self.labels[l.0 as usize] = self.insts.len() as u32;
    }

    /// Creates a label bound to the current position (loop heads).
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    fn push(&mut self, i: Inst) {
        self.insts.push(i);
    }

    // ---- Constants and moves ---------------------------------------------

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: VReg, imm: u64) {
        self.push(Inst::MovImm { dst, imm });
    }

    /// `dst = imm` (float).
    pub fn mov_f64(&mut self, dst: VReg, imm: f64) {
        self.push(Inst::MovF64 { dst, imm });
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: VReg, src: VReg) {
        self.push(Inst::Mov { dst, src });
    }

    // ---- Integer ops -------------------------------------------------------

    /// `dst = op(a, b)`.
    pub fn int_op(&mut self, op: IntOp, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.push(Inst::IntOp {
            op,
            dst,
            a,
            b: b.into(),
        });
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Add, dst, a, b);
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Sub, dst, a, b);
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Mul, dst, a, b);
    }

    /// `dst = a / b` (unsigned; division by zero yields 0).
    pub fn udiv(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::UDiv, dst, a, b);
    }

    /// `dst = a % b` (unsigned; modulo zero yields `a`).
    pub fn urem(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::URem, dst, a, b);
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::And, dst, a, b);
    }

    /// `dst = a | b`.
    pub fn orr(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Orr, dst, a, b);
    }

    /// `dst = a ^ b`.
    pub fn eor(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Eor, dst, a, b);
    }

    /// `dst = a << b`.
    pub fn lsl(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Lsl, dst, a, b);
    }

    /// `dst = a >> b` (logical).
    pub fn lsr(&mut self, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.int_op(IntOp::Lsr, dst, a, b);
    }

    /// `dst = a * b + c` (single fused instruction everywhere).
    pub fn madd(&mut self, dst: VReg, a: VReg, b: VReg, c: VReg) {
        self.push(Inst::Madd {
            dst,
            a,
            b,
            c,
            addr_gen: false,
        });
    }

    /// `dst = a * b + c` used for address generation: capability ABIs
    /// split this into `mul` + pointer add (Morello has no capability
    /// MADD).
    pub fn madd_addr(&mut self, dst: VReg, a: VReg, b: VReg, c: VReg) {
        self.push(Inst::Madd {
            dst,
            a,
            b,
            c,
            addr_gen: true,
        });
    }

    // ---- Float / SIMD ------------------------------------------------------

    /// `dst = op(a, b)` (float).
    pub fn float_op(&mut self, op: FloatOp, dst: VReg, a: VReg, b: VReg) {
        self.push(Inst::FloatOp { op, dst, a, b });
    }

    /// `dst = a + b` (float).
    pub fn fadd(&mut self, dst: VReg, a: VReg, b: VReg) {
        self.float_op(FloatOp::FAdd, dst, a, b);
    }

    /// `dst = a - b` (float).
    pub fn fsub(&mut self, dst: VReg, a: VReg, b: VReg) {
        self.float_op(FloatOp::FSub, dst, a, b);
    }

    /// `dst = a * b` (float).
    pub fn fmul(&mut self, dst: VReg, a: VReg, b: VReg) {
        self.float_op(FloatOp::FMul, dst, a, b);
    }

    /// `dst = a / b` (float).
    pub fn fdiv(&mut self, dst: VReg, a: VReg, b: VReg) {
        self.float_op(FloatOp::FDiv, dst, a, b);
    }

    /// `dst = a * b + c` (float, fused).
    pub fn fmadd(&mut self, dst: VReg, a: VReg, b: VReg, c: VReg) {
        self.push(Inst::FMadd { dst, a, b, c });
    }

    /// `dst = (a cond b) ? 1 : 0` over floats.
    pub fn fcmp(&mut self, cond: Cond, dst: VReg, a: VReg, b: VReg) {
        self.push(Inst::FCmp { cond, dst, a, b });
    }

    /// SIMD op (`ASE_SPEC`).
    pub fn vec_op(&mut self, op: VecKind, dst: VReg, a: VReg, b: VReg) {
        self.push(Inst::VecOp { op, dst, a, b });
    }

    /// `dst = (f64) src`.
    pub fn int_to_f64(&mut self, dst: VReg, src: VReg) {
        self.push(Inst::Cvt {
            dst,
            src,
            to_int: false,
        });
    }

    /// `dst = (u64) src`.
    pub fn f64_to_int(&mut self, dst: VReg, src: VReg) {
        self.push(Inst::Cvt {
            dst,
            src,
            to_int: true,
        });
    }

    // ---- Pointers ----------------------------------------------------------

    /// `dst = &global + off`.
    pub fn lea_global(&mut self, dst: VReg, global: GlobalId, off: i64) {
        self.push(Inst::LeaGlobal { dst, global, off });
    }

    /// `dst = &func` (a function pointer).
    pub fn lea_func(&mut self, dst: VReg, func: FuncId) {
        self.push(Inst::LeaFunc { dst, func });
    }

    /// `dst = NULL` (a valid pointer value under every ABI; dereferencing
    /// it faults under capability ABIs and reads page zero under hybrid).
    pub fn mov_null_ptr(&mut self, dst: VReg) {
        self.push(Inst::MovNullPtr { dst });
    }

    /// `dst = base + off` (pointer arithmetic, bytes).
    pub fn ptr_add(&mut self, dst: VReg, base: VReg, off: impl Into<Operand>) {
        self.push(Inst::PtrAdd {
            dst,
            base,
            off: off.into(),
        });
    }

    /// `dst = (u64) ptr`.
    pub fn ptr_to_int(&mut self, dst: VReg, src: VReg) {
        self.push(Inst::PtrToInt { dst, src });
    }

    // ---- Memory ------------------------------------------------------------

    /// `dst = *(base + off)` (integer, zero-extended).
    pub fn load_int(&mut self, dst: VReg, base: VReg, off: impl Into<Operand>, size: MemSize) {
        self.push(Inst::Load {
            dst,
            base,
            off: off.into(),
            size,
            kind: LoadKind::Int,
            scaled: false,
        });
    }

    /// `dst = base[idx]` (integer array, scaled register-offset
    /// addressing: one instruction, as on AArch64).
    pub fn load_int_idx(&mut self, dst: VReg, base: VReg, idx: VReg, size: MemSize) {
        self.push(Inst::Load {
            dst,
            base,
            off: Operand::Reg(idx),
            size,
            kind: LoadKind::Int,
            scaled: true,
        });
    }

    /// `*(base + off) = src` (integer).
    pub fn store_int(&mut self, src: VReg, base: VReg, off: impl Into<Operand>, size: MemSize) {
        self.push(Inst::Store {
            src,
            base,
            off: off.into(),
            size,
            kind: LoadKind::Int,
            scaled: false,
        });
    }

    /// `base[idx] = src` (integer array, scaled addressing).
    pub fn store_int_idx(&mut self, src: VReg, base: VReg, idx: VReg, size: MemSize) {
        self.push(Inst::Store {
            src,
            base,
            off: Operand::Reg(idx),
            size,
            kind: LoadKind::Int,
            scaled: true,
        });
    }

    /// `dst = *(f64*)(base + off)`.
    pub fn load_f64(&mut self, dst: VReg, base: VReg, off: impl Into<Operand>) {
        self.push(Inst::Load {
            dst,
            base,
            off: off.into(),
            size: MemSize::S8,
            kind: LoadKind::F64,
            scaled: false,
        });
    }

    /// `dst = base[idx]` (f64 array, scaled addressing).
    pub fn load_f64_idx(&mut self, dst: VReg, base: VReg, idx: VReg) {
        self.push(Inst::Load {
            dst,
            base,
            off: Operand::Reg(idx),
            size: MemSize::S8,
            kind: LoadKind::F64,
            scaled: true,
        });
    }

    /// `*(f64*)(base + off) = src`.
    pub fn store_f64(&mut self, src: VReg, base: VReg, off: impl Into<Operand>) {
        self.push(Inst::Store {
            src,
            base,
            off: off.into(),
            size: MemSize::S8,
            kind: LoadKind::F64,
            scaled: false,
        });
    }

    /// `base[idx] = src` (f64 array, scaled addressing).
    pub fn store_f64_idx(&mut self, src: VReg, base: VReg, idx: VReg) {
        self.push(Inst::Store {
            src,
            base,
            off: Operand::Reg(idx),
            size: MemSize::S8,
            kind: LoadKind::F64,
            scaled: true,
        });
    }

    /// `dst = *(void**)(base + off)` — a pointer-sized load (8 B hybrid,
    /// 16 B capability).
    pub fn load_ptr(&mut self, dst: VReg, base: VReg, off: i64) {
        self.push(Inst::LoadPtr { dst, base, off });
    }

    /// `*(void**)(base + off) = src` — a pointer-sized store.
    pub fn store_ptr(&mut self, src: VReg, base: VReg, off: i64) {
        self.push(Inst::StorePtr { src, base, off });
    }

    /// `dst = base[idx]` of a pointer array (scaled addressing).
    pub fn load_ptr_idx(&mut self, dst: VReg, base: VReg, idx: VReg) {
        self.push(Inst::LoadPtrIdx { dst, base, idx });
    }

    /// `base[idx] = src` of a pointer array (scaled addressing).
    pub fn store_ptr_idx(&mut self, src: VReg, base: VReg, idx: VReg) {
        self.push(Inst::StorePtrIdx { src, base, idx });
    }

    // ---- Control flow -------------------------------------------------------

    /// Unconditional branch.
    pub fn jump(&mut self, target: Label) {
        self.push(Inst::Jump { target });
    }

    /// Branch to `target` when `cond(a, b)`.
    pub fn br(&mut self, cond: Cond, a: VReg, b: impl Into<Operand>, target: Label) {
        self.push(Inst::CondBr {
            cond,
            a,
            b: b.into(),
            target,
        });
    }

    /// Direct call.
    pub fn call(&mut self, func: FuncId, args: &[VReg], ret: Option<VReg>) {
        self.push(Inst::Call {
            func,
            args: args.to_vec(),
            ret,
        });
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(&mut self, target: VReg, args: &[VReg], ret: Option<VReg>) {
        self.push(Inst::CallIndirect {
            target,
            args: args.to_vec(),
            ret,
        });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<VReg>) {
        self.push(Inst::Ret { val });
    }

    // ---- Runtime -------------------------------------------------------------

    /// `dst = malloc(size)`.
    pub fn malloc(&mut self, dst: VReg, size: impl Into<Operand>) {
        self.push(Inst::Malloc {
            dst,
            size: size.into(),
        });
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: VReg) {
        self.push(Inst::Free { ptr });
    }

    /// Capability manipulation (capability ABIs / playground programs):
    /// `dst = op(a, b)`.
    pub fn cap_op(&mut self, op: CapOpKind, dst: VReg, a: VReg, b: impl Into<Operand>) {
        self.push(Inst::CapOp {
            op,
            dst,
            a,
            b: b.into(),
        });
    }

    /// `dst = seal(a, auth)` — seal `a` with the otype at `auth`'s cursor.
    pub fn seal(&mut self, dst: VReg, a: VReg, auth: VReg) {
        self.push(Inst::CapOp2 {
            op: CapOp2Kind::Seal,
            a,
            auth,
            dst,
        });
    }

    /// `dst = unseal(a, auth)` — unseal `a` under `auth`'s authority.
    pub fn unseal(&mut self, dst: VReg, a: VReg, auth: VReg) {
        self.push(Inst::CapOp2 {
            op: CapOp2Kind::Unseal,
            a,
            auth,
            dst,
        });
    }

    /// Marks the start of profiling region `id` (from
    /// [`ProgramBuilder::region`]). Retires no instruction and costs no
    /// cycles; subsequent work is attributed to the region until the
    /// next marker.
    pub fn region(&mut self, id: u32) {
        self.push(Inst::Region { id });
    }

    /// Ends the current profiling region (attribution returns to "no
    /// region").
    pub fn region_end(&mut self) {
        self.push(Inst::Region { id: u32::MAX });
    }

    /// Stop the program with exit code 0.
    pub fn halt(&mut self) {
        self.push(Inst::Halt { code: None });
    }

    /// Stop the program with the value of `code` as exit code.
    pub fn halt_code(&mut self, code: VReg) {
        self.push(Inst::Halt { code: Some(code) });
    }

    /// Emits a counted loop `for i in start..end` with the body provided by
    /// `body(self, i_reg)`. `i` increments by `step`.
    pub fn for_loop(
        &mut self,
        start: u64,
        end: VReg,
        step: u64,
        body: impl FnOnce(&mut FunctionBuilder, VReg),
    ) -> VReg {
        let i = self.vreg();
        self.mov_imm(i, start);
        let head = self.here();
        let done = self.label();
        self.br(Cond::Geu, i, end, done);
        body(self, i);
        self.add(i, i, step as i64);
        self.jump(head);
        self.bind(done);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_minimal_program() {
        let mut b = ProgramBuilder::new("t", Abi::Hybrid);
        let f = b.function("main", 0, |f| {
            let r = f.vreg();
            f.mov_imm(r, 7);
            f.halt_code(r);
        });
        b.set_entry(f);
        let p = b.build();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].insts.len(), 2);
        assert_eq!(p.entry, f);
    }

    #[test]
    #[should_panic(expected = "entry function not set")]
    fn missing_entry_panics() {
        let b = ProgramBuilder::new("t", Abi::Hybrid);
        b.build();
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("t", Abi::Hybrid);
        b.function("main", 0, |f| {
            let l = f.label();
            f.jump(l);
        });
    }

    #[test]
    #[should_panic(expected = "declared but not defined")]
    fn undefined_function_panics() {
        let mut b = ProgramBuilder::new("t", Abi::Hybrid);
        let m = b.function("main", 0, |f| f.halt());
        b.declare("ghost", 0);
        b.set_entry(m);
        b.build();
    }

    #[test]
    fn locals_are_aligned_and_stacked() {
        let mut b = ProgramBuilder::new("t", Abi::Purecap);
        b.function("main", 0, |f| {
            let a = f.local(4);
            let c = f.local(8);
            assert_eq!(a, 0);
            assert_eq!(c, 8); // 4 rounded to 8
            f.halt();
        });
    }

    #[test]
    fn labels_bind_and_loop_helper() {
        let mut b = ProgramBuilder::new("t", Abi::Hybrid);
        let f = b.function("main", 0, |f| {
            let n = f.vreg();
            f.mov_imm(n, 10);
            let sum = f.vreg();
            f.mov_imm(sum, 0);
            f.for_loop(0, n, 1, |f, i| {
                f.add(sum, sum, i);
            });
            f.halt_code(sum);
        });
        b.set_entry(f);
        let p = b.build();
        assert!(p.funcs[0].labels.iter().all(|&l| l != u32::MAX));
    }

    #[test]
    fn ptr_size_tracks_abi() {
        assert_eq!(ProgramBuilder::new("t", Abi::Hybrid).ptr_size(), 8);
        assert_eq!(ProgramBuilder::new("t", Abi::Purecap).ptr_size(), 16);
    }

    #[test]
    fn func_table_lays_out_pointer_slots() {
        let mut b = ProgramBuilder::new("t", Abi::Purecap);
        let f1 = b.function("a", 0, |f| f.ret(None));
        let f2 = b.function("b", 0, |f| f.ret(None));
        let t = b.func_table("table", &[f1, f2]);
        let g = &b.globals[t.0 as usize];
        assert_eq!(g.size, 32); // two 16-byte slots
        assert_eq!(g.ptr_inits.len(), 2);
        assert_eq!(g.ptr_inits[1].0, 16);
    }
}
