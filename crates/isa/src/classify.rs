//! The opcode-class taxonomy behind the per-class performance
//! attribution (the `fig10_opcode_classes` report and the
//! `OPC_*_RETIRED` / `OPC_*_CYCLES` PMU events).
//!
//! Every retired event maps to exactly one of eight [`OpClass`]es, so
//! per-class retired counts partition the run: summed over all classes
//! they equal the total retired-instruction count, and (on the timing
//! side) per-class model cycles sum to `CPU_CYCLES`. Both invariants
//! are locked by property tests.
//!
//! The taxonomy follows the shape of the TUM cheri-microanalysis
//! per-instruction-class tables (SNIPPETS.md Snippet 1): the interesting
//! axis on Morello is *capability vs non-capability* within each
//! pipeline role, because that is where the paper's instruction-mix
//! shift and its latency cliffs (LDR vs LDR.CAP, cap-manipulation DP
//! ops, PCC-changing branches) live.
//!
//! Classification is a pure function of the retired event — the PC and
//! the [`RetiredInfo`] payload — so the architectural interpreter and
//! the timing model attribute identically without any extra sink
//! traffic: both sides accumulate into flat per-run counters
//! ([`ClassCounts`] in the machine, `opc_*` fields of `UarchStats` in
//! the core) instead of emitting per-instruction classification events.

use crate::interp::RetiredInfo;
use crate::lower::{RT_MALLOC_PC, RT_SWEEP_PC};
use serde::{Deserialize, Serialize};

/// End of the synthetic runtime code region (exclusive): the sweep loop
/// is the last runtime routine before [`CODE_BASE`](crate::lower) at
/// `0x1_0000`.
const RT_END: u64 = 0x1_0000;

/// The eight opcode classes of the attribution layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Non-capability ALU work: integer, floating-point, and SIMD data
    /// processing (including long-latency multiply/divide).
    IntAlu,
    /// Capability-manipulation data processing (`CIncOffset`,
    /// `CSetBounds`, sealing, …) — the paper's instruction-mix shift.
    CapManip,
    /// Scalar (non-capability) loads and stores.
    MemScalar,
    /// Capability (16-byte, tag-checked) loads and stores.
    MemCap,
    /// Branches that leave PCC bounds alone.
    Branch,
    /// PCC-changing branches (purecap cross-module and indirect control
    /// flow) — the ones Morello's predictor stalls on.
    CapBranch,
    /// The synthetic allocator runtime (`malloc`/`free` instruction
    /// streams at their pseudo code addresses).
    Runtime,
    /// Heap-metadata maintenance: the revocation tag-sweep loop's
    /// instruction stream.
    Meta,
}

impl OpClass {
    /// Every class, in table order.
    pub const ALL: [OpClass; 8] = [
        OpClass::IntAlu,
        OpClass::CapManip,
        OpClass::MemScalar,
        OpClass::MemCap,
        OpClass::Branch,
        OpClass::CapBranch,
        OpClass::Runtime,
        OpClass::Meta,
    ];

    /// Classifies one retired event. Total: the runtime/metadata code
    /// regions win over the payload kind (an allocator load is allocator
    /// work, not application memory traffic), then capability-ness
    /// splits each pipeline role.
    pub fn of(pc: u64, info: &RetiredInfo) -> OpClass {
        if (RT_MALLOC_PC..RT_SWEEP_PC).contains(&pc) {
            return OpClass::Runtime;
        }
        if (RT_SWEEP_PC..RT_END).contains(&pc) {
            return OpClass::Meta;
        }
        match info {
            RetiredInfo::Simple(_) | RetiredInfo::LongLatency { .. } => OpClass::IntAlu,
            RetiredInfo::CapManip => OpClass::CapManip,
            RetiredInfo::Load { is_cap, .. } | RetiredInfo::Store { is_cap, .. } => {
                if *is_cap {
                    OpClass::MemCap
                } else {
                    OpClass::MemScalar
                }
            }
            RetiredInfo::Branch { pcc_change, .. } => {
                if *pcc_change {
                    OpClass::CapBranch
                } else {
                    OpClass::Branch
                }
            }
        }
    }

    /// The table label (Snippet-1 style).
    pub const fn name(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int-alu",
            OpClass::CapManip => "cap-manip",
            OpClass::MemScalar => "mem-scalar",
            OpClass::MemCap => "mem-cap",
            OpClass::Branch => "branch",
            OpClass::CapBranch => "cap-branch",
            OpClass::Runtime => "runtime",
            OpClass::Meta => "meta",
        }
    }

    /// What the class covers.
    pub const fn description(self) -> &'static str {
        match self {
            OpClass::IntAlu => "integer/FP/SIMD data processing",
            OpClass::CapManip => "capability-manipulation data processing",
            OpClass::MemScalar => "scalar loads and stores",
            OpClass::MemCap => "capability (tagged, 16-byte) loads and stores",
            OpClass::Branch => "branches without a PCC-bounds change",
            OpClass::CapBranch => "PCC-changing branches",
            OpClass::Runtime => "allocator runtime (malloc/free) instructions",
            OpClass::Meta => "heap-metadata maintenance (revocation tag sweeps)",
        }
    }
}

/// Per-class retired-instruction counts for one run: the batched
/// architectural accumulator the interpreter maintains inline (no sink
/// calls), returned in [`RunResult`](crate::RunResult).
///
/// Named fields (not an array) keep the serialised form self-describing
/// and stable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Retired [`OpClass::IntAlu`] instructions.
    pub int_alu: u64,
    /// Retired [`OpClass::CapManip`] instructions.
    pub cap_manip: u64,
    /// Retired [`OpClass::MemScalar`] instructions.
    pub mem_scalar: u64,
    /// Retired [`OpClass::MemCap`] instructions.
    pub mem_cap: u64,
    /// Retired [`OpClass::Branch`] instructions.
    pub branch: u64,
    /// Retired [`OpClass::CapBranch`] instructions.
    pub cap_branch: u64,
    /// Retired [`OpClass::Runtime`] instructions.
    pub runtime: u64,
    /// Retired [`OpClass::Meta`] instructions.
    pub meta: u64,
}

impl ClassCounts {
    /// An all-zero count set.
    pub fn new() -> ClassCounts {
        ClassCounts::default()
    }

    /// Adds one retired instruction of `class`.
    #[inline]
    pub fn bump(&mut self, class: OpClass) {
        *self.slot(class) += 1;
    }

    /// Adds every count in `other` — the superblock fast path folds a
    /// pre-summed per-block [`ClassCounts`] into the run accumulator
    /// with one call instead of a `bump` per retired op.
    #[inline]
    pub fn add(&mut self, other: &ClassCounts) {
        self.int_alu += other.int_alu;
        self.cap_manip += other.cap_manip;
        self.mem_scalar += other.mem_scalar;
        self.mem_cap += other.mem_cap;
        self.branch += other.branch;
        self.cap_branch += other.cap_branch;
        self.runtime += other.runtime;
        self.meta += other.meta;
    }

    /// Adds every count in `other` multiplied by `k` — folds a block's
    /// pre-summed class profile times its execution count into the run
    /// accumulator in one call at run end.
    #[inline]
    pub fn add_scaled(&mut self, other: &ClassCounts, k: u64) {
        self.int_alu += other.int_alu * k;
        self.cap_manip += other.cap_manip * k;
        self.mem_scalar += other.mem_scalar * k;
        self.mem_cap += other.mem_cap * k;
        self.branch += other.branch * k;
        self.cap_branch += other.cap_branch * k;
        self.runtime += other.runtime * k;
        self.meta += other.meta * k;
    }

    /// The count for one class.
    pub fn get(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => self.int_alu,
            OpClass::CapManip => self.cap_manip,
            OpClass::MemScalar => self.mem_scalar,
            OpClass::MemCap => self.mem_cap,
            OpClass::Branch => self.branch,
            OpClass::CapBranch => self.cap_branch,
            OpClass::Runtime => self.runtime,
            OpClass::Meta => self.meta,
        }
    }

    /// Sum over all classes — equals the run's total retired count.
    pub fn total(&self) -> u64 {
        OpClass::ALL.iter().map(|c| self.get(*c)).sum()
    }

    /// `(class, count)` pairs in [`OpClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        OpClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    fn slot(&mut self, class: OpClass) -> &mut u64 {
        match class {
            OpClass::IntAlu => &mut self.int_alu,
            OpClass::CapManip => &mut self.cap_manip,
            OpClass::MemScalar => &mut self.mem_scalar,
            OpClass::MemCap => &mut self.mem_cap,
            OpClass::Branch => &mut self.branch,
            OpClass::CapBranch => &mut self.cap_branch,
            OpClass::Runtime => &mut self.runtime,
            OpClass::Meta => &mut self.meta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchKind, InstClass};
    use crate::lower::RT_FREE_PC;
    use proptest::prelude::*;

    const APP_PC: u64 = 0x1_0040;

    /// A strategy over every constructible [`RetiredInfo`] payload —
    /// each variant with arbitrary field values.
    fn class_strategy() -> impl Strategy<Value = InstClass> {
        prop_oneof![
            Just(InstClass::Dp),
            Just(InstClass::Vfp),
            Just(InstClass::Ase),
            Just(InstClass::Ld),
            Just(InstClass::St),
            Just(InstClass::BrImmed),
            Just(InstClass::BrIndirect),
            Just(InstClass::BrReturn),
        ]
    }

    fn info_strategy() -> impl Strategy<Value = RetiredInfo> {
        let kind = prop_oneof![
            Just(BranchKind::Immediate),
            Just(BranchKind::Indirect),
            Just(BranchKind::Call),
            Just(BranchKind::IndirectCall),
            Just(BranchKind::Return),
        ];
        prop_oneof![
            class_strategy().prop_map(RetiredInfo::Simple),
            (class_strategy(), any::<u8>())
                .prop_map(|(class, extra)| RetiredInfo::LongLatency { class, extra }),
            Just(RetiredInfo::CapManip),
            (any::<u64>(), any::<u8>(), any::<bool>(), any::<bool>()).prop_map(
                |(addr, size, is_cap, dep_load)| RetiredInfo::Load {
                    addr,
                    size,
                    is_cap,
                    dep_load
                }
            ),
            (any::<u64>(), any::<u8>(), any::<bool>())
                .prop_map(|(addr, size, is_cap)| RetiredInfo::Store { addr, size, is_cap }),
            (kind, any::<bool>(), any::<u64>(), any::<bool>()).prop_map(
                |(kind, taken, target, pcc_change)| RetiredInfo::Branch {
                    kind,
                    taken,
                    target,
                    pcc_change
                }
            ),
        ]
    }

    proptest! {
        /// Classification is total and deterministic over every
        /// constructible event, lands in exactly one of the eight
        /// classes, and — outside the runtime PC windows — depends only
        /// on the payload. A `bump` of the resulting class raises
        /// exactly that slot, so per-class counts always partition the
        /// retired stream.
        #[test]
        fn every_event_maps_to_exactly_one_class(pc in any::<u64>(), info in info_strategy()) {
            let class = OpClass::of(pc, &info);
            prop_assert!(OpClass::ALL.contains(&class));
            prop_assert_eq!(class, OpClass::of(pc, &info), "deterministic");
            if !(RT_MALLOC_PC..RT_END).contains(&pc) {
                prop_assert_eq!(class, OpClass::of(APP_PC, &info), "pc-independent outside runtime windows");
            }
            let mut counts = ClassCounts::new();
            counts.bump(class);
            prop_assert_eq!(counts.total(), 1, "exactly one slot counted");
            prop_assert_eq!(counts.get(class), 1);
            for other in OpClass::ALL {
                if other != class {
                    prop_assert_eq!(counts.get(other), 0);
                }
            }
        }
    }

    /// The runtime-window classification at the exact region
    /// boundaries: `[RT_MALLOC_PC, RT_SWEEP_PC)` (which contains
    /// `RT_FREE_PC`) is allocator runtime, `[RT_SWEEP_PC, RT_END)` is
    /// metadata maintenance, and both edges are half-open.
    #[test]
    fn pc_region_boundaries() {
        let load = RetiredInfo::Load {
            addr: 0x4000_0000,
            size: 8,
            is_cap: false,
            dep_load: false,
        };
        assert_eq!(OpClass::of(RT_MALLOC_PC - 4, &load), OpClass::MemScalar);
        assert_eq!(OpClass::of(RT_MALLOC_PC, &load), OpClass::Runtime);
        assert_eq!(OpClass::of(RT_FREE_PC - 4, &load), OpClass::Runtime);
        assert_eq!(OpClass::of(RT_FREE_PC, &load), OpClass::Runtime);
        assert_eq!(OpClass::of(RT_SWEEP_PC - 4, &load), OpClass::Runtime);
        assert_eq!(OpClass::of(RT_SWEEP_PC, &load), OpClass::Meta);
        assert_eq!(OpClass::of(RT_END - 4, &load), OpClass::Meta);
        assert_eq!(OpClass::of(RT_END, &load), OpClass::MemScalar);
        assert_eq!(OpClass::of(RT_END + 4, &load), OpClass::MemScalar);
    }

    #[test]
    fn payload_kinds_classify() {
        assert_eq!(
            OpClass::of(APP_PC, &RetiredInfo::Simple(InstClass::Dp)),
            OpClass::IntAlu
        );
        assert_eq!(
            OpClass::of(
                APP_PC,
                &RetiredInfo::LongLatency {
                    class: InstClass::Vfp,
                    extra: 12
                }
            ),
            OpClass::IntAlu
        );
        assert_eq!(
            OpClass::of(APP_PC, &RetiredInfo::CapManip),
            OpClass::CapManip
        );
        for (is_cap, want) in [(false, OpClass::MemScalar), (true, OpClass::MemCap)] {
            assert_eq!(
                OpClass::of(
                    APP_PC,
                    &RetiredInfo::Load {
                        addr: 0x4000_0000,
                        size: 8,
                        is_cap,
                        dep_load: false
                    }
                ),
                want
            );
            assert_eq!(
                OpClass::of(
                    APP_PC,
                    &RetiredInfo::Store {
                        addr: 0x4000_0000,
                        size: 8,
                        is_cap
                    }
                ),
                want
            );
        }
        for (pcc, want) in [(false, OpClass::Branch), (true, OpClass::CapBranch)] {
            assert_eq!(
                OpClass::of(
                    APP_PC,
                    &RetiredInfo::Branch {
                        kind: BranchKind::Call,
                        taken: true,
                        target: APP_PC,
                        pcc_change: pcc
                    }
                ),
                want
            );
        }
    }

    #[test]
    fn runtime_regions_win_over_payload() {
        let load = RetiredInfo::Load {
            addr: 0x4000_0000,
            size: 16,
            is_cap: true,
            dep_load: false,
        };
        assert_eq!(OpClass::of(RT_MALLOC_PC + 8, &load), OpClass::Runtime);
        assert_eq!(OpClass::of(RT_SWEEP_PC + 8, &load), OpClass::Meta);
        assert_eq!(OpClass::of(RT_END, &load), OpClass::MemCap, "app code");
    }

    #[test]
    fn counts_partition_and_iterate() {
        let mut c = ClassCounts::new();
        for class in OpClass::ALL {
            c.bump(class);
            c.bump(class);
        }
        c.bump(OpClass::MemCap);
        assert_eq!(c.total(), 17);
        assert_eq!(c.get(OpClass::MemCap), 3);
        assert_eq!(c.iter().count(), 8);
        let names: std::collections::BTreeSet<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 8, "class names are unique");
        for class in OpClass::ALL {
            assert!(class.description().len() > 10);
        }
    }
}
