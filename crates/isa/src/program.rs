//! Program structure: functions, globals, modules, and the lowered form.

use crate::inst::Inst;
use crate::Abi;
use serde::{Deserialize, Serialize};

/// A virtual register index (per function). Register 0 is the stack
/// pointer; arguments arrive in registers 1..=N.
pub type VReg = u16;

/// Identifies a function within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a global within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Identifies a "module" — a compilation unit / shared object. Control
/// transfers that cross modules change PCC bounds under the purecap ABI,
/// which is the branch-predictor artefact the benchmark ABI works around.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub u16);

/// How a pointer-sized slot inside a global's initial image is filled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtrInit {
    /// Points `off` bytes into another (or the same) global.
    Global(GlobalId, u64),
    /// Points at a function (a code pointer).
    Func(FuncId),
    /// A loader-provided sealing authority with its cursor at the given
    /// object type (CheriBSD installs such a root for userspace sealing).
    /// Under the hybrid ABI the slot holds the raw otype as an integer.
    SealRoot(u16),
}

/// A global data object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Symbol name (for reports).
    pub name: String,
    /// Total size in bytes (pointer slots sized per ABI are already
    /// included — the builder computes this with the ABI's pointer size).
    pub size: u64,
    /// Non-zero initial data, written at offset 0 (may be shorter than
    /// `size`; the rest is zero — i.e. `.bss`-like when empty).
    pub init: Vec<u8>,
    /// Pointer-slot initialisers: `(byte offset, target)`.
    pub ptr_inits: Vec<(u64, PtrInit)>,
    /// `const` data (lives in `.rodata`, or `.data.rel.ro` under purecap
    /// when it contains pointer slots).
    pub is_const: bool,
    /// Required alignment (power of two, at least 8).
    pub align: u64,
}

/// A function: a flat instruction list with label targets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// The compilation unit / shared object this function belongs to.
    pub module: ModuleId,
    /// Number of declared arguments (arrive in v1..=vN).
    pub params: u16,
    /// Stack frame size in bytes for locals.
    pub frame_size: u64,
    /// The body.
    pub insts: Vec<Inst>,
    /// Label table: label index -> instruction index.
    pub labels: Vec<u32>,
    /// Number of virtual registers used (>= params + 1).
    pub vregs: u16,
}

/// A portable (pre-lowering) program.
///
/// Produced by [`ProgramBuilder`](crate::ProgramBuilder); consumed by
/// [`lower`](crate::lower). Struct layouts inside are already specialised
/// to the target ABI's pointer size (the builder is constructed with an
/// [`Abi`]), but instructions are still pointer-generic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenericProgram {
    /// Program name (for reports).
    pub name: String,
    /// The ABI this program's data layouts were computed for.
    pub abi: Abi,
    /// All functions.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<GlobalDef>,
    /// Module names (index = `ModuleId`).
    pub modules: Vec<String>,
    /// The entry function.
    pub entry: FuncId,
    /// Region names (index = the `id` of [`Inst::Region`](crate::Inst)
    /// markers); used by profiling sinks to attribute cycles to
    /// program phases.
    #[serde(default)]
    pub regions: Vec<String>,
}

/// Where everything lives in the simulated address space after lowering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AddressMap {
    /// Code base address of each function.
    pub func_base: Vec<u64>,
    /// Code size of each function in bytes.
    pub func_size: Vec<u64>,
    /// Base address of each global.
    pub global_base: Vec<u64>,
    /// Capability table (GOT) base; slot `i` holds the capability for
    /// captable entry `i`.
    pub captable_base: u64,
    /// Number of capability-table slots (functions + globals under
    /// capability ABIs; external-only under hybrid).
    pub captable_slots: u64,
    /// Initial stack top (stacks grow down).
    pub stack_top: u64,
    /// Heap arena range.
    pub heap: (u64, u64),
}

impl AddressMap {
    /// Finds the function whose code region contains `addr`, if any.
    pub fn func_at(&self, addr: u64) -> Option<FuncId> {
        // Code regions are laid out in ascending order.
        let idx = match self.func_base.binary_search(&addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let base = self.func_base[idx];
        (addr < base + self.func_size[idx]).then_some(FuncId(idx as u32))
    }
}

/// A lowered, executable program: ABI-specific instructions plus the
/// address map used by the interpreter and the binary-layout model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The portable program this was lowered from (instructions replaced).
    pub name: String,
    /// The target ABI.
    pub abi: Abi,
    /// Lowered functions (same indices as the generic program).
    pub funcs: Vec<Function>,
    /// Globals (unchanged by lowering).
    pub globals: Vec<GlobalDef>,
    /// Module names.
    pub modules: Vec<String>,
    /// The entry function.
    pub entry: FuncId,
    /// Region names (carried through from the generic program).
    #[serde(default)]
    pub regions: Vec<String>,
    /// The address map.
    pub map: AddressMap,
}

impl Program {
    /// Total lowered instruction count across all functions.
    pub fn total_insts(&self) -> u64 {
        self.funcs.iter().map(|f| f.insts.len() as u64).sum()
    }

    /// The code address of instruction `idx` of function `f` (4 bytes per
    /// instruction, as on AArch64/Morello).
    #[inline]
    pub fn pc_of(&self, f: FuncId, idx: usize) -> u64 {
        self.map.func_base[f.0 as usize] + (idx as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_at_lookup() {
        let map = AddressMap {
            func_base: vec![0x1000, 0x2000, 0x8000],
            func_size: vec![0x100, 0x40, 0x1000],
            global_base: vec![],
            captable_base: 0,
            captable_slots: 0,
            stack_top: 0,
            heap: (0, 0),
        };
        assert_eq!(map.func_at(0x1000), Some(FuncId(0)));
        assert_eq!(map.func_at(0x10ff), Some(FuncId(0)));
        assert_eq!(map.func_at(0x1100), None);
        assert_eq!(map.func_at(0x2010), Some(FuncId(1)));
        assert_eq!(map.func_at(0x8fff), Some(FuncId(2)));
        assert_eq!(map.func_at(0x0fff), None);
    }
}
