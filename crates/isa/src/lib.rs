//! # cheri-isa
//!
//! A Morello-like mini instruction set with everything the paper's
//! methodology needs: a portable program representation built through
//! [`ProgramBuilder`], **three ABI lowerings** ([`Abi::Hybrid`],
//! [`Abi::Purecap`], [`Abi::Benchmark`]), an architectural interpreter over
//! tagged memory that streams retired-instruction events to a
//! microarchitectural [`EventSink`], and a binary-section-size model.
//!
//! The central idea mirrors how the paper's binaries were produced: **one
//! program, three compilations**. A workload is written once against the
//! builder's pointer-aware API; lowering then decides what a "pointer" is:
//!
//! * **hybrid** — 64-bit integers, unchecked accesses, integer branches;
//! * **purecap** — 128-bit tagged capabilities, bounds/permission checks on
//!   every access, capability-manipulation µops, capability branches that
//!   change PCC bounds on cross-module and indirect control flow;
//! * **benchmark** — purecap's data/memory profile, but integer jumps under
//!   a single global PCC (isolating Morello's branch-predictor artefact).
//!
//! ```
//! use cheri_isa::{Abi, ProgramBuilder, Interp, InterpConfig, NullSink, MemSize};
//!
//! let abi = Abi::Purecap;
//! let mut b = ProgramBuilder::new("demo", abi);
//! let main = b.function("main", 0, |f| {
//!     let p = f.vreg();
//!     f.malloc(p, 64);
//!     let v = f.vreg();
//!     f.mov_imm(v, 42);
//!     f.store_int(v, p, 0, MemSize::S8);
//!     f.free(p);
//!     f.halt();
//! });
//! b.set_entry(main);
//! let prog = b.lower();
//! let res = Interp::new(InterpConfig::default())
//!     .run(&prog, &mut NullSink)
//!     .unwrap();
//! assert!(res.retired > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abi;
mod binlayout;
mod builder;
mod classify;
mod decoded;
mod disasm;
mod fastexec;
mod inst;
mod interp;
mod lower;
mod program;
mod refexec;
mod trace;

pub use abi::Abi;
pub use binlayout::{BinaryLayout, SectionSizes};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use classify::{ClassCounts, OpClass};
pub use decoded::{superblock_stats, SuperblockStats};
pub use disasm::{disassemble, render_inst};
pub use fastexec::{run_arena_stats, RunArenaStats};
pub use inst::{
    BranchKind, CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, InstClass, IntOp, Label, LoadKind,
    MemSize, Operand, VecKind,
};
pub use interp::{
    EventSink, FaultInjector, InjectionKind, Interp, InterpConfig, InterpError, NoInjector,
    NullSink, RecoveryPolicy, RetiredEvent, RetiredInfo, RunResult, UNWIND_EXIT,
};
pub use lower::lower;
pub use program::{
    FuncId, Function, GenericProgram, GlobalDef, GlobalId, ModuleId, Program, PtrInit, VReg,
};
pub use trace::TraceSummary;
