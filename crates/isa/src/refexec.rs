//! The reference executor: the original per-instruction `match`
//! interpreter, preserved verbatim as the semantic oracle for the
//! pre-decoded fast engine ([`crate::fastexec`]).
//!
//! [`Interp::run_with_faults`](crate::Interp::run_with_faults) routes
//! here whenever a fault injector is armed (or runs a non-abort
//! recovery policy): this loop polls [`FaultInjector`] hooks before
//! every fetch and memory access, and its SIGPROT-analogue handler
//! implements skip/unwind recovery. The differential harness
//! (`tests/differential.rs`) locks the two engines together —
//! bit-identical event streams, architectural results, and errors.

use crate::classify::{ClassCounts, OpClass};
use crate::inst::{
    BranchKind, CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, InstClass, IntOp, LoadKind, MemSize,
    Operand, VecKind,
};
use crate::interp::{
    eval_float_op, eval_int_op, EventSink, FaultInjector, InjectionKind, InterpConfig, InterpError,
    RecoveryPolicy, RetiredEvent, RetiredInfo, RunResult, UNWIND_EXIT,
};
use crate::lower::{RT_FREE_PC, RT_MALLOC_PC, RT_SWEEP_PC, STACK_SIZE};
use crate::program::{FuncId, Program, PtrInit, VReg};
use cheri_cap::{CapFault, Capability, FaultKind, Perms};
use cheri_mem::{HeapAllocator, TaggedMemory};
use cheri_revoke::{RevokingHeap, StrategyKind, SweepOutcome};

/// Runs `prog` to completion on the reference executor.
pub(crate) fn run<S: EventSink, I: FaultInjector>(
    prog: &Program,
    cfg: InterpConfig,
    sink: &mut S,
    inj: I,
) -> Result<RunResult, InterpError> {
    let mut m = Machine::new(prog, cfg, inj)?;
    m.setup()?;
    m.exec(sink)
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum Value {
    Int(u64),
    F64(f64),
    Cap(Capability),
}

impl Value {
    fn zero() -> Value {
        Value::Int(0)
    }
}

struct Frame {
    func: u32,
    ip: u32,
    regs: Vec<Value>,
    taints: Vec<u64>,
    ret_reg: Option<VReg>,
    ret_ip: u32,
    saved_sp: u64,
}

/// Writes global initial images, pointer slots, and the captable —
/// the pre-execution memory image both engines start from.
pub(crate) fn init_memory(prog: &Program, mem: &mut TaggedMemory) -> Result<(), InterpError> {
    let cap_abi = prog.abi.is_capability();
    let data_root = Capability::root_rw();
    let map = &prog.map;
    for (gi, g) in prog.globals.iter().enumerate() {
        let base = map.global_base[gi];
        if !g.init.is_empty() {
            (*mem)
                .write_bytes(base, &g.init)
                .map_err(|err| InterpError::Mem { err, pc: 0 })?;
        }
        for &(off, init) in &g.ptr_inits {
            let slot = base + off;
            match init {
                PtrInit::Global(target, toff) => {
                    let taddr = map.global_base[target.0 as usize] + toff;
                    if cap_abi {
                        let tg = &prog.globals[target.0 as usize];
                        let cap = data_root
                            .set_bounds(map.global_base[target.0 as usize], tg.size)
                            .expect("global bounds")
                            .set_address(taddr);
                        (*mem)
                            .store_cap(slot, cap.to_compressed(), cap.tag())
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    } else {
                        (*mem)
                            .write_u64(slot, taddr)
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    }
                }
                PtrInit::Func(fid) => {
                    let faddr = map.func_base[fid.0 as usize];
                    if cap_abi {
                        let cap = func_cap(prog, fid);
                        (*mem)
                            .store_cap(slot, cap.to_compressed(), cap.tag())
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    } else {
                        (*mem)
                            .write_u64(slot, faddr)
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    }
                }
                PtrInit::SealRoot(otype) => {
                    if cap_abi {
                        let cap = Capability::root_all()
                            .set_bounds(0, 1 << 15)
                            .expect("otype space bounds")
                            .and_perms(Perms::SEAL | Perms::UNSEAL | Perms::GLOBAL)
                            .expect("root derivation")
                            .set_address(u64::from(otype));
                        (*mem)
                            .store_cap(slot, cap.to_compressed(), cap.tag())
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    } else {
                        (*mem)
                            .write_u64(slot, u64::from(otype))
                            .map_err(|err| InterpError::Mem { err, pc: 0 })?;
                    }
                }
            }
        }
    }
    // Captable: function sentries then global data caps.
    if cap_abi {
        let nf = prog.funcs.len() as u64;
        for fi in 0..prog.funcs.len() {
            let cap = func_cap(prog, FuncId(fi as u32));
            (*mem)
                .store_cap(
                    map.captable_base + fi as u64 * 16,
                    cap.to_compressed(),
                    true,
                )
                .map_err(|err| InterpError::Mem { err, pc: 0 })?;
        }
        for (gi, g) in prog.globals.iter().enumerate() {
            let cap = data_root
                .set_bounds(map.global_base[gi], g.size.max(1))
                .expect("global bounds");
            (*mem)
                .store_cap(
                    map.captable_base + (nf + gi as u64) * 16,
                    cap.to_compressed(),
                    true,
                )
                .map_err(|err| InterpError::Mem { err, pc: 0 })?;
        }
    }
    Ok(())
}

/// The sealed-sentry capability for calling function `f` — shared by the
/// captable image and the hybrid/purecap call paths of both engines.
pub(crate) fn func_cap(prog: &Program, f: FuncId) -> Capability {
    Capability::root_exec()
        .set_bounds(
            prog.map.func_base[f.0 as usize],
            prog.map.func_size[f.0 as usize],
        )
        .expect("function bounds representable")
        .seal_sentry()
        .expect("sentry seal")
}

pub(crate) const SAVE_AREA: u64 = 32; // LR + FP save slots (generous for both ABIs)
pub(crate) const META_LINES: u64 = 4096;

struct Machine<'p, I: FaultInjector> {
    prog: &'p Program,
    cfg: InterpConfig,
    inj: I,
    mem: TaggedMemory,
    heap: RevokingHeap,
    frames: Vec<Frame>,
    sp: u64,
    stack_cap: Capability,
    code_root: Capability,
    data_root: Capability,
    retired: u64,
    classes: ClassCounts,
    load_seq: u64,
    exit: Option<u64>,
    cap_abi: bool,
    pcc_branches: bool,
}

macro_rules! emit {
    ($self:ident, $sink:ident, $pc:expr, $info:expr) => {{
        let pc = $pc;
        let info = $info;
        $self.retired += 1;
        $self.classes.bump(OpClass::of(pc, &info));
        $sink.retire(RetiredEvent { pc, info });
    }};
}

impl<'p, I: FaultInjector> Machine<'p, I> {
    fn new(prog: &'p Program, cfg: InterpConfig, inj: I) -> Result<Machine<'p, I>, InterpError> {
        let cap_abi = prog.abi.is_capability();
        let kind = if cap_abi {
            match cfg.cap_alloc {
                // Capability ABIs need representable bounds: classic
                // layout would hand out unencodable large blocks.
                StrategyKind::Classic => StrategyKind::CapabilityPadded,
                k => k,
            }
        } else {
            StrategyKind::Classic
        };
        // First MiB of the arena is allocator metadata; the revocation
        // bitmap window sits in its upper half.
        let (heap_lo, heap_hi) = prog.map.heap;
        let heap = RevokingHeap::new(heap_lo + (1 << 20), heap_hi, heap_lo + (1 << 19), kind);
        let stack_base = prog.map.stack_top - STACK_SIZE;
        let stack_cap = Capability::root_rw()
            .set_bounds(stack_base, STACK_SIZE)
            .expect("stack bounds representable");
        Ok(Machine {
            prog,
            cfg,
            inj,
            mem: TaggedMemory::new(),
            heap,
            frames: Vec::with_capacity(64),
            sp: prog.map.stack_top,
            stack_cap,
            code_root: Capability::root_exec(),
            data_root: Capability::root_rw(),
            retired: 0,
            classes: ClassCounts::new(),
            load_seq: 0,
            exit: None,
            cap_abi,
            pcc_branches: prog.abi.capability_branches(),
        })
    }

    /// Writes global initial images, pointer slots, and the captable.
    fn setup(&mut self) -> Result<(), InterpError> {
        init_memory(self.prog, &mut self.mem)
    }

    fn pc(&self) -> u64 {
        let fr = self.frames.last().expect("no frame");
        self.prog.pc_of(FuncId(fr.func), fr.ip as usize)
    }

    fn exec<S: EventSink>(&mut self, sink: &mut S) -> Result<RunResult, InterpError> {
        self.push_entry_frame(sink)?;
        while self.exit.is_none() {
            if self.retired >= self.cfg.max_insts {
                return Err(InterpError::FuelExhausted {
                    retired: self.retired,
                });
            }
            if self.inj.active() {
                let pc = self.pc();
                if self.inj.poll_pcc(self.retired, pc) {
                    self.pcc_fault(pc)?;
                    continue;
                }
            }
            match self.step(sink) {
                Ok(()) => {}
                Err(e @ InterpError::Fault { .. }) => self.handle_fault(e)?,
                Err(e) => return Err(e),
            }
        }
        Ok(RunResult {
            retired: self.retired,
            exit_code: self.exit.unwrap_or(0),
            mem_stats: self.mem.stats(),
            heap_stats: self.heap.stats(),
            pages_touched: self.mem.pages_touched(),
            classes: self.classes,
        })
    }

    /// The SIGPROT-analogue handler: journals the trap and applies the
    /// injector's [`RecoveryPolicy`]. `Abort` (the [`NoInjector`]
    /// policy) preserves the historical behaviour exactly — the fault
    /// propagates unchanged.
    ///
    /// Recovery is sound because `Fault`-kind errors are raised before
    /// any architectural mutation of the faulting instruction (bounds,
    /// tag, and permission checks precede the access), and faulting
    /// instructions are never block terminators, so `advance` resumes
    /// at a well-defined successor.
    fn handle_fault(&mut self, e: InterpError) -> Result<(), InterpError> {
        let pc = match &e {
            InterpError::Fault { pc, .. } => *pc,
            _ => unreachable!("handle_fault only sees Fault errors"),
        };
        self.inj.trapped(pc);
        match self.inj.policy() {
            RecoveryPolicy::Abort => Err(e),
            RecoveryPolicy::SkipFaultingOp => {
                self.advance();
                Ok(())
            }
            RecoveryPolicy::UnwindToCheckpoint => {
                self.inj.unwound(pc);
                self.unwind_frame();
                Ok(())
            }
        }
    }

    /// An injected PCC corruption at the fetch stage. Capability ABIs
    /// seal the PC in a sentry and check it at every fetch, so the
    /// corruption traps immediately; hybrid's integer PC is unchecked
    /// and — in this dense code model, where every address inside a
    /// function decodes — the perturbation has no architectural effect.
    /// The injector journals it as undetected either way.
    fn pcc_fault(&mut self, pc: u64) -> Result<(), InterpError> {
        if self.cap_abi {
            let fr = self.frames.last().expect("no frame");
            let e = InterpError::Fault {
                fault: CapFault::op(FaultKind::TagViolation, pc),
                pc,
                func: self.prog.funcs[fr.func as usize].name.clone(),
            };
            self.handle_fault(e)
        } else {
            Ok(())
        }
    }

    /// The `longjmp` half of [`RecoveryPolicy::UnwindToCheckpoint`]:
    /// abandon the faulting frame, restore the caller's stack pointer,
    /// and resume at the return site as if the call returned zero.
    fn unwind_frame(&mut self) {
        let fr = self.frames.pop().expect("no frame");
        self.sp = fr.saved_sp;
        match self.frames.last_mut() {
            Some(caller) => {
                if let Some(r) = fr.ret_reg {
                    caller.regs[r as usize] = Value::Int(0);
                    caller.taints[r as usize] = 0;
                }
                caller.ip = fr.ret_ip;
            }
            None => self.exit = Some(UNWIND_EXIT),
        }
    }

    /// Applies a pending memory-site injection to the base register.
    /// Under a capability ABI the capability's *metadata* is corrupted,
    /// so the very next check catches it deterministically; under
    /// hybrid the same trigger perturbs the raw pointer *value* —
    /// nothing checks it, and the access silently lands on the wrong
    /// memory. That asymmetry is the experiment.
    fn inject_mem(&mut self, base: VReg, off: i64, pc: u64, is_store: bool) {
        let ea = match self.reg(base) {
            Value::Cap(c) => c.address().wrapping_add(off as u64),
            Value::Int(b) => b.wrapping_add(off as u64),
            // Type confusion surfaces in `resolve`; nothing to corrupt.
            Value::F64(_) => return,
        };
        let Some(kind) = self.inj.poll_mem(self.retired, pc, ea, is_store) else {
            return;
        };
        match self.reg(base) {
            Value::Cap(c) => {
                let corrupted = match kind {
                    InjectionKind::TagClear | InjectionKind::PccCorrupt => c.clear_tag(),
                    InjectionKind::BoundsNudge { delta } => {
                        // Cursor past the top: the access faults on
                        // bounds, or on tag if the nudge already left
                        // the representable window.
                        let past = c.base().wrapping_add(c.length()).wrapping_add(delta);
                        c.set_address(past)
                    }
                    InjectionKind::PermDrop => {
                        c.and_perms(Perms::GLOBAL).unwrap_or_else(|_| c.clear_tag())
                    }
                };
                self.set_reg(base, Value::Cap(corrupted));
            }
            Value::Int(b) => {
                // Hybrid analogue: the same corruption event lands as a
                // raw-pointer perturbation of comparable magnitude.
                let delta = match kind {
                    InjectionKind::TagClear | InjectionKind::PccCorrupt => 16,
                    InjectionKind::BoundsNudge { delta } => delta.max(1),
                    InjectionKind::PermDrop => 64,
                };
                self.set_reg(base, Value::Int(b.wrapping_add(delta)));
            }
            Value::F64(_) => {}
        }
    }

    fn push_entry_frame<S: EventSink>(&mut self, sink: &mut S) -> Result<(), InterpError> {
        let entry = self.prog.entry;
        let f = &self.prog.funcs[entry.0 as usize];
        if f.params != 0 {
            return Err(InterpError::BadProgram {
                msg: format!("entry `{}` must take no parameters", f.name),
            });
        }
        let target = self.prog.map.func_base[entry.0 as usize];
        self.push_frame(entry, &[], None, 0, sink, BranchKind::Call, target, false)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn push_frame<S: EventSink>(
        &mut self,
        callee: FuncId,
        args: &[Value],
        ret_reg: Option<VReg>,
        ret_ip: u32,
        sink: &mut S,
        kind: BranchKind,
        target: u64,
        from_pc_valid: bool,
    ) -> Result<(), InterpError> {
        if self.frames.len() as u32 >= self.cfg.max_call_depth {
            return Err(InterpError::CallDepth { pc: self.pc() });
        }
        let prog: &'p Program = self.prog;
        let f = &prog.funcs[callee.0 as usize];
        if args.len() != f.params as usize {
            return Err(InterpError::BadProgram {
                msg: format!(
                    "call to `{}` with {} args (expects {})",
                    f.name,
                    args.len(),
                    f.params
                ),
            });
        }
        // Branch event at the call site (skipped for the entry frame).
        let mut ret_pc = 0;
        if from_pc_valid {
            // PCC bounds are per-module (per-DSO): only cross-module
            // transfers install new bounds. Same-module indirect calls
            // (e.g. SQLite's dispatch) keep the current PCC, which is why
            // the benchmark ABI barely helps such workloads in the paper.
            let caller_module = self.current_module();
            let pcc_change = self.pcc_branches && f.module != caller_module;
            let pc = self.pc();
            ret_pc = pc + 4;
            emit!(
                self,
                sink,
                pc,
                RetiredInfo::Branch {
                    kind,
                    taken: true,
                    target,
                    pcc_change,
                }
            );
        }

        // Prologue: SP adjust + return-address save.
        let saved_sp = self.sp;
        let new_sp = self.sp - (f.frame_size + SAVE_AREA);
        self.sp = new_sp;
        let base_pc = self.prog.map.func_base[callee.0 as usize];
        emit!(
            self,
            sink,
            base_pc,
            if self.cap_abi {
                RetiredInfo::CapManip
            } else {
                RetiredInfo::Simple(InstClass::Dp)
            }
        );
        let lr_addr = new_sp + f.frame_size;
        if self.cap_abi {
            // Save the return address as a capability into the caller.
            let ret_cap = self.code_root.set_address(ret_pc);
            self.mem
                .store_cap(lr_addr & !15, ret_cap.to_compressed(), true)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            emit!(
                self,
                sink,
                base_pc + 4,
                RetiredInfo::Store {
                    addr: lr_addr & !15,
                    size: 16,
                    is_cap: true,
                }
            );
        } else {
            self.mem
                .write_u64(lr_addr, ret_pc)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            emit!(
                self,
                sink,
                base_pc + 4,
                RetiredInfo::Store {
                    addr: lr_addr,
                    size: 8,
                    is_cap: false,
                }
            );
        }

        let mut regs = vec![Value::zero(); f.vregs as usize];
        let taints = vec![0u64; f.vregs as usize];
        regs[0] = if self.cap_abi {
            Value::Cap(self.stack_cap.set_address(new_sp))
        } else {
            Value::Int(new_sp)
        };
        for (i, v) in args.iter().enumerate() {
            regs[i + 1] = *v;
        }
        self.frames.push(Frame {
            func: callee.0,
            ip: 0,
            regs,
            taints,
            ret_reg,
            ret_ip,
            saved_sp,
        });
        Ok(())
    }

    fn current_module(&self) -> crate::ModuleId {
        let fr = self.frames.last().expect("no frame");
        self.prog.funcs[fr.func as usize].module
    }

    fn pop_frame<S: EventSink>(
        &mut self,
        val: Option<Value>,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        let prog: &'p Program = self.prog;
        let fr = self.frames.pop().expect("no frame");
        let f = &prog.funcs[fr.func as usize];
        let pc = prog.pc_of(FuncId(fr.func), fr.ip as usize);
        let lr_addr = (self.sp + f.frame_size) & if self.cap_abi { !15 } else { !0 };

        // Epilogue: LR reload + SP adjust + return branch.
        emit!(
            self,
            sink,
            pc,
            RetiredInfo::Load {
                addr: lr_addr,
                size: if self.cap_abi { 16 } else { 8 },
                is_cap: self.cap_abi,
                dep_load: false,
            }
        );
        if self.cap_abi {
            self.mem
                .load_cap(lr_addr)
                .map_err(|err| InterpError::Mem { err, pc })?;
        } else {
            self.mem
                .read_u64(lr_addr)
                .map_err(|err| InterpError::Mem { err, pc })?;
        }
        emit!(
            self,
            sink,
            pc,
            if self.cap_abi {
                RetiredInfo::CapManip
            } else {
                RetiredInfo::Simple(InstClass::Dp)
            }
        );
        self.sp = fr.saved_sp;

        let pcc_branches = self.pcc_branches;
        match self.frames.last_mut() {
            Some(caller) => {
                let caller_func = &prog.funcs[caller.func as usize];
                let ret_target = prog.pc_of(FuncId(caller.func), fr.ret_ip as usize);
                let pcc_change = pcc_branches && caller_func.module != f.module;
                if let (Some(r), Some(v)) = (fr.ret_reg, val) {
                    caller.regs[r as usize] = v;
                    // Return values inherit "recently loaded" status
                    // conservatively: cleared (call boundary).
                    caller.taints[r as usize] = 0;
                }
                caller.ip = fr.ret_ip;
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Branch {
                        kind: BranchKind::Return,
                        taken: true,
                        target: ret_target,
                        pcc_change,
                    }
                );
            }
            None => {
                // Returning from the entry function ends the program.
                let code = match val {
                    Some(Value::Int(v)) => v,
                    _ => 0,
                };
                self.exit = Some(code);
            }
        }
        Ok(())
    }

    // ---- Value plumbing ---------------------------------------------------

    fn reg(&self, r: VReg) -> Value {
        self.frames.last().expect("no frame").regs[r as usize]
    }

    fn set_reg(&mut self, r: VReg, v: Value) {
        self.frames.last_mut().expect("no frame").regs[r as usize] = v;
    }

    fn taint(&self, r: VReg) -> u64 {
        self.frames.last().expect("no frame").taints[r as usize]
    }

    fn set_taint(&mut self, r: VReg, t: u64) {
        self.frames.last_mut().expect("no frame").taints[r as usize] = t;
    }

    fn as_int(&self, r: VReg) -> Result<u64, InterpError> {
        match self.reg(r) {
            Value::Int(v) => Ok(v),
            _ => Err(InterpError::TypeConfusion {
                pc: self.pc(),
                expected: "integer",
            }),
        }
    }

    fn as_f64(&self, r: VReg) -> Result<f64, InterpError> {
        match self.reg(r) {
            Value::F64(v) => Ok(v),
            Value::Int(0) => Ok(0.0), // zero-initialised registers
            _ => Err(InterpError::TypeConfusion {
                pc: self.pc(),
                expected: "float",
            }),
        }
    }

    fn as_cap(&self, r: VReg) -> Result<Capability, InterpError> {
        match self.reg(r) {
            Value::Cap(c) => Ok(c),
            _ => Err(InterpError::TypeConfusion {
                pc: self.pc(),
                expected: "capability",
            }),
        }
    }

    fn operand_int(&self, op: Operand) -> Result<u64, InterpError> {
        match op {
            Operand::Reg(r) => self.as_int(r),
            Operand::Imm(i) => Ok(i as u64),
        }
    }

    fn operand_taint(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.taint(r),
            Operand::Imm(_) => 0,
        }
    }

    /// Resolves a memory operand to (effective address, authorising cap).
    fn resolve(
        &self,
        base: VReg,
        off: i64,
        size: u64,
        write: bool,
        cap_access: bool,
    ) -> Result<(u64, Option<Capability>), InterpError> {
        if self.cap_abi {
            let c = self.as_cap(base)?;
            let addr = c.address().wrapping_add(off as u64);
            let mut req = if write { Perms::STORE } else { Perms::LOAD };
            if cap_access && write {
                req = req | Perms::STORE_CAP;
            }
            c.check_access(addr, size, req).map_err(|fault| {
                let fr = self.frames.last().expect("no frame");
                InterpError::Fault {
                    fault,
                    pc: self.pc(),
                    func: self.prog.funcs[fr.func as usize].name.clone(),
                }
            })?;
            Ok((addr, Some(c)))
        } else {
            let b = self.as_int(base)?;
            Ok((b.wrapping_add(off as u64), None))
        }
    }

    fn dep_load(&self, base_taint: u64) -> bool {
        base_taint != 0 && self.load_seq.saturating_sub(base_taint) <= self.cfg.dep_window
    }

    // ---- The main dispatch -------------------------------------------------

    fn step<S: EventSink>(&mut self, sink: &mut S) -> Result<(), InterpError> {
        let (func_idx, ip) = {
            let fr = self.frames.last().expect("no frame");
            (fr.func as usize, fr.ip as usize)
        };
        // `self.prog` is a shared reference with the machine's lifetime, so
        // instruction borrows are independent of `self` mutations below.
        let prog: &'p Program = self.prog;
        let func = &prog.funcs[func_idx];
        debug_assert!(ip < func.insts.len(), "fell off function `{}`", func.name);
        let func_id = FuncId(func_idx as u32);
        let pc = prog.pc_of(func_id, ip);
        let inst = &func.insts[ip];

        match inst {
            Inst::MovImm { dst, imm } => {
                self.set_reg(*dst, Value::Int(*imm));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::MovF64 { dst, imm } => {
                self.set_reg(*dst, Value::F64(*imm));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::Mov { dst, src } => {
                let v = self.reg(*src);
                let t = self.taint(*src);
                self.set_reg(*dst, v);
                self.set_taint(*dst, t);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::IntOp { op, dst, a, b } => {
                let av = self.as_int(*a)?;
                let bv = self.operand_int(*b)?;
                let r = eval_int_op(*op, av, bv);
                let t = self.taint(*a).max(self.operand_taint(*b));
                self.set_reg(*dst, Value::Int(r));
                self.set_taint(*dst, t);
                let info = match op {
                    IntOp::Mul => RetiredInfo::LongLatency {
                        class: InstClass::Dp,
                        extra: 1,
                    },
                    IntOp::UDiv | IntOp::URem => RetiredInfo::LongLatency {
                        class: InstClass::Dp,
                        extra: 9,
                    },
                    _ => RetiredInfo::Simple(InstClass::Dp),
                };
                emit!(self, sink, pc, info);
                self.advance();
            }
            Inst::Madd { dst, a, b, c, .. } => {
                let r = self
                    .as_int(*a)?
                    .wrapping_mul(self.as_int(*b)?)
                    .wrapping_add(self.as_int(*c)?);
                let t = self.taint(*a).max(self.taint(*b)).max(self.taint(*c));
                self.set_reg(*dst, Value::Int(r));
                self.set_taint(*dst, t);
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::LongLatency {
                        class: InstClass::Dp,
                        extra: 1,
                    }
                );
                self.advance();
            }
            Inst::FloatOp { op, dst, a, b } => {
                let r = eval_float_op(*op, self.as_f64(*a)?, self.as_f64(*b)?);
                self.set_reg(*dst, Value::F64(r));
                self.set_taint(*dst, 0);
                let info = match op {
                    FloatOp::FDiv => RetiredInfo::LongLatency {
                        class: InstClass::Vfp,
                        extra: 12,
                    },
                    FloatOp::FSqrt => RetiredInfo::LongLatency {
                        class: InstClass::Vfp,
                        extra: 16,
                    },
                    _ => RetiredInfo::Simple(InstClass::Vfp),
                };
                emit!(self, sink, pc, info);
                self.advance();
            }
            Inst::FMadd { dst, a, b, c } => {
                let r = self.as_f64(*a)?.mul_add(self.as_f64(*b)?, self.as_f64(*c)?);
                self.set_reg(*dst, Value::F64(r));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Vfp));
                self.advance();
            }
            Inst::FCmp { cond, dst, a, b } => {
                let av = self.as_f64(*a)?;
                let bv = self.as_f64(*b)?;
                let r = match cond {
                    Cond::Eq => av == bv,
                    Cond::Ne => av != bv,
                    Cond::Ltu | Cond::Lts => av < bv,
                    Cond::Leu => av <= bv,
                    Cond::Gtu | Cond::Gts => av > bv,
                    Cond::Geu => av >= bv,
                };
                self.set_reg(*dst, Value::Int(u64::from(r)));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Vfp));
                self.advance();
            }
            Inst::VecOp { op, dst, a, b } => {
                match op {
                    VecKind::VAdd => {
                        let r = self.as_f64(*a)? + self.as_f64(*b)?;
                        self.set_reg(*dst, Value::F64(r));
                    }
                    VecKind::VMul => {
                        let r = self.as_f64(*a)? * self.as_f64(*b)?;
                        self.set_reg(*dst, Value::F64(r));
                    }
                    VecKind::VFma => {
                        let acc = self.as_f64(*dst)?;
                        let r = self.as_f64(*a)?.mul_add(self.as_f64(*b)?, acc);
                        self.set_reg(*dst, Value::F64(r));
                    }
                    VecKind::VSad => {
                        let acc = self.as_int(*dst)?;
                        let av = self.as_int(*a)?;
                        let bv = self.as_int(*b)?;
                        self.set_reg(*dst, Value::Int(acc.wrapping_add(av.abs_diff(bv))));
                    }
                }
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Ase));
                self.advance();
            }
            Inst::Cvt { dst, src, to_int } => {
                if *to_int {
                    let v = self.as_f64(*src)?;
                    self.set_reg(*dst, Value::Int(v as i64 as u64));
                } else {
                    let v = self.as_int(*src)?;
                    self.set_reg(*dst, Value::F64(v as i64 as f64));
                }
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Vfp));
                self.advance();
            }

            // -- Hybrid-only leftovers of lowering ---------------------------
            Inst::LeaGlobal { dst, global, off } => {
                let addr = self.prog.map.global_base[global.0 as usize].wrapping_add(*off as u64);
                self.set_reg(*dst, Value::Int(addr));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::LeaFunc { dst, func } => {
                let addr = self.prog.map.func_base[func.0 as usize];
                self.set_reg(*dst, Value::Int(addr));
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::MovNullPtr { dst } => {
                let v = if self.cap_abi {
                    Value::Cap(Capability::null())
                } else {
                    Value::Int(0)
                };
                self.set_reg(*dst, v);
                self.set_taint(*dst, 0);
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::PtrAdd { dst, base, off } => {
                // Only reachable pre-lowering misuse; behave as integer add.
                let b = self.as_int(*base)?;
                let o = self.operand_int(*off)?;
                self.set_reg(*dst, Value::Int(b.wrapping_add(o)));
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::PtrToInt { dst, src } => {
                let v = self.reg(*src);
                let r = match v {
                    Value::Int(i) => i,
                    Value::Cap(c) => c.address(),
                    Value::F64(_) => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "pointer",
                        })
                    }
                };
                self.set_reg(*dst, Value::Int(r));
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.advance();
            }
            Inst::LoadPtr { .. }
            | Inst::StorePtr { .. }
            | Inst::LoadPtrIdx { .. }
            | Inst::StorePtrIdx { .. } => {
                return Err(InterpError::BadProgram {
                    msg: "pointer-generic memory op survived lowering".into(),
                });
            }

            Inst::LoadCapTable { dst, slot, off } => {
                let addr = self.prog.map.captable_base + u64::from(*slot) * 16;
                let (cc, tag) = self
                    .mem
                    .load_cap(addr)
                    .map_err(|err| InterpError::Mem { err, pc })?;
                let mut cap = Capability::from_compressed(cc, tag);
                if *off != 0 {
                    cap = cap.inc_address(*off);
                }
                self.load_seq += 1;
                let seq = self.load_seq;
                self.set_reg(*dst, Value::Cap(cap));
                self.set_taint(*dst, seq);
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Load {
                        addr,
                        size: 16,
                        is_cap: true,
                        dep_load: false,
                    }
                );
                self.advance();
            }

            Inst::Load {
                dst,
                base,
                off,
                size,
                kind,
                scaled,
            } => {
                let bytes = match kind {
                    LoadKind::Cap => 16,
                    _ => size.bytes(),
                };
                let off_v = match off {
                    Operand::Imm(i) => *i,
                    Operand::Reg(r) => {
                        let v = self.as_int(*r)? as i64;
                        if *scaled {
                            v.wrapping_mul(bytes as i64)
                        } else {
                            v
                        }
                    }
                };
                if self.inj.active() {
                    self.inject_mem(*base, off_v, pc, false);
                }
                let (addr, auth) = self.resolve(*base, off_v, bytes, false, false)?;
                let base_taint = self.taint(*base).max(self.operand_taint(*off));
                let dep = self.dep_load(base_taint);
                let v = match kind {
                    LoadKind::Int => {
                        let v = match size {
                            MemSize::S1 => self.mem.read_u8(addr).map(u64::from),
                            MemSize::S2 => self.mem.read_u16(addr).map(u64::from),
                            MemSize::S4 => self.mem.read_u32(addr).map(u64::from),
                            MemSize::S8 => self.mem.read_u64(addr),
                        }
                        .map_err(|err| InterpError::Mem { err, pc })?;
                        Value::Int(v)
                    }
                    LoadKind::F64 => {
                        let v = self
                            .mem
                            .read_u64(addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        Value::F64(f64::from_bits(v))
                    }
                    LoadKind::Cap => {
                        let (cc, mut tag) = self
                            .mem
                            .load_cap(addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        // Loading through a capability without LOAD_CAP
                        // strips the tag (Morello semantics).
                        if let Some(a) = auth {
                            if !a.perms().contains(Perms::LOAD_CAP) {
                                tag = false;
                            }
                        }
                        Value::Cap(Capability::from_compressed(cc, tag))
                    }
                };
                self.load_seq += 1;
                let seq = self.load_seq;
                self.set_reg(*dst, v);
                self.set_taint(*dst, seq);
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Load {
                        addr,
                        size: bytes as u8,
                        is_cap: matches!(kind, LoadKind::Cap),
                        dep_load: dep,
                    }
                );
                self.advance();
            }

            Inst::Store {
                src,
                base,
                off,
                size,
                kind,
                scaled,
            } => {
                let bytes = match kind {
                    LoadKind::Cap => 16,
                    _ => size.bytes(),
                };
                let off_v = match off {
                    Operand::Imm(i) => *i,
                    Operand::Reg(r) => {
                        let v = self.as_int(*r)? as i64;
                        if *scaled {
                            v.wrapping_mul(bytes as i64)
                        } else {
                            v
                        }
                    }
                };
                let is_cap = matches!(kind, LoadKind::Cap);
                if self.inj.active() {
                    self.inject_mem(*base, off_v, pc, true);
                }
                let (addr, _auth) = self.resolve(*base, off_v, bytes, true, is_cap)?;
                match kind {
                    LoadKind::Int => {
                        let v = self.as_int(*src)?;
                        match size {
                            MemSize::S1 => self.mem.write_u8(addr, v as u8),
                            MemSize::S2 => self.mem.write_u16(addr, v as u16),
                            MemSize::S4 => self.mem.write_u32(addr, v as u32),
                            MemSize::S8 => self.mem.write_u64(addr, v),
                        }
                        .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                    LoadKind::F64 => {
                        let v = self.as_f64(*src)?;
                        self.mem
                            .write_u64(addr, v.to_bits())
                            .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                    LoadKind::Cap => {
                        let c = self.as_cap(*src)?;
                        self.mem
                            .store_cap(addr, c.to_compressed(), c.tag())
                            .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                }
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Store {
                        addr,
                        size: bytes as u8,
                        is_cap,
                    }
                );
                self.advance();
            }

            Inst::Jump { target } => {
                let t_ip = func.labels[target.0 as usize];
                let t_pc = prog.pc_of(func_id, t_ip as usize);
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken: true,
                        target: t_pc,
                        pcc_change: false,
                    }
                );
                self.frames.last_mut().expect("no frame").ip = t_ip;
            }
            Inst::CondBr { cond, a, b, target } => {
                let av = self.as_int(*a)?;
                let bv = self.operand_int(*b)?;
                let taken = cond.eval(av, bv);
                let t_ip = func.labels[target.0 as usize];
                let t_pc = prog.pc_of(func_id, t_ip as usize);
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken,
                        target: t_pc,
                        pcc_change: false,
                    }
                );
                let f = self.frames.last_mut().expect("no frame");
                f.ip = if taken { t_ip } else { f.ip + 1 };
            }

            Inst::Call {
                func: callee,
                args,
                ret,
            } => {
                let argv: Vec<Value> = args.iter().map(|r| self.reg(*r)).collect();
                let callee = *callee;
                let ret = *ret;
                let ret_ip = ip as u32 + 1;
                let target = prog.map.func_base[callee.0 as usize];
                self.push_frame(
                    callee,
                    &argv,
                    ret,
                    ret_ip,
                    sink,
                    BranchKind::Call,
                    target,
                    true,
                )?;
            }
            Inst::CallIndirect { target, args, ret } => {
                let argv: Vec<Value> = args.iter().map(|r| self.reg(*r)).collect();
                let ret = *ret;
                let ret_ip = ip as u32 + 1;
                let taddr = match self.reg(*target) {
                    Value::Int(a) if !self.cap_abi => a,
                    Value::Cap(c) if self.cap_abi => {
                        c.check_branch().map_err(|fault| InterpError::Fault {
                            fault,
                            pc,
                            func: self.prog.funcs[func_idx].name.clone(),
                        })?;
                        c.address()
                    }
                    _ => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "function pointer",
                        })
                    }
                };
                let callee = self
                    .prog
                    .map
                    .func_at(taddr)
                    .ok_or(InterpError::UnknownCode { addr: taddr, pc })?;
                self.push_frame(
                    callee,
                    &argv,
                    ret,
                    ret_ip,
                    sink,
                    BranchKind::IndirectCall,
                    taddr,
                    true,
                )?;
            }
            Inst::Ret { val } => {
                let v = val.map(|r| self.reg(r));
                self.pop_frame(v, sink)?;
            }

            Inst::Malloc { dst, size } => {
                let sz = self.operand_int(*size)?;
                let dst = *dst;
                self.run_malloc(dst, sz, sink)?;
                self.advance();
            }
            Inst::Free { ptr } => {
                let addr = match self.reg(*ptr) {
                    Value::Int(a) => a,
                    Value::Cap(c) => c.address(),
                    Value::F64(_) => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "pointer",
                        })
                    }
                };
                self.run_free(addr, sink)?;
                self.advance();
            }

            Inst::CapOp { op, dst, a, b } => {
                let fr_pc = pc;
                let fault = |f: CapFault, m: &Machine<I>| InterpError::Fault {
                    fault: f,
                    pc: fr_pc,
                    func: m.prog.funcs[func_idx].name.clone(),
                };
                let a_taint = self.taint(*a);
                let result: Value = match op {
                    CapOpKind::IncOffset => {
                        let c = self.as_cap(*a)?;
                        let d = self.operand_int(*b)? as i64;
                        Value::Cap(c.inc_address(d))
                    }
                    CapOpKind::SetAddr => {
                        let c = self.as_cap(*a)?;
                        let addr = self.operand_int(*b)?;
                        Value::Cap(c.set_address(addr))
                    }
                    CapOpKind::SetBounds => {
                        let c = self.as_cap(*a)?;
                        let len = self.operand_int(*b)?;
                        Value::Cap(c.set_bounds(c.address(), len).map_err(|f| fault(f, self))?)
                    }
                    CapOpKind::SetBoundsExact => {
                        let c = self.as_cap(*a)?;
                        let len = self.operand_int(*b)?;
                        Value::Cap(
                            c.set_bounds_exact(c.address(), len)
                                .map_err(|f| fault(f, self))?,
                        )
                    }
                    CapOpKind::GetAddr => Value::Int(self.as_cap(*a)?.address()),
                    CapOpKind::GetLen => Value::Int(self.as_cap(*a)?.length()),
                    CapOpKind::GetBase => Value::Int(self.as_cap(*a)?.base()),
                    CapOpKind::GetTag => Value::Int(u64::from(self.as_cap(*a)?.tag())),
                    CapOpKind::AndPerm => {
                        let c = self.as_cap(*a)?;
                        let mask = Perms::from_bits_truncate(self.operand_int(*b)? as u32);
                        Value::Cap(c.and_perms(mask).map_err(|f| fault(f, self))?)
                    }
                    CapOpKind::SealEntry => {
                        let c = self.as_cap(*a)?;
                        Value::Cap(c.seal_sentry().map_err(|f| fault(f, self))?)
                    }
                    CapOpKind::ClearTag => Value::Cap(self.as_cap(*a)?.clear_tag()),
                };
                self.set_reg(*dst, result);
                self.set_taint(*dst, a_taint);
                emit!(self, sink, pc, RetiredInfo::CapManip);
                self.advance();
            }

            Inst::CapOp2 { op, a, auth, dst } => {
                let av = self.as_cap(*a)?;
                let authv = self.as_cap(*auth)?;
                let fault = |f: CapFault, m: &Machine<I>| InterpError::Fault {
                    fault: f,
                    pc,
                    func: m.prog.funcs[func_idx].name.clone(),
                };
                let r = match op {
                    CapOp2Kind::Seal => av.seal(&authv).map_err(|f| fault(f, self))?,
                    CapOp2Kind::Unseal => av.unseal(&authv).map_err(|f| fault(f, self))?,
                };
                let t = self.taint(*a);
                self.set_reg(*dst, Value::Cap(r));
                self.set_taint(*dst, t);
                emit!(self, sink, pc, RetiredInfo::CapManip);
                self.advance();
            }

            Inst::Halt { code } => {
                let c = match code {
                    Some(r) => self.as_int(*r)?,
                    None => 0,
                };
                emit!(self, sink, pc, RetiredInfo::Simple(InstClass::Dp));
                self.exit = Some(c);
            }

            // Profiling marker: no retired instruction, no cycles — just
            // tell the sink the attribution context changed.
            Inst::Region { id } => {
                sink.region(*id);
                self.advance();
            }
        }
        Ok(())
    }

    fn advance(&mut self) {
        self.frames.last_mut().expect("no frame").ip += 1;
    }

    // ---- Runtime intrinsics --------------------------------------------------

    /// The simulated `malloc`: a cross-module call plus a realistic body of
    /// allocator work (size-class lookup, free-list pops, metadata
    /// touches), with capability-ABI extras (`CRRL`/`CRAM`/`SCBNDSE`
    /// manipulations and capability-typed metadata).
    fn run_malloc<S: EventSink>(
        &mut self,
        dst: VReg,
        size: u64,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        let pc = self.pc();
        // The allocator fast path stays within one PCC region (CheriBSD's
        // jemalloc is reached through a same-bounds PLT stub), so these
        // calls do not trigger Morello's PCC resteer — which is why the
        // benchmark ABI barely helps allocator-heavy workloads (SQLite).
        let pcc = false;
        emit!(
            self,
            sink,
            pc,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_MALLOC_PC,
                pcc_change: pcc,
            }
        );
        let alloc = self
            .heap
            .malloc(size)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;

        // Allocator body: DP work + metadata traffic.
        let class = HeapAllocator::size_class(size);
        let meta = self.prog.map.heap.0 + (class / 16 % META_LINES) * 64;
        for i in 0..14u64 {
            emit!(
                self,
                sink,
                RT_MALLOC_PC + i * 4,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        emit!(
            self,
            sink,
            RT_MALLOC_PC + 56,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        emit!(
            self,
            sink,
            RT_MALLOC_PC + 60,
            RetiredInfo::Load {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: true,
            }
        );
        emit!(
            self,
            sink,
            RT_MALLOC_PC + 64,
            RetiredInfo::Store {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            // CRRL + CRAM + alignment + SCBNDSE + CLRPERM + cursor set,
            // plus the revocation-bitmap bookkeeping of a CHERI allocator.
            for i in 0..10u64 {
                emit!(self, sink, RT_MALLOC_PC + 68 + i * 4, RetiredInfo::CapManip);
            }
            for i in 0..26u64 {
                emit!(
                    self,
                    sink,
                    RT_MALLOC_PC + 108 + i * 4,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            emit!(
                self,
                sink,
                RT_MALLOC_PC + 156,
                RetiredInfo::Store {
                    addr: meta + 32,
                    size: 16,
                    is_cap: true,
                }
            );
            // Revocation-bitmap maintenance: purecap-only memory traffic
            // (one bit per 16-byte granule, looked up and updated on every
            // allocation — the Cornucopia-style quarantine bookkeeping).
            let revbm = self.prog.map.heap.0 + (1 << 19) + (alloc.addr >> 10 & 0x3FFFF);
            emit!(
                self,
                sink,
                RT_MALLOC_PC + 160,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            emit!(
                self,
                sink,
                RT_MALLOC_PC + 164,
                RetiredInfo::Load {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                    dep_load: true,
                }
            );
            emit!(
                self,
                sink,
                RT_MALLOC_PC + 168,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            let cap = self
                .data_root
                .set_bounds_exact(alloc.addr, alloc.padded)
                .expect("allocator guarantees representable bounds");
            self.set_reg(dst, Value::Cap(cap));
        } else {
            self.set_reg(dst, Value::Int(alloc.addr));
        }
        self.set_taint(dst, 0);
        emit!(
            self,
            sink,
            RT_MALLOC_PC + 92,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    fn run_free<S: EventSink>(&mut self, addr: u64, sink: &mut S) -> Result<(), InterpError> {
        let pc = self.pc();
        let pcc = false; // see run_malloc

        emit!(
            self,
            sink,
            pc,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_FREE_PC,
                pcc_change: pcc,
            }
        );
        let outcome = self
            .heap
            .free(&mut self.mem, addr)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;
        for i in 0..8u64 {
            emit!(
                self,
                sink,
                RT_FREE_PC + i * 4,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        let meta = self.prog.map.heap.0 + (addr / 64 % META_LINES) * 64;
        emit!(
            self,
            sink,
            RT_FREE_PC + 32,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        emit!(
            self,
            sink,
            RT_FREE_PC + 36,
            RetiredInfo::Store {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            for i in 0..4u64 {
                emit!(self, sink, RT_FREE_PC + 40 + i * 4, RetiredInfo::CapManip);
            }
            for i in 0..6u64 {
                emit!(
                    self,
                    sink,
                    RT_FREE_PC + 56 + i * 4,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            let revbm = self.prog.map.heap.0 + (1 << 19) + (addr >> 10 & 0x3FFFF);
            emit!(
                self,
                sink,
                RT_FREE_PC + 80,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            emit!(
                self,
                sink,
                RT_FREE_PC + 84,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            emit!(
                self,
                sink,
                RT_FREE_PC + 88,
                RetiredInfo::Store {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                }
            );
        }
        if let Some(sweep) = outcome.sweep {
            self.emit_sweep(&sweep, sink);
        }
        emit!(
            self,
            sink,
            RT_FREE_PC + 48,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    /// Replays a revocation epoch's tag-sweep traffic as retired events,
    /// so the sweep is charged through the cache/TLB hierarchy exactly
    /// like Cornucopia's load-side barrier: each probe/load/clear becomes
    /// a load or store in a small sweep loop at [`RT_SWEEP_PC`], with a
    /// dash of loop-control DP work and a backward branch per page.
    fn emit_sweep<S: EventSink>(&mut self, sweep: &SweepOutcome, sink: &mut S) {
        for i in 0..4u64 {
            emit!(
                self,
                sink,
                RT_SWEEP_PC + i * 4,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let mut page_boundary = 0u64;
        for (i, acc) in sweep.accesses.iter().enumerate() {
            let pc = RT_SWEEP_PC + 16 + (i as u64 % 48) * 4;
            if acc.write {
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Store {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                    }
                );
            } else {
                emit!(
                    self,
                    sink,
                    pc,
                    RetiredInfo::Load {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                        dep_load: false,
                    }
                );
            }
            // Loop control: one DP op per access, and a taken backward
            // branch at each page boundary of the walk.
            emit!(self, sink, pc + 4, RetiredInfo::Simple(InstClass::Dp));
            if acc.addr >> 12 != page_boundary {
                page_boundary = acc.addr >> 12;
                emit!(
                    self,
                    sink,
                    RT_SWEEP_PC + 16 + 49 * 4,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken: true,
                        target: RT_SWEEP_PC + 16,
                        pcc_change: false,
                    }
                );
            }
        }
    }
}
