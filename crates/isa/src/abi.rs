//! The three CHERI ABIs of CheriBSD on Morello.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A CheriBSD Application Binary Interface (§2.4 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Abi {
    /// Plain AArch64: 64-bit integer pointers, no capability checks.
    /// The paper's performance baseline.
    Hybrid,
    /// Pure-capability: every pointer — language-level and sub-language
    /// (stack pointer, return addresses, GOT entries) — is a 128-bit
    /// capability; every access is checked; function calls use capability
    /// branches that update PCC bounds.
    Purecap,
    /// Purecap-benchmark: identical data/memory profile to purecap, but
    /// function calls and returns use integer jumps under a single global
    /// PCC, sidestepping Morello's PCC-unaware branch predictor.
    Benchmark,
}

impl Abi {
    /// All three ABIs, in the paper's presentation order.
    pub const ALL: [Abi; 3] = [Abi::Hybrid, Abi::Benchmark, Abi::Purecap];

    /// The size of a pointer in bytes under this ABI.
    pub const fn pointer_size(self) -> u64 {
        match self {
            Abi::Hybrid => 8,
            Abi::Purecap | Abi::Benchmark => 16,
        }
    }

    /// The alignment of a pointer in bytes under this ABI.
    pub const fn pointer_align(self) -> u64 {
        self.pointer_size()
    }

    /// Do pointers carry capabilities (tags, bounds, permissions)?
    pub const fn is_capability(self) -> bool {
        matches!(self, Abi::Purecap | Abi::Benchmark)
    }

    /// Do calls/returns use capability branches that change PCC bounds?
    /// Only true for purecap; the benchmark ABI exists precisely to turn
    /// this off while keeping everything else.
    pub const fn capability_branches(self) -> bool {
        matches!(self, Abi::Purecap)
    }

    /// Short lowercase name as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            Abi::Hybrid => "hybrid",
            Abi::Purecap => "purecap",
            Abi::Benchmark => "benchmark",
        }
    }
}

impl fmt::Display for Abi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_sizes() {
        assert_eq!(Abi::Hybrid.pointer_size(), 8);
        assert_eq!(Abi::Purecap.pointer_size(), 16);
        assert_eq!(Abi::Benchmark.pointer_size(), 16);
    }

    #[test]
    fn capability_properties() {
        assert!(!Abi::Hybrid.is_capability());
        assert!(Abi::Purecap.is_capability());
        assert!(Abi::Benchmark.is_capability());
        assert!(Abi::Purecap.capability_branches());
        assert!(!Abi::Benchmark.capability_branches());
        assert!(!Abi::Hybrid.capability_branches());
    }

    #[test]
    fn names() {
        assert_eq!(Abi::Hybrid.to_string(), "hybrid");
        assert_eq!(Abi::ALL.len(), 3);
    }
}
