//! A disassembler for lowered programs.
//!
//! Renders instructions in an AArch64/Morello-flavoured syntax, which
//! makes the ABI differences *visible*: disassemble the same function
//! lowered for hybrid and purecap and diff them — the capability loads,
//! `cincoffset`s and re-derivation µops appear exactly where the paper
//! says the overhead lives.

use crate::inst::{CapOp2Kind, CapOpKind, Cond, FloatOp, Inst, IntOp, LoadKind, Operand, VecKind};
use crate::program::{FuncId, Program};
use core::fmt::Write as _;

fn reg(r: u16) -> String {
    if r == 0 {
        "sp".to_owned()
    } else {
        format!("v{r}")
    }
}

fn operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => reg(*r),
        Operand::Imm(i) => format!("#{i}"),
    }
}

fn int_op_name(op: IntOp) -> &'static str {
    match op {
        IntOp::Add => "add",
        IntOp::Sub => "sub",
        IntOp::Mul => "mul",
        IntOp::UDiv => "udiv",
        IntOp::URem => "urem",
        IntOp::And => "and",
        IntOp::Orr => "orr",
        IntOp::Eor => "eor",
        IntOp::Lsl => "lsl",
        IntOp::Lsr => "lsr",
        IntOp::Asr => "asr",
    }
}

fn float_op_name(op: FloatOp) -> &'static str {
    match op {
        FloatOp::FAdd => "fadd",
        FloatOp::FSub => "fsub",
        FloatOp::FMul => "fmul",
        FloatOp::FDiv => "fdiv",
        FloatOp::FMin => "fmin",
        FloatOp::FMax => "fmax",
        FloatOp::FSqrt => "fsqrt",
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Ltu => "lo",
        Cond::Leu => "ls",
        Cond::Gtu => "hi",
        Cond::Geu => "hs",
        Cond::Lts => "lt",
        Cond::Gts => "gt",
    }
}

fn cap_op_name(op: CapOpKind) -> &'static str {
    match op {
        CapOpKind::IncOffset => "cincoffset",
        CapOpKind::SetAddr => "scvalue",
        CapOpKind::SetBounds => "scbnds",
        CapOpKind::SetBoundsExact => "scbndse",
        CapOpKind::GetAddr => "cgetaddr",
        CapOpKind::GetLen => "cgetlen",
        CapOpKind::GetBase => "cgetbase",
        CapOpKind::GetTag => "cgettag",
        CapOpKind::AndPerm => "candperm",
        CapOpKind::SealEntry => "cseal.entry",
        CapOpKind::ClearTag => "cleartag",
    }
}

/// Renders one instruction. `prog` resolves symbol names for calls and
/// globals.
pub fn render_inst(prog: &Program, inst: &Inst) -> String {
    match inst {
        Inst::MovImm { dst, imm } => format!("mov     {}, #{imm:#x}", reg(*dst)),
        Inst::MovF64 { dst, imm } => format!("fmov    {}, #{imm}", reg(*dst)),
        Inst::Mov { dst, src } => format!("mov     {}, {}", reg(*dst), reg(*src)),
        Inst::MovNullPtr { dst } => format!("mov     {}, cnull", reg(*dst)),
        Inst::IntOp { op, dst, a, b } => format!(
            "{:<7} {}, {}, {}",
            int_op_name(*op),
            reg(*dst),
            reg(*a),
            operand(b)
        ),
        Inst::Madd {
            dst,
            a,
            b,
            c,
            addr_gen,
        } => format!(
            "madd{}   {}, {}, {}, {}",
            if *addr_gen { "a" } else { " " },
            reg(*dst),
            reg(*a),
            reg(*b),
            reg(*c)
        ),
        Inst::FloatOp { op, dst, a, b } => format!(
            "{:<7} {}, {}, {}",
            float_op_name(*op),
            reg(*dst),
            reg(*a),
            reg(*b)
        ),
        Inst::FMadd { dst, a, b, c } => format!(
            "fmadd   {}, {}, {}, {}",
            reg(*dst),
            reg(*a),
            reg(*b),
            reg(*c)
        ),
        Inst::FCmp { cond, dst, a, b } => format!(
            "fcmp.{}  {}, {}, {}",
            cond_name(*cond),
            reg(*dst),
            reg(*a),
            reg(*b)
        ),
        Inst::VecOp { op, dst, a, b } => {
            let name = match op {
                VecKind::VAdd => "vadd",
                VecKind::VMul => "vmul",
                VecKind::VFma => "vfma",
                VecKind::VSad => "vsad",
            };
            format!("{:<7} {}, {}, {}", name, reg(*dst), reg(*a), reg(*b))
        }
        Inst::Cvt { dst, src, to_int } => {
            if *to_int {
                format!("fcvtzs  {}, {}", reg(*dst), reg(*src))
            } else {
                format!("scvtf   {}, {}", reg(*dst), reg(*src))
            }
        }
        Inst::LeaGlobal { dst, global, off } => format!(
            "adrp+add {}, {}+{off}",
            reg(*dst),
            prog.globals
                .get(global.0 as usize)
                .map_or("?", |g| g.name.as_str())
        ),
        Inst::LeaFunc { dst, func } => format!(
            "adrp+add {}, {}",
            reg(*dst),
            prog.funcs
                .get(func.0 as usize)
                .map_or("?", |f| f.name.as_str())
        ),
        Inst::PtrAdd { dst, base, off } => {
            format!("add.p   {}, {}, {}", reg(*dst), reg(*base), operand(off))
        }
        Inst::PtrToInt { dst, src } => format!("mov.p   {}, {}", reg(*dst), reg(*src)),
        Inst::LoadPtr { dst, base, off } => {
            format!("ldr.p   {}, [{}, #{off}]", reg(*dst), reg(*base))
        }
        Inst::StorePtr { src, base, off } => {
            format!("str.p   {}, [{}, #{off}]", reg(*src), reg(*base))
        }
        Inst::LoadPtrIdx { dst, base, idx } => format!(
            "ldr.p   {}, [{}, {}, lsl #p]",
            reg(*dst),
            reg(*base),
            reg(*idx)
        ),
        Inst::StorePtrIdx { src, base, idx } => format!(
            "str.p   {}, [{}, {}, lsl #p]",
            reg(*src),
            reg(*base),
            reg(*idx)
        ),
        Inst::LoadCapTable { dst, slot, off } => {
            format!("ldr     c{}, [captable, #{slot}] ; +{off}", dst)
        }
        Inst::Load {
            dst,
            base,
            off,
            size,
            kind,
            scaled,
        } => {
            let (mn, szc) = match kind {
                LoadKind::Cap => ("ldr", 'c'),
                LoadKind::F64 => ("ldr", 'd'),
                LoadKind::Int => match size.bytes() {
                    1 => ("ldrb", 'w'),
                    2 => ("ldrh", 'w'),
                    4 => ("ldr", 'w'),
                    _ => ("ldr", 'x'),
                },
            };
            let addr = if *scaled {
                format!(
                    "[{}, {}, lsl #{}]",
                    reg(*base),
                    operand(off),
                    size.bytes().trailing_zeros()
                )
            } else {
                format!("[{}, {}]", reg(*base), operand(off))
            };
            format!("{mn:<7} {szc}{}, {addr}", dst)
        }
        Inst::Store {
            src,
            base,
            off,
            size,
            kind,
            scaled,
        } => {
            let (mn, szc) = match kind {
                LoadKind::Cap => ("str", 'c'),
                LoadKind::F64 => ("str", 'd'),
                LoadKind::Int => match size.bytes() {
                    1 => ("strb", 'w'),
                    2 => ("strh", 'w'),
                    4 => ("str", 'w'),
                    _ => ("str", 'x'),
                },
            };
            let addr = if *scaled {
                format!(
                    "[{}, {}, lsl #{}]",
                    reg(*base),
                    operand(off),
                    size.bytes().trailing_zeros()
                )
            } else {
                format!("[{}, {}]", reg(*base), operand(off))
            };
            format!("{mn:<7} {szc}{}, {addr}", src)
        }
        Inst::Jump { target } => format!("b       .L{}", target.0),
        Inst::CondBr { cond, a, b, target } => format!(
            "b.{:<5} .L{} ; if {} {} {}",
            cond_name(*cond),
            target.0,
            reg(*a),
            cond_name(*cond),
            operand(b)
        ),
        Inst::Call { func, args, ret } => format!(
            "bl      {} ({} args){}",
            prog.funcs
                .get(func.0 as usize)
                .map_or("?", |f| f.name.as_str()),
            args.len(),
            ret.map_or(String::new(), |r| format!(" -> {}", reg(r)))
        ),
        Inst::CallIndirect { target, args, ret } => format!(
            "blr     {} ({} args){}",
            reg(*target),
            args.len(),
            ret.map_or(String::new(), |r| format!(" -> {}", reg(r)))
        ),
        Inst::Ret { val } => format!(
            "ret{}",
            val.map_or(String::new(), |r| format!("     {}", reg(r)))
        ),
        Inst::Malloc { dst, size } => {
            format!("bl      malloc({}) -> {}", operand(size), reg(*dst))
        }
        Inst::Free { ptr } => format!("bl      free({})", reg(*ptr)),
        Inst::CapOp { op, dst, a, b } => format!(
            "{:<11} {}, {}, {}",
            cap_op_name(*op),
            reg(*dst),
            reg(*a),
            operand(b)
        ),
        Inst::CapOp2 { op, dst, a, auth } => {
            let name = match op {
                CapOp2Kind::Seal => "cseal",
                CapOp2Kind::Unseal => "cunseal",
            };
            format!("{:<7} {}, {}, {}", name, reg(*dst), reg(*a), reg(*auth))
        }
        Inst::Halt { code } => format!(
            "hlt{}",
            code.map_or(String::new(), |r| format!("     {}", reg(r)))
        ),
        Inst::Region { id } => {
            if *id == u32::MAX {
                ".region  end".to_owned()
            } else {
                format!(".region  #{id}")
            }
        }
    }
}

/// Disassembles one function of a lowered program, with addresses and
/// label markers.
pub fn disassemble(prog: &Program, func: FuncId) -> String {
    let f = &prog.funcs[func.0 as usize];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} <{}> ({} ABI, module {}):",
        format_args!("{:#010x}", prog.map.func_base[func.0 as usize]),
        f.name,
        prog.abi,
        prog.modules[f.module.0 as usize],
    );
    for (idx, inst) in f.insts.iter().enumerate() {
        for (l, &target) in f.labels.iter().enumerate() {
            if target as usize == idx {
                let _ = writeln!(out, ".L{l}:");
            }
        }
        let _ = writeln!(
            out,
            "  {:#010x}:  {}",
            prog.pc_of(func, idx),
            render_inst(prog, inst)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower, Abi, Cond as C, MemSize, ProgramBuilder};

    fn demo(abi: Abi) -> Program {
        let mut b = ProgramBuilder::new("d", abi);
        let g = b.global_zero("table", 64);
        let main = b.function("main", 0, |f| {
            let p = f.vreg();
            f.lea_global(p, g, 0);
            let q = f.vreg();
            f.ptr_add(q, p, 16);
            let v = f.vreg();
            f.load_int(v, q, 0, MemSize::S8);
            let skip = f.label();
            f.br(C::Eq, v, 0, skip);
            f.store_ptr(q, p, 0);
            f.bind(skip);
            f.halt();
        });
        b.set_entry(main);
        lower(&b.build())
    }

    #[test]
    fn hybrid_disassembly_shows_integer_code() {
        let p = demo(Abi::Hybrid);
        let d = disassemble(&p, p.entry);
        assert!(d.contains("hybrid ABI"));
        assert!(d.contains("adrp+add"), "{d}");
        assert!(d.contains("str     x"), "pointer store is 8-byte: {d}");
        assert!(!d.contains("cincoffset"));
        assert!(d.contains(".L0:"));
    }

    #[test]
    fn purecap_disassembly_shows_capability_code() {
        let p = demo(Abi::Purecap);
        let d = disassemble(&p, p.entry);
        assert!(d.contains("captable"), "{d}");
        assert!(d.contains("cincoffset"), "{d}");
        assert!(d.contains("cgettag"), "re-derivation µop visible: {d}");
        assert!(
            d.contains("str     c"),
            "pointer store is a capability: {d}"
        );
    }

    #[test]
    fn every_instruction_variant_renders() {
        // Smoke-render across a broad program (no panics, nonempty).
        let p = demo(Abi::Purecap);
        for f in 0..p.funcs.len() {
            let d = disassemble(&p, crate::FuncId(f as u32));
            assert!(!d.is_empty());
        }
    }
}
