//! The instruction set.
//!
//! One enum serves both the portable (pre-lowering) and the executable
//! (post-lowering) forms. The pointer-generic instructions ([`Inst::PtrAdd`],
//! [`Inst::LoadPtr`], [`Inst::LeaGlobal`], …) only appear before lowering;
//! the capability instructions ([`Inst::CapOp`], capability-kind loads)
//! only appear after lowering to a capability ABI (or in hand-written
//! capability playground programs).

use crate::program::{FuncId, GlobalId, VReg};
use serde::{Deserialize, Serialize};

/// A branch-local label (index into the owning function's label table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

/// A register-or-immediate operand.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// A signed immediate.
    Imm(i64),
}

/// Integer data-processing operations (counted as `DP_SPEC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (`x / 0 == 0`, the AArch64 rule).
    UDiv,
    /// Unsigned remainder (`x % 0 == x`).
    URem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Orr,
    /// Bitwise XOR.
    Eor,
    /// Logical shift left (mod 64).
    Lsl,
    /// Logical shift right (mod 64).
    Lsr,
    /// Arithmetic shift right (mod 64).
    Asr,
}

/// Floating-point operations (counted as `VFP_SPEC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloatOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division.
    FDiv,
    /// Minimum.
    FMin,
    /// Maximum.
    FMax,
    /// Square root of the first operand (second ignored).
    FSqrt,
}

/// SIMD operations (counted as `ASE_SPEC`). Architecturally modelled as a
/// scalar `f64` operation standing in for a 128-bit vector op; only the
/// instruction-mix accounting depends on the distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VecKind {
    /// Vector add.
    VAdd,
    /// Vector multiply.
    VMul,
    /// Vector fused multiply-add (`dst += a * b`).
    VFma,
    /// Sum of absolute differences (video workloads).
    VSad,
}

/// Branch conditions over two integer values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned less-or-equal.
    Leu,
    /// Unsigned greater-than.
    Gtu,
    /// Unsigned greater-or-equal.
    Geu,
    /// Signed less-than.
    Lts,
    /// Signed greater-than.
    Gts,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Ltu => a < b,
            Cond::Leu => a <= b,
            Cond::Gtu => a > b,
            Cond::Geu => a >= b,
            Cond::Lts => (a as i64) < (b as i64),
            Cond::Gts => (a as i64) > (b as i64),
        }
    }
}

/// Access sizes for scalar memory operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemSize {
    /// 1 byte.
    S1,
    /// 2 bytes.
    S2,
    /// 4 bytes.
    S4,
    /// 8 bytes.
    S8,
}

impl MemSize {
    /// The size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemSize::S1 => 1,
            MemSize::S2 => 2,
            MemSize::S4 => 4,
            MemSize::S8 => 8,
        }
    }
}

/// What a scalar load/store moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadKind {
    /// Integer data (zero-extended to 64 bits).
    Int,
    /// An 8-byte `f64`.
    F64,
    /// A 16-byte capability with its tag (post-lowering only).
    Cap,
}

/// Two-capability-register operations (sealing with an authority
/// capability — the CHERI compartmentalisation primitives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapOp2Kind {
    /// `dst = seal(a, auth)`: seal `a` with the otype designated by
    /// `auth`'s cursor.
    Seal,
    /// `dst = unseal(a, auth)`: unseal `a`; `auth`'s cursor must match
    /// `a`'s otype and carry the UNSEAL permission.
    Unseal,
}

/// Capability-manipulation operations (counted as `DP_SPEC`; these are the
/// extra data-processing µops the paper attributes CHERI's instruction-mix
/// shift to).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapOpKind {
    /// `dst = a` with cursor advanced by `b` bytes.
    IncOffset,
    /// `dst = a` with cursor set to `b`.
    SetAddr,
    /// `dst = a` bounded to `[cursor, cursor + b)`, rounding outward.
    SetBounds,
    /// As `SetBounds` but faulting if rounding would be needed.
    SetBoundsExact,
    /// `dst = a`'s cursor address (integer result).
    GetAddr,
    /// `dst = a`'s length (integer result).
    GetLen,
    /// `dst = a`'s base (integer result).
    GetBase,
    /// `dst = a`'s tag (0 or 1).
    GetTag,
    /// `dst = a` with permissions intersected with the mask `b`.
    AndPerm,
    /// `dst = a` sealed as a sentry.
    SealEntry,
    /// `dst = a` with the tag cleared.
    ClearTag,
}

/// Branch kinds as retired, for branch-predictor modelling and the
/// `BR_*_SPEC` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional or unconditional direct branch.
    Immediate,
    /// Indirect branch through a register (virtual dispatch, interpreter
    /// dispatch tables).
    Indirect,
    /// Direct call.
    Call,
    /// Indirect call.
    IndirectCall,
    /// Function return.
    Return,
}

/// One instruction.
///
/// See the module docs for which variants are pre- vs post-lowering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = imm`.
    MovImm {
        /// Destination register.
        dst: VReg,
        /// The immediate value.
        imm: u64,
    },
    /// `dst = imm` (floating point).
    MovF64 {
        /// Destination register.
        dst: VReg,
        /// The immediate value.
        imm: f64,
    },
    /// `dst = src` (any value kind).
    Mov {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// Integer data processing: `dst = op(a, b)`.
    IntOp {
        /// The operation.
        op: IntOp,
        /// Destination register.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: Operand,
    },
    /// Fused multiply-add: `dst = a * b + c`. When the result feeds
    /// address generation, set `addr_gen` so capability lowerings can
    /// split it (Morello has no capability-aware MADD).
    Madd {
        /// Destination register.
        dst: VReg,
        /// Multiplicand.
        a: VReg,
        /// Multiplier.
        b: VReg,
        /// Addend.
        c: VReg,
        /// Whether the result is used as (part of) an address.
        addr_gen: bool,
    },
    /// Floating-point data processing: `dst = op(a, b)`.
    FloatOp {
        /// The operation.
        op: FloatOp,
        /// Destination register.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// Floating-point fused multiply-add: `dst = a * b + c`.
    FMadd {
        /// Destination register.
        dst: VReg,
        /// Multiplicand.
        a: VReg,
        /// Multiplier.
        b: VReg,
        /// Addend.
        c: VReg,
    },
    /// Float comparison producing 0/1: `dst = (a cond b)`.
    FCmp {
        /// The condition (interpreted over floats).
        cond: Cond,
        /// Destination (integer 0/1).
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// SIMD operation (counts as `ASE_SPEC`): `dst = op(a, b)` with
    /// [`VecKind::VFma`]/[`VecKind::VSad`] also reading `dst`.
    VecOp {
        /// The operation.
        op: VecKind,
        /// Destination register.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// Conversion between integer and `f64`.
    Cvt {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
        /// `true`: f64 -> int; `false`: int -> f64.
        to_int: bool,
    },

    // ---- Pointer-generic (pre-lowering) ----------------------------------
    /// Materialise the address of a global (+offset) as a pointer.
    LeaGlobal {
        /// Destination pointer register.
        dst: VReg,
        /// The global.
        global: GlobalId,
        /// Byte offset within the global.
        off: i64,
    },
    /// Materialise a null pointer (integer 0 under hybrid, the untagged
    /// null capability under capability ABIs).
    MovNullPtr {
        /// Destination pointer register.
        dst: VReg,
    },
    /// Materialise a function pointer.
    LeaFunc {
        /// Destination pointer register.
        dst: VReg,
        /// The function.
        func: FuncId,
    },
    /// Pointer arithmetic: `dst = base + off` (bytes).
    PtrAdd {
        /// Destination pointer register.
        dst: VReg,
        /// Base pointer.
        base: VReg,
        /// Byte displacement.
        off: Operand,
    },
    /// Extract the integer address of a pointer.
    PtrToInt {
        /// Destination integer register.
        dst: VReg,
        /// Source pointer.
        src: VReg,
    },
    /// Load a pointer-sized value (8 bytes hybrid / 16-byte capability).
    LoadPtr {
        /// Destination pointer register.
        dst: VReg,
        /// Base pointer.
        base: VReg,
        /// Byte offset.
        off: i64,
    },
    /// Store a pointer-sized value.
    StorePtr {
        /// Source pointer register.
        src: VReg,
        /// Base pointer.
        base: VReg,
        /// Byte offset.
        off: i64,
    },
    /// Load `base[idx]` from a pointer array: scaled register-offset
    /// addressing (`ldr x, [x0, x1, lsl #3]` / `ldr c, [c0, x1, lsl #4]`).
    LoadPtrIdx {
        /// Destination pointer register.
        dst: VReg,
        /// Base pointer.
        base: VReg,
        /// Element index register (scaled by the pointer size).
        idx: VReg,
    },
    /// Store `src` to `base[idx]` of a pointer array.
    StorePtrIdx {
        /// Source pointer register.
        src: VReg,
        /// Base pointer.
        base: VReg,
        /// Element index register (scaled by the pointer size).
        idx: VReg,
    },

    // ---- Memory ----------------------------------------------------------
    /// Scalar load: `dst = *(base + off)`.
    Load {
        /// Destination register.
        dst: VReg,
        /// Base pointer.
        base: VReg,
        /// Byte offset (register or immediate).
        off: Operand,
        /// Access size (ignored for `kind != Int`).
        size: MemSize,
        /// What is loaded.
        kind: LoadKind,
        /// Scaled register-offset addressing: a register `off` is an
        /// *element index*, multiplied by the access size (16 for
        /// capabilities) — AArch64's `lsl #n` addressing mode.
        scaled: bool,
    },
    /// Scalar store: `*(base + off) = src`.
    Store {
        /// Source register.
        src: VReg,
        /// Base pointer.
        base: VReg,
        /// Byte offset (register or immediate).
        off: Operand,
        /// Access size (ignored for `kind != Int`).
        size: MemSize,
        /// What is stored.
        kind: LoadKind,
        /// Scaled register-offset addressing (see [`Inst::Load`]).
        scaled: bool,
    },

    // ---- Control flow ----------------------------------------------------
    /// Unconditional branch to a label.
    Jump {
        /// The target label.
        target: Label,
    },
    /// Conditional branch: taken when `cond(a, b)`.
    CondBr {
        /// The condition.
        cond: Cond,
        /// First comparison source.
        a: VReg,
        /// Second comparison source.
        b: Operand,
        /// Target when taken (falls through otherwise).
        target: Label,
    },
    /// Direct call.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers (copied to callee v1..vN).
        args: Vec<VReg>,
        /// Where to put the return value, if any.
        ret: Option<VReg>,
    },
    /// Indirect call through a function pointer.
    CallIndirect {
        /// Register holding the function pointer.
        target: VReg,
        /// Argument registers.
        args: Vec<VReg>,
        /// Where to put the return value, if any.
        ret: Option<VReg>,
    },
    /// Return from the current function.
    Ret {
        /// Optional return value register.
        val: Option<VReg>,
    },

    // ---- Runtime intrinsics ----------------------------------------------
    /// Heap allocation; `dst` receives the new pointer.
    Malloc {
        /// Destination pointer register.
        dst: VReg,
        /// Requested size in bytes.
        size: Operand,
    },
    /// Heap release.
    Free {
        /// The pointer to release (must be an allocation base).
        ptr: VReg,
    },

    /// Load a capability from the capability table (GOT): the purecap way
    /// to materialise a global or function pointer. Post-lowering only.
    LoadCapTable {
        /// Destination pointer register.
        dst: VReg,
        /// Capability-table slot index.
        slot: u32,
        /// Extra byte offset applied to the loaded capability's cursor
        /// (folded into the load; no extra instruction).
        off: i64,
    },

    // ---- Capability operations (post-lowering / playground) ---------------
    /// Two-capability sealing operation: `dst = op(a, auth)`.
    CapOp2 {
        /// The operation.
        op: CapOp2Kind,
        /// The capability being sealed/unsealed.
        a: VReg,
        /// The authorising capability.
        auth: VReg,
        /// Destination register.
        dst: VReg,
    },
    /// Capability manipulation: `dst = op(a, b)`.
    CapOp {
        /// The operation.
        op: CapOpKind,
        /// Destination register.
        dst: VReg,
        /// Capability source.
        a: VReg,
        /// Scalar operand where applicable.
        b: Operand,
    },

    /// Stop the program; the value of `code` becomes the exit value.
    Halt {
        /// Exit-code register (0 if `None`).
        code: Option<VReg>,
    },

    /// A profiling region marker (no architectural effect, retires no
    /// event): subsequent instructions are attributed to region `id`
    /// until the next marker. `id` indexes
    /// [`Program::regions`](crate::Program); `u32::MAX` means "no
    /// region".
    Region {
        /// Region-name index.
        id: u32,
    },
}

/// Instruction classes for `*_SPEC` accounting (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Integer data processing (including capability manipulation).
    Dp,
    /// Floating point.
    Vfp,
    /// SIMD.
    Ase,
    /// Load.
    Ld,
    /// Store.
    St,
    /// Immediate branch.
    BrImmed,
    /// Indirect branch.
    BrIndirect,
    /// Return branch.
    BrReturn,
}

impl Inst {
    /// The `*_SPEC` class this instruction retires as. Pointer-generic
    /// instructions report their hybrid class; lowering replaces them
    /// before execution anyway.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::MovImm { .. }
            | Inst::MovF64 { .. }
            | Inst::Mov { .. }
            | Inst::IntOp { .. }
            | Inst::Madd { .. }
            | Inst::Cvt { .. }
            | Inst::LeaGlobal { .. }
            | Inst::MovNullPtr { .. }
            | Inst::LeaFunc { .. }
            | Inst::PtrAdd { .. }
            | Inst::PtrToInt { .. }
            | Inst::CapOp { .. }
            | Inst::CapOp2 { .. }
            | Inst::Malloc { .. }
            | Inst::Free { .. }
            | Inst::Halt { .. }
            | Inst::Region { .. } => InstClass::Dp,
            Inst::FloatOp { .. } | Inst::FMadd { .. } | Inst::FCmp { .. } => InstClass::Vfp,
            Inst::VecOp { .. } => InstClass::Ase,
            Inst::LoadPtr { .. }
            | Inst::LoadPtrIdx { .. }
            | Inst::Load { .. }
            | Inst::LoadCapTable { .. } => InstClass::Ld,
            Inst::StorePtr { .. } | Inst::StorePtrIdx { .. } | Inst::Store { .. } => InstClass::St,
            Inst::Jump { .. } | Inst::CondBr { .. } => InstClass::BrImmed,
            Inst::Call { .. } => InstClass::BrImmed,
            Inst::CallIndirect { .. } => InstClass::BrIndirect,
            Inst::Ret { .. } => InstClass::BrReturn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        let neg = (-1i64) as u64;
        assert!(Cond::Gtu.eval(neg, 1));
        assert!(Cond::Lts.eval(neg, 1));
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Leu.eval(5, 5));
        assert!(Cond::Geu.eval(5, 5));
        assert!(Cond::Gts.eval(1, -1i64 as u64));
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::S1.bytes(), 1);
        assert_eq!(MemSize::S2.bytes(), 2);
        assert_eq!(MemSize::S4.bytes(), 4);
        assert_eq!(MemSize::S8.bytes(), 8);
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::MovImm { dst: 0, imm: 1 }.class(), InstClass::Dp);
        assert_eq!(
            Inst::VecOp {
                op: VecKind::VAdd,
                dst: 0,
                a: 1,
                b: 2
            }
            .class(),
            InstClass::Ase
        );
        assert_eq!(Inst::Ret { val: None }.class(), InstClass::BrReturn);
        assert_eq!(
            Inst::CallIndirect {
                target: 0,
                args: vec![],
                ret: None
            }
            .class(),
            InstClass::BrIndirect
        );
    }
}
