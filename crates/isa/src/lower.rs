//! ABI lowering: specialising a portable program to hybrid, purecap, or
//! benchmark code.
//!
//! This pass plays the role of the CHERI LLVM backend: the *same* portable
//! program produces three different instruction streams whose differences
//! are exactly the ones the paper attributes CHERI overhead to:
//!
//! | portable op        | hybrid                  | purecap / benchmark               |
//! |--------------------|-------------------------|-----------------------------------|
//! | `LeaGlobal`        | `adrp` + `add` (2 DP)   | capability-table load (16 B load) |
//! | `LeaFunc`          | `adrp` + `add` (2 DP)   | capability-table load (sentry)    |
//! | `PtrAdd`           | integer `add`           | `CIncOffset` (capability DP)      |
//! | `PtrToInt`         | `mov`                   | `CGetAddr` (capability DP)        |
//! | `LoadPtr/StorePtr` | 8-byte load/store       | 16-byte tagged capability access  |
//! | `Madd` (addr-gen)  | single fused `madd`     | `mul` + `CIncOffset` (split)      |
//! | `StorePtr*`        | plain store             | + capability re-derivation µop    |
//! | `CallIndirect`     | plain `blr`             | + sealed-entry check µop          |
//!
//! The extra µops around pointer *writes* and indirect calls model CHERI
//! LLVM's re-derivation/sealing sequences; together with the costlier
//! purecap allocator they reproduce the instruction-count inflation the
//! paper's IPC-and-time data implies (from ~5% for array codes up to
//! ~90% for allocation-churning interpreters).
//!
//! Lowering also assigns the address map: function code regions, global
//! addresses, the capability table, stack and heap arenas.

use crate::inst::{CapOpKind, Inst, IntOp, Operand};
use crate::program::{AddressMap, Function, GenericProgram, Program};
use crate::Abi;

/// Code region base (functions are laid out upward from here).
pub(crate) const CODE_BASE: u64 = 0x1_0000;
/// Pseudo code region of the C runtime's `malloc` (for I-side modelling of
/// the synthetic allocator events).
pub(crate) const RT_MALLOC_PC: u64 = 0xE000;
/// Pseudo code region of `free`.
pub(crate) const RT_FREE_PC: u64 = 0xE800;
/// Pseudo code region of the revocation tag-sweep loop (the Cornucopia
/// epoch the `cheri-revoke` subsystem replays through the timing model).
pub(crate) const RT_SWEEP_PC: u64 = 0xF000;
/// Capability-table (GOT) base address.
pub(crate) const CAPTABLE_BASE: u64 = 0x0800_0000;
/// Global data base address.
pub(crate) const GLOBALS_BASE: u64 = 0x1000_0000;
/// Heap arena.
pub(crate) const HEAP_RANGE: (u64, u64) = (0x4000_0000, 0x7000_0000);
/// Initial stack pointer (stack grows down).
pub(crate) const STACK_TOP: u64 = 0x7FFF_F000;
/// Stack arena size.
pub(crate) const STACK_SIZE: u64 = 8 << 20;

/// Per-function fixed code overhead (prologue/epilogue), in instructions.
const FUNC_OVERHEAD_INSTS: u64 = 6;

/// Lowers a portable program to executable form for its target ABI.
///
/// The generic program must have been built with the same [`Abi`] the
/// lowering targets (the builder bakes pointer sizes into data layouts);
/// the ABI is therefore taken from the program itself.
pub fn lower(gp: &GenericProgram) -> Program {
    let abi = gp.abi;
    let cap = abi.is_capability();
    let n_funcs = gp.funcs.len() as u32;

    let funcs: Vec<Function> = gp
        .funcs
        .iter()
        .map(|f| lower_function(f, abi, n_funcs))
        .collect();

    // --- Address map -------------------------------------------------------
    let mut func_base = Vec::with_capacity(funcs.len());
    let mut func_size = Vec::with_capacity(funcs.len());
    let mut code = CODE_BASE;
    for f in &funcs {
        // 64-byte function alignment, as linkers commonly emit.
        code = (code + 63) & !63;
        func_base.push(code);
        let size = (f.insts.len() as u64 + FUNC_OVERHEAD_INSTS) * 4;
        func_size.push(size);
        code += size;
    }

    let mut global_base = Vec::with_capacity(gp.globals.len());
    let mut data = GLOBALS_BASE;
    for g in &gp.globals {
        data = (data + g.align - 1) & !(g.align - 1);
        global_base.push(data);
        data += g.size.max(1);
    }

    let captable_slots = if cap {
        n_funcs as u64 + gp.globals.len() as u64
    } else {
        0
    };

    let map = AddressMap {
        func_base,
        func_size,
        global_base,
        captable_base: CAPTABLE_BASE,
        captable_slots,
        stack_top: STACK_TOP,
        heap: HEAP_RANGE,
    };

    Program {
        name: gp.name.clone(),
        abi,
        funcs,
        globals: gp.globals.clone(),
        modules: gp.modules.clone(),
        entry: gp.entry,
        regions: gp.regions.clone(),
        map,
    }
}

/// The captable slot of a function (capability ABIs).
pub(crate) fn func_slot(f: u32) -> u32 {
    f
}

/// The captable slot of a global (capability ABIs).
pub(crate) fn global_slot(n_funcs: u32, g: u32) -> u32 {
    n_funcs + g
}

fn lower_function(f: &Function, abi: Abi, n_funcs: u32) -> Function {
    let mut out: Vec<Inst> = Vec::with_capacity(f.insts.len() + 8);
    let mut idx_map: Vec<u32> = Vec::with_capacity(f.insts.len());
    let mut vregs = f.vregs;
    let cap = abi.is_capability();

    for inst in &f.insts {
        idx_map.push(out.len() as u32);
        match inst {
            Inst::LeaGlobal { dst, global, off } => {
                if cap {
                    out.push(Inst::LoadCapTable {
                        dst: *dst,
                        slot: global_slot(n_funcs, global.0),
                        off: *off,
                    });
                } else {
                    // adrp + add pair; the interpreter resolves the global's
                    // address, so carry the symbol through both halves.
                    out.push(Inst::LeaGlobal {
                        dst: *dst,
                        global: *global,
                        off: *off,
                    });
                    out.push(Inst::IntOp {
                        op: IntOp::Add,
                        dst: *dst,
                        a: *dst,
                        b: Operand::Imm(0),
                    });
                }
            }
            Inst::LeaFunc { dst, func } => {
                if cap {
                    out.push(Inst::LoadCapTable {
                        dst: *dst,
                        slot: func_slot(func.0),
                        off: 0,
                    });
                } else {
                    out.push(Inst::LeaFunc {
                        dst: *dst,
                        func: *func,
                    });
                    out.push(Inst::IntOp {
                        op: IntOp::Add,
                        dst: *dst,
                        a: *dst,
                        b: Operand::Imm(0),
                    });
                }
            }
            Inst::PtrAdd { dst, base, off } => {
                if cap {
                    out.push(Inst::CapOp {
                        op: CapOpKind::IncOffset,
                        dst: *dst,
                        a: *base,
                        b: *off,
                    });
                } else {
                    out.push(Inst::IntOp {
                        op: IntOp::Add,
                        dst: *dst,
                        a: *base,
                        b: *off,
                    });
                }
            }
            Inst::PtrToInt { dst, src } => {
                if cap {
                    out.push(Inst::CapOp {
                        op: CapOpKind::GetAddr,
                        dst: *dst,
                        a: *src,
                        b: Operand::Imm(0),
                    });
                } else {
                    out.push(Inst::Mov {
                        dst: *dst,
                        src: *src,
                    });
                }
            }
            Inst::Madd {
                dst,
                a,
                b,
                c,
                addr_gen,
            } => {
                if cap && *addr_gen {
                    // No capability MADD on Morello: split into mul + CIncOffset.
                    let tmp = vregs;
                    vregs = vregs.checked_add(1).expect("vreg overflow in lowering");
                    out.push(Inst::IntOp {
                        op: IntOp::Mul,
                        dst: tmp,
                        a: *a,
                        b: Operand::Reg(*b),
                    });
                    out.push(Inst::CapOp {
                        op: CapOpKind::IncOffset,
                        dst: *dst,
                        a: *c,
                        b: Operand::Reg(tmp),
                    });
                } else {
                    out.push(inst.clone());
                }
            }
            Inst::LoadPtr { dst, base, off } => {
                out.push(Inst::Load {
                    dst: *dst,
                    base: *base,
                    off: Operand::Imm(*off),
                    size: crate::MemSize::S8,
                    kind: if cap {
                        crate::LoadKind::Cap
                    } else {
                        crate::LoadKind::Int
                    },
                    scaled: false,
                });
            }
            Inst::StorePtr { src, base, off } => {
                if cap {
                    // Re-derive the stored capability (CHERI LLVM emits a
                    // bounds/permission adjustment before most pointer
                    // stores).
                    let tmp = vregs;
                    vregs = vregs.checked_add(1).expect("vreg overflow in lowering");
                    out.push(Inst::CapOp {
                        op: CapOpKind::GetTag,
                        dst: tmp,
                        a: *src,
                        b: Operand::Imm(0),
                    });
                }
                out.push(Inst::Store {
                    src: *src,
                    base: *base,
                    off: Operand::Imm(*off),
                    size: crate::MemSize::S8,
                    kind: if cap {
                        crate::LoadKind::Cap
                    } else {
                        crate::LoadKind::Int
                    },
                    scaled: false,
                });
            }
            Inst::LoadPtrIdx { dst, base, idx } => {
                out.push(Inst::Load {
                    dst: *dst,
                    base: *base,
                    off: Operand::Reg(*idx),
                    size: crate::MemSize::S8,
                    kind: if cap {
                        crate::LoadKind::Cap
                    } else {
                        crate::LoadKind::Int
                    },
                    scaled: true,
                });
            }
            Inst::StorePtrIdx { src, base, idx } => {
                if cap {
                    let tmp = vregs;
                    vregs = vregs.checked_add(1).expect("vreg overflow in lowering");
                    out.push(Inst::CapOp {
                        op: CapOpKind::GetTag,
                        dst: tmp,
                        a: *src,
                        b: Operand::Imm(0),
                    });
                }
                out.push(Inst::Store {
                    src: *src,
                    base: *base,
                    off: Operand::Reg(*idx),
                    size: crate::MemSize::S8,
                    kind: if cap {
                        crate::LoadKind::Cap
                    } else {
                        crate::LoadKind::Int
                    },
                    scaled: true,
                });
            }
            Inst::CallIndirect { target, args, ret } => {
                if cap {
                    // Sealed-entry (sentry) validation before the branch.
                    let tmp = vregs;
                    vregs = vregs.checked_add(1).expect("vreg overflow in lowering");
                    out.push(Inst::CapOp {
                        op: CapOpKind::GetTag,
                        dst: tmp,
                        a: *target,
                        b: Operand::Imm(0),
                    });
                }
                out.push(Inst::CallIndirect {
                    target: *target,
                    args: args.clone(),
                    ret: *ret,
                });
            }
            other => out.push(other.clone()),
        }
    }

    // Remap label targets to lowered indices (labels may point one past the
    // last instruction).
    let labels = f
        .labels
        .iter()
        .map(|&l| {
            if (l as usize) < idx_map.len() {
                idx_map[l as usize]
            } else {
                out.len() as u32
            }
        })
        .collect();

    // Branch instructions carry label *ids*, which are stable across
    // lowering; only the label table itself (remapped above) changes.

    Function {
        name: f.name.clone(),
        module: f.module,
        params: f.params,
        frame_size: f.frame_size,
        insts: out,
        labels,
        vregs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abi, MemSize, ProgramBuilder};

    fn demo(abi: Abi) -> Program {
        let mut b = ProgramBuilder::new("demo", abi);
        let g = b.global_zero("buf", 256);
        let f = b.function("main", 0, |f| {
            let p = f.vreg();
            f.lea_global(p, g, 8);
            let q = f.vreg();
            f.ptr_add(q, p, 16);
            let i = f.vreg();
            f.mov_imm(i, 3);
            let s = f.vreg();
            f.mov_imm(s, 8);
            let r = f.vreg();
            f.madd_addr(r, i, s, q);
            let v = f.vreg();
            f.load_int(v, p, 0, MemSize::S8);
            f.store_ptr(p, p, 64);
            f.halt();
        });
        b.set_entry(f);
        b.lower()
    }

    #[test]
    fn hybrid_lowering_uses_integer_ops() {
        let p = demo(Abi::Hybrid);
        let insts = &p.funcs[0].insts;
        assert!(insts
            .iter()
            .all(|i| !matches!(i, Inst::CapOp { .. } | Inst::LoadCapTable { .. })));
        // madd stays fused in hybrid
        assert!(insts.iter().any(|i| matches!(i, Inst::Madd { .. })));
        // StorePtr became an 8-byte integer store
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Store {
                kind: crate::LoadKind::Int,
                ..
            }
        )));
        assert_eq!(p.map.captable_slots, 0);
    }

    #[test]
    fn purecap_lowering_uses_capability_ops() {
        let p = demo(Abi::Purecap);
        let insts = &p.funcs[0].insts;
        assert!(insts.iter().any(|i| matches!(i, Inst::LoadCapTable { .. })));
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::CapOp {
                op: CapOpKind::IncOffset,
                ..
            }
        )));
        // madd_addr split: no fused madd remains
        assert!(!insts.iter().any(|i| matches!(i, Inst::Madd { .. })));
        // StorePtr became a capability store
        assert!(insts.iter().any(|i| matches!(
            i,
            Inst::Store {
                kind: crate::LoadKind::Cap,
                ..
            }
        )));
        assert_eq!(p.map.captable_slots, 1 + 1); // one func + one global
    }

    #[test]
    fn purecap_code_is_larger_where_it_matters() {
        // The demo is pointer-heavy in hybrid's favour only through
        // adrp+add; check the *global* property on a pointer-free vs
        // pointer-heavy pair instead: madd splitting grows purecap code.
        let h = demo(Abi::Hybrid);
        let p = demo(Abi::Purecap);
        // hybrid: lea(2) + add + 2 movs + madd + load + store + halt = 9
        // purecap: captable load + incoff + 2 movs + mul+incoff + load + store + halt = 9
        // counts may tie here; the real check is that both lowered.
        assert!(h.total_insts() > 0 && p.total_insts() > 0);
    }

    #[test]
    fn benchmark_matches_purecap_code_shape() {
        let b = demo(Abi::Benchmark);
        let p = demo(Abi::Purecap);
        assert_eq!(b.total_insts(), p.total_insts());
        assert_eq!(b.map.captable_slots, p.map.captable_slots);
    }

    #[test]
    fn address_map_is_ascending_and_disjoint() {
        let p = demo(Abi::Purecap);
        let mut prev_end = 0;
        for (b, s) in p.map.func_base.iter().zip(&p.map.func_size) {
            assert!(*b >= prev_end);
            assert_eq!(b % 64, 0, "function alignment");
            prev_end = b + s;
        }
        assert!(prev_end < GLOBALS_BASE);
    }

    #[test]
    fn labels_remapped_after_expansion() {
        // A branch over an expanded instruction must still land correctly.
        let mut b = ProgramBuilder::new("lbl", Abi::Hybrid);
        let g = b.global_zero("g", 64);
        let f = b.function("main", 0, |f| {
            let c = f.vreg();
            f.mov_imm(c, 0);
            let skip = f.label();
            f.br(crate::Cond::Eq, c, 0, skip);
            // this LeaGlobal expands to 2 insts in hybrid
            let p = f.vreg();
            f.lea_global(p, g, 0);
            f.bind(skip);
            f.halt();
        });
        b.set_entry(f);
        let prog = b.lower();
        let func = &prog.funcs[0];
        // the bound label must point at the Halt instruction
        let target = func.labels[0] as usize;
        assert!(matches!(func.insts[target], Inst::Halt { .. }));
    }
}
