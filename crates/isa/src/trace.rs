//! Architecture-independent trace analysis.
//!
//! [`TraceSummary`] is an [`EventSink`](crate::EventSink) that
//! characterises a workload the way §3.3 of the paper does — instruction
//! mix, memory intensity, pointer (capability) density, working-set size,
//! access-pattern class — without running the timing model. Useful for
//! validating a new workload against its target profile before measuring
//! it.

use crate::inst::{BranchKind, InstClass};
use crate::interp::{EventSink, RetiredEvent, RetiredInfo};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Workload characterisation extracted from one architectural run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total retired instructions.
    pub retired: u64,
    /// Loads / stores / integer DP / FP / SIMD / branch counts.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Integer data processing (including capability manipulation).
    pub dp: u64,
    /// Floating point.
    pub vfp: u64,
    /// SIMD.
    pub ase: u64,
    /// Branches of any kind.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Indirect branches (dispatch, virtual calls).
    pub indirect_branches: u64,
    /// Calls.
    pub calls: u64,
    /// Capability-manipulation instructions.
    pub cap_manip: u64,
    /// Capability (16-byte, tagged) memory accesses.
    pub cap_accesses: u64,
    /// Loads whose address depended on a recent load (pointer chasing).
    pub dependent_loads: u64,
    /// Bytes moved by loads and stores.
    pub bytes_accessed: u64,
    /// PCC-bounds-changing branches.
    pub pcc_changes: u64,
    #[serde(skip)]
    lines: HashSet<u64>,
    #[serde(skip)]
    pages: HashSet<u64>,
    #[serde(skip)]
    code_lines: HashSet<u64>,
    /// Distinct 64-byte data lines touched (filled by [`finish`](TraceSummary::finish)).
    pub data_lines: u64,
    /// Distinct 4-KiB data pages touched.
    pub data_pages: u64,
    /// Distinct 64-byte code lines fetched.
    pub code_footprint_lines: u64,
}

impl TraceSummary {
    /// Creates an empty summary.
    pub fn new() -> TraceSummary {
        TraceSummary::default()
    }

    /// Seals the set-based statistics into plain counters. Call after the
    /// run; safe to call repeatedly.
    pub fn finish(&mut self) {
        self.data_lines = self.lines.len() as u64;
        self.data_pages = self.pages.len() as u64;
        self.code_footprint_lines = self.code_lines.len() as u64;
    }

    /// The paper's memory-intensity metric:
    /// `(loads + stores) / (dp + ase + vfp)`.
    pub fn memory_intensity(&self) -> f64 {
        (self.loads + self.stores) as f64 / (self.dp + self.ase + self.vfp).max(1) as f64
    }

    /// Fraction of memory accesses that move capabilities.
    pub fn cap_traffic_share(&self) -> f64 {
        self.cap_accesses as f64 / (self.loads + self.stores).max(1) as f64
    }

    /// Fraction of loads that chase pointers.
    pub fn chase_fraction(&self) -> f64 {
        self.dependent_loads as f64 / self.loads.max(1) as f64
    }

    /// Data working set in bytes (line-granular).
    pub fn working_set_bytes(&self) -> u64 {
        self.data_lines * 64
    }

    /// A coarse access-pattern class, in the vocabulary the paper uses.
    pub fn access_pattern(&self) -> &'static str {
        if self.chase_fraction() > 0.25 {
            "pointer-chasing"
        } else if self.memory_intensity() > 0.35 && self.chase_fraction() < 0.05 {
            "streaming"
        } else {
            "mixed"
        }
    }
}

impl EventSink for TraceSummary {
    fn retire(&mut self, ev: RetiredEvent) {
        self.retired += 1;
        self.code_lines.insert(ev.pc >> 6);
        match ev.info {
            RetiredInfo::Simple(class) | RetiredInfo::LongLatency { class, .. } => match class {
                InstClass::Dp => self.dp += 1,
                InstClass::Vfp => self.vfp += 1,
                InstClass::Ase => self.ase += 1,
                _ => {}
            },
            RetiredInfo::CapManip => {
                self.dp += 1;
                self.cap_manip += 1;
            }
            RetiredInfo::Load {
                addr,
                size,
                is_cap,
                dep_load,
            } => {
                self.loads += 1;
                self.bytes_accessed += u64::from(size);
                self.cap_accesses += u64::from(is_cap);
                self.dependent_loads += u64::from(dep_load);
                self.lines.insert(addr >> 6);
                self.pages.insert(addr >> 12);
            }
            RetiredInfo::Store { addr, size, is_cap } => {
                self.stores += 1;
                self.bytes_accessed += u64::from(size);
                self.cap_accesses += u64::from(is_cap);
                self.lines.insert(addr >> 6);
                self.pages.insert(addr >> 12);
            }
            RetiredInfo::Branch {
                kind,
                taken,
                pcc_change,
                ..
            } => {
                self.branches += 1;
                self.taken_branches += u64::from(taken);
                self.pcc_changes += u64::from(pcc_change);
                match kind {
                    BranchKind::Indirect | BranchKind::IndirectCall => {
                        self.indirect_branches += 1;
                        if kind == BranchKind::IndirectCall {
                            self.calls += 1;
                        }
                    }
                    BranchKind::Call => self.calls += 1,
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abi, Interp, InterpConfig, MemSize, ProgramBuilder};

    fn summarise(abi: Abi) -> TraceSummary {
        let mut b = ProgramBuilder::new("t", abi);
        let g = b.global_zero("arr", 8192);
        let main = b.function("main", 0, |f| {
            let p = f.vreg();
            f.lea_global(p, g, 0);
            let n = f.vreg();
            f.mov_imm(n, 512);
            let acc = f.vreg();
            f.mov_imm(acc, 0);
            f.for_loop(0, n, 1, |f, i| {
                let v = f.vreg();
                f.load_int_idx(v, p, i, MemSize::S8);
                f.add(acc, acc, v);
                f.store_int_idx(acc, p, i, MemSize::S8);
            });
            // A pointer store so capability ABIs show cap traffic.
            f.store_ptr(p, p, 0);
            f.halt_code(acc);
        });
        b.set_entry(main);
        let prog = b.lower();
        let mut t = TraceSummary::new();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut t)
            .unwrap();
        t.finish();
        t
    }

    #[test]
    fn counts_partition_and_derive() {
        let t = summarise(Abi::Hybrid);
        assert_eq!(
            t.retired,
            t.loads + t.stores + t.dp + t.vfp + t.ase + t.branches
        );
        assert!(t.loads >= 512);
        assert!(t.stores >= 513);
        assert!(t.memory_intensity() > 0.2);
        assert_eq!(t.cap_accesses, 0);
        // 4 KiB swept (512 x 8 B): 64 data lines plus stack noise.
        assert!(t.data_lines >= 64, "{}", t.data_lines);
        assert!(t.data_pages >= 1);
        assert_eq!(t.access_pattern(), "streaming");
    }

    #[test]
    fn capability_share_appears_under_purecap() {
        let h = summarise(Abi::Hybrid);
        let p = summarise(Abi::Purecap);
        assert!(p.cap_accesses > 0);
        assert!(p.cap_traffic_share() > h.cap_traffic_share());
        assert!(p.cap_manip > 0);
        assert!(p.code_footprint_lines > 0);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut t = summarise(Abi::Hybrid);
        let lines = t.data_lines;
        t.finish();
        assert_eq!(t.data_lines, lines);
    }
}
