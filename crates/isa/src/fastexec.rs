//! The pre-decoded, direct-threaded fast engine.
//!
//! Executes a [`DecodedProgram`] (see [`crate::decoded`]) as a loop
//! over *superblocks*: each block's packed interior micro-ops dispatch
//! through a per-ABI fn-pointer table (`table[op.kind](machine, sink,
//! op)` — no discriminant `match` on the hot path), while the
//! per-instruction bookkeeping of the reference loop — fuel check,
//! retired count, `ClassCounts` accumulation, and (for sinks that opt
//! in) the timing-core retire hop — happens once per block using the
//! pre-summed [`Superblock`] totals. Terminators (branches, calls,
//! allocator intrinsics, region markers) and the rare unpackable op run
//! through [`FastMachine::step`], the original per-op `match`, which is
//! also the *slow path* the engine re-enters for the remainder of a run
//! when a block's fuel margin fails — so the fuel-exhaustion point is
//! bit-exact. Fault-injection polls never run here at all: an armed
//! injector routes the whole run to the reference engine, so the
//! `active()` checks are compiled out of the hot path entirely.
//! Run state (registers, taints, frames, event scratch) lives in a
//! [`RunArena`] recycled through a thread-local pool, so steady-state
//! runs allocate nothing per run.
//!
//! Equivalence contract: for any program and sink, this engine produces
//! the *same event stream* (order and payload), the same architectural
//! result, and the same error as the reference executor
//! ([`crate::refexec`]). The differential harness
//! (`tests/differential.rs`) locks this across every workload×ABI cell,
//! random programs, superblock edge cases, and the error paths;
//! `debug_assert`s in the emit paths additionally check every
//! pre-computed class against [`OpClass::of`] in debug builds.

use crate::classify::{ClassCounts, OpClass};
use crate::decoded::{mk, ArgsRef, DecodedFunc, DecodedProgram, MicroOp, Off, Op, NO_TERM};
use crate::inst::{
    BranchKind, CapOp2Kind, CapOpKind, Cond, FloatOp, InstClass, IntOp, LoadKind, MemSize, Operand,
    VecKind,
};
use crate::interp::{
    eval_float_op, eval_int_op, EventSink, FaultInjector, InterpConfig, InterpError,
    RecoveryPolicy, RetiredEvent, RetiredInfo, RunResult,
};
use crate::lower::{RT_FREE_PC, RT_MALLOC_PC, RT_SWEEP_PC, STACK_SIZE};
use crate::program::Program;
use crate::refexec::{init_memory, Value, META_LINES, SAVE_AREA};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_mem::{HeapAllocator, TaggedMemory};
use cheri_revoke::{RevokingHeap, StrategyKind, SweepOutcome};
use std::cell::{Cell, RefCell};

/// Runs `prog` to completion on the fast engine. The caller guarantees
/// the injector is inert (`!active()` under `Abort`); the only hook an
/// inert injector can still observe is `trapped` on an organic fault,
/// which is replayed here exactly as the reference handler does.
pub(crate) fn run<S: EventSink, I: FaultInjector>(
    prog: &Program,
    cfg: InterpConfig,
    sink: &mut S,
    mut inj: I,
) -> Result<RunResult, InterpError> {
    debug_assert!(
        !inj.active() && inj.policy() == RecoveryPolicy::Abort,
        "fast engine selected with an armed injector"
    );
    let dec = DecodedProgram::decode(prog);
    let mut m = FastMachine::new(prog, &dec, cfg);
    let r = init_memory(prog, &mut m.mem).and_then(|()| m.exec(sink));
    m.recycle();
    if let Err(InterpError::Fault { pc, .. }) = &r {
        // The reference SIGPROT-analogue handler journals every trap
        // before aborting; keep that observable for inert injectors.
        inj.trapped(*pc);
    }
    r
}

// ---- Pooled run-state arena ------------------------------------------------

/// The per-run growable state of a [`FastMachine`] — register and taint
/// files, the frame stack, and the block event scratch buffer —
/// recycled across runs through a thread-local pool so steady-state
/// runs (the serving profiler's phase A, the bench reps) allocate
/// nothing per run.
struct RunArena {
    regs: Vec<Value>,
    taints: Vec<u64>,
    frames: Vec<FastFrame>,
    evbuf: Vec<(RetiredEvent, OpClass)>,
    block_execs: Vec<u64>,
}

impl RunArena {
    fn fresh() -> RunArena {
        RunArena {
            regs: Vec::with_capacity(256),
            taints: Vec::with_capacity(256),
            frames: Vec::with_capacity(64),
            evbuf: Vec::new(),
            block_execs: Vec::new(),
        }
    }

    /// Empties every buffer but keeps the grown capacity — that
    /// retained capacity is the entire point of the pool.
    fn reset(&mut self) {
        self.regs.clear();
        self.taints.clear();
        self.frames.clear();
        self.evbuf.clear();
        self.block_execs.clear();
    }
}

/// Upper bound on pooled arenas per thread; beyond this, arenas drop.
const ARENA_POOL_CAP: usize = 8;

thread_local! {
    static ARENA_POOL: RefCell<Vec<RunArena>> = const { RefCell::new(Vec::new()) };
    static ARENA_STATS: Cell<RunArenaStats> = const {
        Cell::new(RunArenaStats {
            acquires: 0,
            reuses: 0,
        })
    };
}

/// Counters for the fast engine's thread-local run-arena pool (see
/// [`run_arena_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunArenaStats {
    /// Fast-engine runs started on this thread (each acquires one
    /// arena).
    pub acquires: u64,
    /// Acquisitions served by a recycled arena rather than a fresh
    /// allocation — after warm-up this tracks `acquires` one-for-one.
    pub reuses: u64,
}

/// This thread's fast-engine arena-pool counters. Observability hook
/// for the pooled-`RunState` contract: callers that price many cells on
/// one thread (the serving profiler, the speed bench) can assert that
/// runs after the first reuse an arena instead of allocating.
pub fn run_arena_stats() -> RunArenaStats {
    ARENA_STATS.with(|s| s.get())
}

fn acquire_arena() -> RunArena {
    let reused = ARENA_POOL.with(|p| p.borrow_mut().pop());
    ARENA_STATS.with(|s| {
        let mut st = s.get();
        st.acquires += 1;
        if reused.is_some() {
            st.reuses += 1;
        }
        s.set(st);
    });
    reused.unwrap_or_else(RunArena::fresh)
}

fn release_arena(mut arena: RunArena) {
    arena.reset();
    ARENA_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < ARENA_POOL_CAP {
            pool.push(arena);
        }
    });
}

/// One active call frame. Registers live in the machine-wide arenas at
/// `[reg_base, reg_base + vregs)`; the running frame's `func`/`ip` are
/// cached in locals of the dispatch loop, so only the return plumbing
/// is stored here.
struct FastFrame {
    func: u32,
    reg_base: u32,
    ret_reg: Option<u16>,
    ret_ip: u32,
    saved_sp: u64,
}

struct FastMachine<'p> {
    prog: &'p Program,
    dec: &'p DecodedProgram,
    cfg: InterpConfig,
    mem: TaggedMemory,
    heap: RevokingHeap,
    frames: Vec<FastFrame>,
    regs: Vec<Value>,
    taints: Vec<u64>,
    sp: u64,
    stack_cap: Capability,
    code_root: Capability,
    data_root: Capability,
    retired: u64,
    classes: ClassCounts,
    load_seq: u64,
    exit: Option<u64>,
    cap_abi: bool,
    pcc_branches: bool,
    /// Register base of the executing frame, synced from the block
    /// loop before each block so handlers (free fns, no extra args)
    /// can reach it.
    rb: usize,
    /// Index of the executing function, synced like `rb` — only needed
    /// for fault messages.
    fi: usize,
    /// Error parked by a dying handler; the block loop takes it.
    err: Option<InterpError>,
    /// Block-scoped event buffer for sinks with
    /// [`EventSink::WANTS_BLOCK_EVENTS`]; flushed at block boundaries.
    evbuf: Vec<(RetiredEvent, OpClass)>,
    /// Deferred class accounting: executions per global block id
    /// (`block_base + local index`). The block loop bumps one counter
    /// per block instead of eight class adds; run end folds
    /// `count × blk.classes` into [`FastMachine::classes`].
    block_execs: Vec<u64>,
}

/// Emits one retired event with its pre-computed class: bumps the
/// architectural counters and hands the sink the class so classifying
/// sinks skip `OpClass::of`. Debug builds verify the hint.
macro_rules! femit {
    ($self:ident, $sink:ident, $pc:expr, $class:expr, $info:expr) => {{
        let pc = $pc;
        let info = $info;
        let class = $class;
        debug_assert_eq!(class, OpClass::of(pc, &info), "pre-computed class mismatch");
        $self.retired += 1;
        $self.classes.bump(class);
        $sink.retire_classified(RetiredEvent { pc, info }, class);
    }};
}

impl<'p> FastMachine<'p> {
    fn new(prog: &'p Program, dec: &'p DecodedProgram, cfg: InterpConfig) -> FastMachine<'p> {
        let cap_abi = prog.abi.is_capability();
        let kind = if cap_abi {
            match cfg.cap_alloc {
                // Capability ABIs need representable bounds: classic
                // layout would hand out unencodable large blocks.
                StrategyKind::Classic => StrategyKind::CapabilityPadded,
                k => k,
            }
        } else {
            StrategyKind::Classic
        };
        let (heap_lo, heap_hi) = prog.map.heap;
        let heap = RevokingHeap::new(heap_lo + (1 << 20), heap_hi, heap_lo + (1 << 19), kind);
        let stack_base = prog.map.stack_top - STACK_SIZE;
        let stack_cap = Capability::root_rw()
            .set_bounds(stack_base, STACK_SIZE)
            .expect("stack bounds representable");
        let RunArena {
            regs,
            taints,
            frames,
            evbuf,
            mut block_execs,
        } = acquire_arena();
        block_execs.resize(dec.total_blocks as usize, 0);
        FastMachine {
            prog,
            dec,
            cfg,
            mem: TaggedMemory::new(),
            heap,
            frames,
            regs,
            taints,
            sp: prog.map.stack_top,
            stack_cap,
            code_root: Capability::root_exec(),
            data_root: Capability::root_rw(),
            retired: 0,
            classes: ClassCounts::new(),
            load_seq: 0,
            exit: None,
            cap_abi,
            pcc_branches: prog.abi.capability_branches(),
            rb: 0,
            fi: 0,
            err: None,
            evbuf,
            block_execs,
        }
    }

    /// Returns this machine's grown buffers to the thread-local arena
    /// pool. Called once per run, success or failure.
    fn recycle(&mut self) {
        release_arena(RunArena {
            regs: std::mem::take(&mut self.regs),
            taints: std::mem::take(&mut self.taints),
            frames: std::mem::take(&mut self.frames),
            evbuf: std::mem::take(&mut self.evbuf),
            block_execs: std::mem::take(&mut self.block_execs),
        });
    }

    // ---- Value plumbing (flat-arena addressing) ---------------------------

    #[inline]
    fn as_int(&self, idx: usize, pc: u64) -> Result<u64, InterpError> {
        match self.regs[idx] {
            Value::Int(v) => Ok(v),
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "integer",
            }),
        }
    }

    #[inline]
    fn as_f64(&self, idx: usize, pc: u64) -> Result<f64, InterpError> {
        match self.regs[idx] {
            Value::F64(v) => Ok(v),
            Value::Int(0) => Ok(0.0), // zero-initialised registers
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "float",
            }),
        }
    }

    #[inline]
    fn as_cap(&self, idx: usize, pc: u64) -> Result<Capability, InterpError> {
        match self.regs[idx] {
            Value::Cap(c) => Ok(c),
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "capability",
            }),
        }
    }

    #[inline]
    fn operand_int(&self, rb: usize, op: Operand, pc: u64) -> Result<u64, InterpError> {
        match op {
            Operand::Reg(r) => self.as_int(rb + r as usize, pc),
            Operand::Imm(i) => Ok(i as u64),
        }
    }

    #[inline]
    fn operand_taint(&self, rb: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.taints[rb + r as usize],
            Operand::Imm(_) => 0,
        }
    }

    #[inline]
    fn cap_fault(&self, fault: CapFault, pc: u64, fi: usize) -> InterpError {
        InterpError::Fault {
            fault,
            pc,
            func: self.prog.funcs[fi].name.clone(),
        }
    }

    /// Resolves a memory operand to (effective address, authorising cap).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        rb: usize,
        fi: usize,
        base: u16,
        off: i64,
        size: u64,
        write: bool,
        cap_access: bool,
        pc: u64,
    ) -> Result<(u64, Option<Capability>), InterpError> {
        if self.cap_abi {
            let c = self.as_cap(rb + base as usize, pc)?;
            let addr = c.address().wrapping_add(off as u64);
            let mut req = if write { Perms::STORE } else { Perms::LOAD };
            if cap_access && write {
                req = req | Perms::STORE_CAP;
            }
            c.check_access(addr, size, req)
                .map_err(|fault| self.cap_fault(fault, pc, fi))?;
            Ok((addr, Some(c)))
        } else {
            let b = self.as_int(rb + base as usize, pc)?;
            Ok((b.wrapping_add(off as u64), None))
        }
    }

    /// `resolve` specialised on the ABI at compile time for the
    /// handler table: the `cap_abi` test disappears, and the frame
    /// base/function index come from the block-loop-synced fields.
    #[inline]
    fn resolve_c<const CAP: bool>(
        &self,
        base: u16,
        off: i64,
        size: u64,
        write: bool,
        cap_access: bool,
        pc: u64,
    ) -> Result<(u64, Option<Capability>), InterpError> {
        debug_assert_eq!(self.cap_abi, CAP, "handler table built for the wrong ABI");
        if CAP {
            let c = self.as_cap(self.rb + base as usize, pc)?;
            let addr = c.address().wrapping_add(off as u64);
            let mut req = if write { Perms::STORE } else { Perms::LOAD };
            if cap_access && write {
                req = req | Perms::STORE_CAP;
            }
            c.check_access(addr, size, req)
                .map_err(|fault| self.cap_fault(fault, pc, self.fi))?;
            Ok((addr, Some(c)))
        } else {
            let b = self.as_int(self.rb + base as usize, pc)?;
            Ok((b.wrapping_add(off as u64), None))
        }
    }

    /// Block-interior event emission: no `retired`/`classes` bump
    /// (those are folded in once per block from the pre-summed totals)
    /// and, for batching sinks, buffered delivery. Per-event *order* is
    /// identical to `femit!` either way.
    #[inline]
    fn iemit<S: EventSink>(&mut self, sink: &mut S, pc: u64, class: OpClass, info: RetiredInfo) {
        debug_assert_eq!(class, OpClass::of(pc, &info), "pre-computed class mismatch");
        let ev = RetiredEvent { pc, info };
        if S::WANTS_BLOCK_EVENTS {
            self.evbuf.push((ev, class));
        } else {
            sink.retire_classified(ev, class);
        }
    }

    #[inline]
    fn dep_load(&self, base_taint: u64) -> bool {
        base_taint != 0 && self.load_seq.saturating_sub(base_taint) <= self.cfg.dep_window
    }

    // ---- Frame plumbing ---------------------------------------------------

    /// Pushes a frame for `callee`: depth/arity checks, the call-site
    /// branch event (`None` for the entry frame), the synthetic
    /// prologue (SP adjust + return-address save), and fresh registers
    /// in the flat arenas. Returns the new frame's register base.
    /// `branch` is `(call_pc, kind, target, pcc_change)`.
    #[allow(clippy::too_many_arguments)]
    fn enter_frame<S: EventSink>(
        &mut self,
        sink: &mut S,
        callee: u32,
        caller_args: Option<(usize, ArgsRef)>,
        ret_reg: Option<u16>,
        ret_ip: u32,
        branch: Option<(u64, BranchKind, u64, bool)>,
        call_pc: u64,
    ) -> Result<usize, InterpError> {
        if self.frames.len() as u32 >= self.cfg.max_call_depth {
            return Err(InterpError::CallDepth { pc: call_pc });
        }
        let dec = self.dec;
        let f = &dec.funcs[callee as usize];
        let n_args = caller_args.map_or(0, |(_, a)| a.len);
        if n_args != f.params {
            return Err(InterpError::BadProgram {
                msg: format!(
                    "call to `{}` with {} args (expects {})",
                    self.prog.funcs[callee as usize].name, n_args, f.params
                ),
            });
        }
        let mut ret_pc = 0;
        if let Some((pc, kind, target, pcc_change)) = branch {
            ret_pc = pc + 4;
            femit!(
                self,
                sink,
                pc,
                if pcc_change {
                    OpClass::CapBranch
                } else {
                    OpClass::Branch
                },
                RetiredInfo::Branch {
                    kind,
                    taken: true,
                    target,
                    pcc_change,
                }
            );
        }

        // Prologue: SP adjust + return-address save.
        let saved_sp = self.sp;
        let new_sp = self.sp - (f.frame_size + SAVE_AREA);
        self.sp = new_sp;
        let base_pc = f.base_pc;
        if self.cap_abi {
            femit!(
                self,
                sink,
                base_pc,
                OpClass::CapManip,
                RetiredInfo::CapManip
            );
        } else {
            femit!(
                self,
                sink,
                base_pc,
                OpClass::IntAlu,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let lr_addr = new_sp + f.frame_size;
        if self.cap_abi {
            // Save the return address as a capability into the caller.
            let ret_cap = self.code_root.set_address(ret_pc);
            self.mem
                .store_cap(lr_addr & !15, ret_cap.to_compressed(), true)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            femit!(
                self,
                sink,
                base_pc + 4,
                OpClass::MemCap,
                RetiredInfo::Store {
                    addr: lr_addr & !15,
                    size: 16,
                    is_cap: true,
                }
            );
        } else {
            self.mem
                .write_u64(lr_addr, ret_pc)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            femit!(
                self,
                sink,
                base_pc + 4,
                OpClass::MemScalar,
                RetiredInfo::Store {
                    addr: lr_addr,
                    size: 8,
                    is_cap: false,
                }
            );
        }

        let new_base = self.regs.len();
        self.regs.resize(new_base + f.vregs as usize, Value::Int(0));
        self.taints.resize(new_base + f.vregs as usize, 0);
        self.regs[new_base] = if self.cap_abi {
            Value::Cap(self.stack_cap.set_address(new_sp))
        } else {
            Value::Int(new_sp)
        };
        if let Some((caller_rb, args)) = caller_args {
            for k in 0..args.len as usize {
                let src = dec.args[args.start as usize + k];
                self.regs[new_base + 1 + k] = self.regs[caller_rb + src as usize];
            }
        }
        self.frames.push(FastFrame {
            func: callee,
            reg_base: new_base as u32,
            ret_reg,
            ret_ip,
            saved_sp,
        });
        Ok(new_base)
    }

    // ---- The dispatch loop ------------------------------------------------

    fn exec<S: EventSink>(&mut self, sink: &mut S) -> Result<RunResult, InterpError> {
        let prog = self.prog;
        let dec = self.dec;
        let entry = prog.entry.0;
        if dec.funcs[entry as usize].params != 0 {
            return Err(InterpError::BadProgram {
                msg: format!(
                    "entry `{}` must take no parameters",
                    prog.funcs[entry as usize].name
                ),
            });
        }
        // The entry frame: no call-site branch event, return address 0.
        self.enter_frame(sink, entry, None, None, 0, None, 0)?;
        let mut fi = entry as usize;
        let mut ip = 0usize;
        let mut rb = 0usize;
        self.exec_blocks(sink, &mut fi, &mut ip, &mut rb)?;
        // Fold the deferred per-block execution counts into the class
        // totals. Addition is commutative, so the fold is
        // order-insensitive and exactly matches per-op accumulation;
        // error exits skip it because a failed run reports no counts.
        for fun in dec.funcs.iter() {
            let base = fun.block_base as usize;
            for (b, cls) in fun.block_classes.iter().enumerate() {
                let k = self.block_execs[base + b];
                if k > 0 {
                    self.classes.add_scaled(cls, k);
                }
            }
        }
        Ok(RunResult {
            retired: self.retired,
            exit_code: self.exit.unwrap_or(0),
            mem_stats: self.mem.stats(),
            heap_stats: self.heap.stats(),
            pages_touched: self.mem.pages_touched(),
            classes: self.classes,
        })
    }

    /// The direct-threaded superblock loop.
    ///
    /// Invariant (established by [`crate::decoded::build_blocks`] and
    /// every control transfer in [`FastMachine::step`]): `*ip` is
    /// always a block leader. Each iteration runs one block: a single
    /// up-front fuel-margin check covers every interior op (exactly the
    /// per-op checks of the reference — `retired + n <= max` iff all
    /// `n` per-op checks pass), then the interiors dispatch through the
    /// per-ABI fn-pointer table with no discriminant match and no
    /// per-op bookkeeping, then `retired` absorbs the block's op count,
    /// the block's execution counter bumps (its pre-summed classes fold
    /// in at run end), buffered events flush, and finally the
    /// terminator (if any) runs through [`FastMachine::step`] under the
    /// reference's own fuel check. If the margin check fails — fuel
    /// would die *inside* the block — the remainder of the run is
    /// delegated to [`FastMachine::exec_slow`] so the exhaustion point
    /// (and any event before it) is bit-exact.
    fn exec_blocks<S: EventSink>(
        &mut self,
        sink: &mut S,
        fi: &mut usize,
        ip: &mut usize,
        rb: &mut usize,
    ) -> Result<(), InterpError> {
        let dec = self.dec;
        let table = handler_table::<S>(self.cap_abi);
        let max = self.cfg.max_insts;
        // All loop state lives in true locals (the seed engine's layout
        // — `&mut` params would force memory traffic every iteration);
        // the params sync only around `step`/`exec_slow`, which can
        // change them. `fun`/`bidx` chain block-to-block without
        // touching `block_idx`: fallthrough and not-taken paths are the
        // next block in start-ip order, taken branches use the
        // pre-resolved `t_blk`, and only the general `step` path
        // re-derives them.
        let mut lfi = *fi;
        let mut lip = *ip;
        let mut lrb = *rb;
        let mut fun: &DecodedFunc = &dec.funcs[lfi];
        let mut bidx = fun.block_idx[lip] as usize;
        while self.exit.is_none() {
            let blk = &fun.blocks[bidx];
            debug_assert_eq!(
                blk.start_ip as usize, lip,
                "control transfer into a superblock interior"
            );
            let n = u64::from(blk.n);
            if n > 0 {
                if self.retired.saturating_add(n) > max {
                    *fi = lfi;
                    *ip = lip;
                    *rb = lrb;
                    return self.exec_slow(sink, fi, ip, rb);
                }
                self.rb = lrb;
                self.fi = lfi;
                let micros = &fun.micros[blk.first as usize..(blk.first + blk.n) as usize];
                for mo in micros {
                    if let Ctl::Die = table[mo.kind as usize](self, sink, mo) {
                        self.flush_events(sink);
                        return Err(self.err.take().expect("handler died without an error"));
                    }
                }
                self.retired += n;
                // Deferred class accounting: one counter bump here, the
                // pre-summed per-block classes fold in at run end.
                self.block_execs[fun.block_base as usize + bidx] += 1;
                self.flush_events(sink);
            }
            if blk.term == NO_TERM {
                // Fallthrough into the next block (its entry re-checks
                // fuel), so no terminator work here. Blocks tile the
                // function in start-ip order, so it is `bidx + 1`.
                lip += blk.n as usize;
                bidx += 1;
            } else {
                lip = blk.term as usize;
                if self.retired >= max {
                    return Err(InterpError::FuelExhausted {
                        retired: self.retired,
                    });
                }
                // In-loop fast paths for the two hottest terminators;
                // everything else (calls, returns, intrinsics, markers)
                // runs the general per-op step. Bodies mirror the
                // `step` arms exactly.
                match fun.ops[blk.term as usize] {
                    Op::Jump { t_ip, t_pc } => {
                        let pc = fun.base_pc + u64::from(blk.term) * 4;
                        femit!(
                            self,
                            sink,
                            pc,
                            OpClass::Branch,
                            RetiredInfo::Branch {
                                kind: BranchKind::Immediate,
                                taken: true,
                                target: t_pc,
                                pcc_change: false,
                            }
                        );
                        lip = t_ip as usize;
                        bidx = blk.t_blk as usize;
                    }
                    Op::CondBr {
                        cond,
                        a,
                        b,
                        t_ip,
                        t_pc,
                    } => {
                        let pc = fun.base_pc + u64::from(blk.term) * 4;
                        let av = self.as_int(lrb + a as usize, pc)?;
                        let bv = self.operand_int(lrb, b, pc)?;
                        let taken = cond.eval(av, bv);
                        femit!(
                            self,
                            sink,
                            pc,
                            OpClass::Branch,
                            RetiredInfo::Branch {
                                kind: BranchKind::Immediate,
                                taken,
                                target: t_pc,
                                pcc_change: false,
                            }
                        );
                        if taken {
                            lip = t_ip as usize;
                            bidx = blk.t_blk as usize;
                        } else {
                            lip = blk.term as usize + 1;
                            bidx += 1;
                        }
                    }
                    _ => {
                        *fi = lfi;
                        *ip = lip;
                        *rb = lrb;
                        self.step(sink, fi, ip, rb)?;
                        lfi = *fi;
                        lip = *ip;
                        lrb = *rb;
                        // On halt `lip` may point past the function;
                        // the loop exits without another block lookup.
                        if self.exit.is_none() {
                            fun = &dec.funcs[lfi];
                            bidx = fun.block_idx[lip] as usize;
                        }
                    }
                }
            }
        }
        *fi = lfi;
        *ip = lip;
        *rb = lrb;
        Ok(())
    }

    /// Flushes block-buffered events to a batching sink. A no-op (and
    /// dead code, compiled out) for sinks that keep the default per-op
    /// delivery.
    #[inline]
    fn flush_events<S: EventSink>(&mut self, sink: &mut S) {
        if S::WANTS_BLOCK_EVENTS && !self.evbuf.is_empty() {
            sink.retire_block_classified(&self.evbuf);
            self.evbuf.clear();
        }
    }

    /// The reference-shaped per-op loop: fuel check before every op,
    /// one [`FastMachine::step`] per iteration. The block engine
    /// delegates the remainder of a run here when fuel would die inside
    /// a block, so `FuelExhausted { retired }` carries the exact count
    /// the reference would report.
    #[cold]
    fn exec_slow<S: EventSink>(
        &mut self,
        sink: &mut S,
        fi: &mut usize,
        ip: &mut usize,
        rb: &mut usize,
    ) -> Result<(), InterpError> {
        while self.exit.is_none() {
            if self.retired >= self.cfg.max_insts {
                return Err(InterpError::FuelExhausted {
                    retired: self.retired,
                });
            }
            self.step(sink, fi, ip, rb)?;
        }
        Ok(())
    }

    /// Executes exactly one op — the original per-op engine, kept
    /// verbatim. The block loop routes terminators (and demoted
    /// interiors) here; `exec_slow` runs everything here. Control state
    /// lives behind `&mut` so both callers observe transfers. Inlined
    /// so the block loop's call/return terminators don't pay an
    /// outlined call with its loop-state spills.
    #[inline]
    fn step<S: EventSink>(
        &mut self,
        sink: &mut S,
        fi_r: &mut usize,
        ip_r: &mut usize,
        rb_r: &mut usize,
    ) -> Result<(), InterpError> {
        let dec = self.dec;
        let mut fi = *fi_r;
        let mut ip = *ip_r;
        let mut rb = *rb_r;
        let fun: &DecodedFunc = &dec.funcs[fi];
        debug_assert!(ip < fun.ops.len(), "fell off function {fi}");
        let pc = fun.base_pc + (ip as u64) * 4;
        match fun.ops[ip] {
            Op::MovImm { dst, imm } => {
                self.regs[rb + dst as usize] = Value::Int(imm);
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::MovF64 { dst, imm } => {
                self.regs[rb + dst as usize] = Value::F64(imm);
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::Mov { dst, src } => {
                self.regs[rb + dst as usize] = self.regs[rb + src as usize];
                self.taints[rb + dst as usize] = self.taints[rb + src as usize];
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::IntAlu { op, dst, a, b, ll } => {
                let av = self.as_int(rb + a as usize, pc)?;
                let bv = self.operand_int(rb, b, pc)?;
                let r = eval_int_op(op, av, bv);
                let t = self.taints[rb + a as usize].max(self.operand_taint(rb, b));
                self.regs[rb + dst as usize] = Value::Int(r);
                self.taints[rb + dst as usize] = t;
                let info = if ll == 0 {
                    RetiredInfo::Simple(InstClass::Dp)
                } else {
                    RetiredInfo::LongLatency {
                        class: InstClass::Dp,
                        extra: ll,
                    }
                };
                femit!(self, sink, pc, OpClass::IntAlu, info);
                ip += 1;
            }
            Op::Madd { dst, a, b, c } => {
                let r = self
                    .as_int(rb + a as usize, pc)?
                    .wrapping_mul(self.as_int(rb + b as usize, pc)?)
                    .wrapping_add(self.as_int(rb + c as usize, pc)?);
                let t = self.taints[rb + a as usize]
                    .max(self.taints[rb + b as usize])
                    .max(self.taints[rb + c as usize]);
                self.regs[rb + dst as usize] = Value::Int(r);
                self.taints[rb + dst as usize] = t;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::LongLatency {
                        class: InstClass::Dp,
                        extra: 1,
                    }
                );
                ip += 1;
            }
            Op::FloatAlu { op, dst, a, b, ll } => {
                let r = eval_float_op(
                    op,
                    self.as_f64(rb + a as usize, pc)?,
                    self.as_f64(rb + b as usize, pc)?,
                );
                self.regs[rb + dst as usize] = Value::F64(r);
                self.taints[rb + dst as usize] = 0;
                let info = if ll == 0 {
                    RetiredInfo::Simple(InstClass::Vfp)
                } else {
                    RetiredInfo::LongLatency {
                        class: InstClass::Vfp,
                        extra: ll,
                    }
                };
                femit!(self, sink, pc, OpClass::IntAlu, info);
                ip += 1;
            }
            Op::FMadd { dst, a, b, c } => {
                let r = self.as_f64(rb + a as usize, pc)?.mul_add(
                    self.as_f64(rb + b as usize, pc)?,
                    self.as_f64(rb + c as usize, pc)?,
                );
                self.regs[rb + dst as usize] = Value::F64(r);
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Vfp)
                );
                ip += 1;
            }
            Op::FCmp { cond, dst, a, b } => {
                let av = self.as_f64(rb + a as usize, pc)?;
                let bv = self.as_f64(rb + b as usize, pc)?;
                let r = match cond {
                    Cond::Eq => av == bv,
                    Cond::Ne => av != bv,
                    Cond::Ltu | Cond::Lts => av < bv,
                    Cond::Leu => av <= bv,
                    Cond::Gtu | Cond::Gts => av > bv,
                    Cond::Geu => av >= bv,
                };
                self.regs[rb + dst as usize] = Value::Int(u64::from(r));
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Vfp)
                );
                ip += 1;
            }
            Op::Vec { op, dst, a, b } => {
                match op {
                    VecKind::VAdd => {
                        let r =
                            self.as_f64(rb + a as usize, pc)? + self.as_f64(rb + b as usize, pc)?;
                        self.regs[rb + dst as usize] = Value::F64(r);
                    }
                    VecKind::VMul => {
                        let r =
                            self.as_f64(rb + a as usize, pc)? * self.as_f64(rb + b as usize, pc)?;
                        self.regs[rb + dst as usize] = Value::F64(r);
                    }
                    VecKind::VFma => {
                        let acc = self.as_f64(rb + dst as usize, pc)?;
                        let r = self
                            .as_f64(rb + a as usize, pc)?
                            .mul_add(self.as_f64(rb + b as usize, pc)?, acc);
                        self.regs[rb + dst as usize] = Value::F64(r);
                    }
                    VecKind::VSad => {
                        let acc = self.as_int(rb + dst as usize, pc)?;
                        let av = self.as_int(rb + a as usize, pc)?;
                        let bv = self.as_int(rb + b as usize, pc)?;
                        self.regs[rb + dst as usize] =
                            Value::Int(acc.wrapping_add(av.abs_diff(bv)));
                    }
                }
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Ase)
                );
                ip += 1;
            }
            Op::Cvt { dst, src, to_int } => {
                if to_int {
                    let v = self.as_f64(rb + src as usize, pc)?;
                    self.regs[rb + dst as usize] = Value::Int(v as i64 as u64);
                } else {
                    let v = self.as_int(rb + src as usize, pc)?;
                    self.regs[rb + dst as usize] = Value::F64(v as i64 as f64);
                }
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Vfp)
                );
                ip += 1;
            }
            Op::LeaConst { dst, addr } => {
                self.regs[rb + dst as usize] = Value::Int(addr);
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::MovNullPtr { dst } => {
                self.regs[rb + dst as usize] = if self.cap_abi {
                    Value::Cap(Capability::null())
                } else {
                    Value::Int(0)
                };
                self.taints[rb + dst as usize] = 0;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::PtrAdd { dst, base, off } => {
                // Only reachable pre-lowering misuse; behaves as an
                // integer add and (like the reference) skips taint.
                let b = self.as_int(rb + base as usize, pc)?;
                let o = self.operand_int(rb, off, pc)?;
                self.regs[rb + dst as usize] = Value::Int(b.wrapping_add(o));
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::PtrToInt { dst, src } => {
                let r = match self.regs[rb + src as usize] {
                    Value::Int(i) => i,
                    Value::Cap(c) => c.address(),
                    Value::F64(_) => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "pointer",
                        })
                    }
                };
                self.regs[rb + dst as usize] = Value::Int(r);
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                ip += 1;
            }
            Op::BadGeneric => {
                return Err(InterpError::BadProgram {
                    msg: "pointer-generic memory op survived lowering".into(),
                });
            }
            Op::LoadCapTable { dst, addr, off } => {
                let (cc, tag) = self
                    .mem
                    .load_cap(addr)
                    .map_err(|err| InterpError::Mem { err, pc })?;
                let mut cap = Capability::from_compressed(cc, tag);
                if off != 0 {
                    cap = cap.inc_address(off);
                }
                self.load_seq += 1;
                let seq = self.load_seq;
                self.regs[rb + dst as usize] = Value::Cap(cap);
                self.taints[rb + dst as usize] = seq;
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::MemCap,
                    RetiredInfo::Load {
                        addr,
                        size: 16,
                        is_cap: true,
                        dep_load: false,
                    }
                );
                ip += 1;
            }
            Op::Load {
                dst,
                base,
                off,
                size,
                kind,
                bytes,
            } => {
                let (off_v, off_taint) = match off {
                    Off::Imm(i) => (i, 0),
                    Off::Reg(r) => (
                        self.as_int(rb + r as usize, pc)? as i64,
                        self.taints[rb + r as usize],
                    ),
                    Off::RegScaled(r) => (
                        (self.as_int(rb + r as usize, pc)? as i64).wrapping_mul(bytes as i64),
                        self.taints[rb + r as usize],
                    ),
                };
                let (addr, auth) =
                    self.resolve(rb, fi, base, off_v, bytes as u64, false, false, pc)?;
                let base_taint = self.taints[rb + base as usize].max(off_taint);
                let dep = self.dep_load(base_taint);
                let v = match kind {
                    LoadKind::Int => {
                        let v = match size {
                            MemSize::S1 => self.mem.read_u8(addr).map(u64::from),
                            MemSize::S2 => self.mem.read_u16(addr).map(u64::from),
                            MemSize::S4 => self.mem.read_u32(addr).map(u64::from),
                            MemSize::S8 => self.mem.read_u64(addr),
                        }
                        .map_err(|err| InterpError::Mem { err, pc })?;
                        Value::Int(v)
                    }
                    LoadKind::F64 => {
                        let v = self
                            .mem
                            .read_u64(addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        Value::F64(f64::from_bits(v))
                    }
                    LoadKind::Cap => {
                        let (cc, mut tag) = self
                            .mem
                            .load_cap(addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        // Loading through a capability without
                        // LOAD_CAP strips the tag (Morello
                        // semantics).
                        if let Some(a) = auth {
                            if !a.perms().contains(Perms::LOAD_CAP) {
                                tag = false;
                            }
                        }
                        Value::Cap(Capability::from_compressed(cc, tag))
                    }
                };
                self.load_seq += 1;
                let seq = self.load_seq;
                self.regs[rb + dst as usize] = v;
                self.taints[rb + dst as usize] = seq;
                let is_cap = matches!(kind, LoadKind::Cap);
                femit!(
                    self,
                    sink,
                    pc,
                    if is_cap {
                        OpClass::MemCap
                    } else {
                        OpClass::MemScalar
                    },
                    RetiredInfo::Load {
                        addr,
                        size: bytes,
                        is_cap,
                        dep_load: dep,
                    }
                );
                ip += 1;
            }
            Op::Store {
                src,
                base,
                off,
                size,
                kind,
                bytes,
            } => {
                let off_v = match off {
                    Off::Imm(i) => i,
                    Off::Reg(r) => self.as_int(rb + r as usize, pc)? as i64,
                    Off::RegScaled(r) => {
                        (self.as_int(rb + r as usize, pc)? as i64).wrapping_mul(bytes as i64)
                    }
                };
                let is_cap = matches!(kind, LoadKind::Cap);
                let (addr, _auth) =
                    self.resolve(rb, fi, base, off_v, bytes as u64, true, is_cap, pc)?;
                match kind {
                    LoadKind::Int => {
                        let v = self.as_int(rb + src as usize, pc)?;
                        match size {
                            MemSize::S1 => self.mem.write_u8(addr, v as u8),
                            MemSize::S2 => self.mem.write_u16(addr, v as u16),
                            MemSize::S4 => self.mem.write_u32(addr, v as u32),
                            MemSize::S8 => self.mem.write_u64(addr, v),
                        }
                        .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                    LoadKind::F64 => {
                        let v = self.as_f64(rb + src as usize, pc)?;
                        self.mem
                            .write_u64(addr, v.to_bits())
                            .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                    LoadKind::Cap => {
                        let c = self.as_cap(rb + src as usize, pc)?;
                        self.mem
                            .store_cap(addr, c.to_compressed(), c.tag())
                            .map_err(|err| InterpError::Mem { err, pc })?;
                    }
                }
                femit!(
                    self,
                    sink,
                    pc,
                    if is_cap {
                        OpClass::MemCap
                    } else {
                        OpClass::MemScalar
                    },
                    RetiredInfo::Store {
                        addr,
                        size: bytes,
                        is_cap,
                    }
                );
                ip += 1;
            }
            Op::Jump { t_ip, t_pc } => {
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Branch,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken: true,
                        target: t_pc,
                        pcc_change: false,
                    }
                );
                ip = t_ip as usize;
            }
            Op::CondBr {
                cond,
                a,
                b,
                t_ip,
                t_pc,
            } => {
                let av = self.as_int(rb + a as usize, pc)?;
                let bv = self.operand_int(rb, b, pc)?;
                let taken = cond.eval(av, bv);
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Branch,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken,
                        target: t_pc,
                        pcc_change: false,
                    }
                );
                ip = if taken { t_ip as usize } else { ip + 1 };
            }
            Op::Call {
                callee,
                args,
                ret,
                pcc_change,
            } => {
                let target = dec.funcs[callee as usize].base_pc;
                rb = self.enter_frame(
                    sink,
                    callee,
                    Some((rb, args)),
                    ret,
                    (ip + 1) as u32,
                    Some((pc, BranchKind::Call, target, pcc_change)),
                    pc,
                )?;
                fi = callee as usize;
                ip = 0;
            }
            Op::CallIndirect { target, args, ret } => {
                let taddr = match self.regs[rb + target as usize] {
                    Value::Int(a) if !self.cap_abi => a,
                    Value::Cap(c) if self.cap_abi => {
                        c.check_branch()
                            .map_err(|fault| self.cap_fault(fault, pc, fi))?;
                        c.address()
                    }
                    _ => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "function pointer",
                        })
                    }
                };
                let callee = self
                    .prog
                    .map
                    .func_at(taddr)
                    .ok_or(InterpError::UnknownCode { addr: taddr, pc })?;
                let pcc_change = self.pcc_branches
                    && dec.funcs[callee.0 as usize].module != dec.funcs[fi].module;
                rb = self.enter_frame(
                    sink,
                    callee.0,
                    Some((rb, args)),
                    ret,
                    (ip + 1) as u32,
                    Some((pc, BranchKind::IndirectCall, taddr, pcc_change)),
                    pc,
                )?;
                fi = callee.0 as usize;
                ip = 0;
            }
            Op::Ret { val } => {
                let v = val.map(|r| self.regs[rb + r as usize]);
                let fr = self.frames.pop().expect("no frame");
                let fun = &dec.funcs[fi];
                let lr_addr = (self.sp + fun.frame_size) & if self.cap_abi { !15 } else { !0 };

                // Epilogue: LR reload + SP adjust + return branch.
                femit!(
                    self,
                    sink,
                    pc,
                    if self.cap_abi {
                        OpClass::MemCap
                    } else {
                        OpClass::MemScalar
                    },
                    RetiredInfo::Load {
                        addr: lr_addr,
                        size: if self.cap_abi { 16 } else { 8 },
                        is_cap: self.cap_abi,
                        dep_load: false,
                    }
                );
                if self.cap_abi {
                    self.mem
                        .load_cap(lr_addr)
                        .map_err(|err| InterpError::Mem { err, pc })?;
                    femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                } else {
                    self.mem
                        .read_u64(lr_addr)
                        .map_err(|err| InterpError::Mem { err, pc })?;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                }
                self.sp = fr.saved_sp;

                match self.frames.last() {
                    Some(caller) => {
                        let caller_fun = &dec.funcs[caller.func as usize];
                        let ret_target = caller_fun.base_pc + u64::from(fr.ret_ip) * 4;
                        let pcc_change = self.pcc_branches && caller_fun.module != fun.module;
                        let caller_rb = caller.reg_base as usize;
                        let caller_func = caller.func as usize;
                        if let (Some(r), Some(v)) = (fr.ret_reg, v) {
                            // Return values inherit "recently loaded"
                            // status conservatively: cleared.
                            self.regs[caller_rb + r as usize] = v;
                            self.taints[caller_rb + r as usize] = 0;
                        }
                        femit!(
                            self,
                            sink,
                            pc,
                            if pcc_change {
                                OpClass::CapBranch
                            } else {
                                OpClass::Branch
                            },
                            RetiredInfo::Branch {
                                kind: BranchKind::Return,
                                taken: true,
                                target: ret_target,
                                pcc_change,
                            }
                        );
                        self.regs.truncate(fr.reg_base as usize);
                        self.taints.truncate(fr.reg_base as usize);
                        fi = caller_func;
                        ip = fr.ret_ip as usize;
                        rb = caller_rb;
                    }
                    None => {
                        // Returning from the entry function ends the
                        // program.
                        let code = match v {
                            Some(Value::Int(v)) => v,
                            _ => 0,
                        };
                        self.exit = Some(code);
                    }
                }
            }
            Op::Malloc { dst, size } => {
                let sz = self.operand_int(rb, size, pc)?;
                self.run_malloc(rb + dst as usize, sz, pc, sink)?;
                ip += 1;
            }
            Op::Free { ptr } => {
                let addr = match self.regs[rb + ptr as usize] {
                    Value::Int(a) => a,
                    Value::Cap(c) => c.address(),
                    Value::F64(_) => {
                        return Err(InterpError::TypeConfusion {
                            pc,
                            expected: "pointer",
                        })
                    }
                };
                self.run_free(addr, pc, sink)?;
                ip += 1;
            }
            Op::CapOp { op, dst, a, b } => {
                let a_idx = rb + a as usize;
                let a_taint = self.taints[a_idx];
                let result: Value = match op {
                    CapOpKind::IncOffset => {
                        let c = self.as_cap(a_idx, pc)?;
                        let d = self.operand_int(rb, b, pc)? as i64;
                        Value::Cap(c.inc_address(d))
                    }
                    CapOpKind::SetAddr => {
                        let c = self.as_cap(a_idx, pc)?;
                        let addr = self.operand_int(rb, b, pc)?;
                        Value::Cap(c.set_address(addr))
                    }
                    CapOpKind::SetBounds => {
                        let c = self.as_cap(a_idx, pc)?;
                        let len = self.operand_int(rb, b, pc)?;
                        Value::Cap(
                            c.set_bounds(c.address(), len)
                                .map_err(|f| self.cap_fault(f, pc, fi))?,
                        )
                    }
                    CapOpKind::SetBoundsExact => {
                        let c = self.as_cap(a_idx, pc)?;
                        let len = self.operand_int(rb, b, pc)?;
                        Value::Cap(
                            c.set_bounds_exact(c.address(), len)
                                .map_err(|f| self.cap_fault(f, pc, fi))?,
                        )
                    }
                    CapOpKind::GetAddr => Value::Int(self.as_cap(a_idx, pc)?.address()),
                    CapOpKind::GetLen => Value::Int(self.as_cap(a_idx, pc)?.length()),
                    CapOpKind::GetBase => Value::Int(self.as_cap(a_idx, pc)?.base()),
                    CapOpKind::GetTag => Value::Int(u64::from(self.as_cap(a_idx, pc)?.tag())),
                    CapOpKind::AndPerm => {
                        let c = self.as_cap(a_idx, pc)?;
                        let mask = Perms::from_bits_truncate(self.operand_int(rb, b, pc)? as u32);
                        Value::Cap(c.and_perms(mask).map_err(|f| self.cap_fault(f, pc, fi))?)
                    }
                    CapOpKind::SealEntry => {
                        let c = self.as_cap(a_idx, pc)?;
                        Value::Cap(c.seal_sentry().map_err(|f| self.cap_fault(f, pc, fi))?)
                    }
                    CapOpKind::ClearTag => Value::Cap(self.as_cap(a_idx, pc)?.clear_tag()),
                };
                self.regs[rb + dst as usize] = result;
                self.taints[rb + dst as usize] = a_taint;
                femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                ip += 1;
            }
            Op::CapOp2 { op, a, auth, dst } => {
                let av = self.as_cap(rb + a as usize, pc)?;
                let authv = self.as_cap(rb + auth as usize, pc)?;
                let r = match op {
                    CapOp2Kind::Seal => av.seal(&authv).map_err(|f| self.cap_fault(f, pc, fi))?,
                    CapOp2Kind::Unseal => {
                        av.unseal(&authv).map_err(|f| self.cap_fault(f, pc, fi))?
                    }
                };
                let t = self.taints[rb + a as usize];
                self.regs[rb + dst as usize] = Value::Cap(r);
                self.taints[rb + dst as usize] = t;
                femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                ip += 1;
            }
            Op::Halt { code } => {
                let c = match code {
                    Some(r) => self.as_int(rb + r as usize, pc)?,
                    None => 0,
                };
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::IntAlu,
                    RetiredInfo::Simple(InstClass::Dp)
                );
                self.exit = Some(c);
            }
            // Profiling marker: no retired instruction, no cycles —
            // just tell the sink the attribution context changed.
            Op::Region { id } => {
                sink.region(id);
                ip += 1;
            }
        }
        *fi_r = fi;
        *ip_r = ip;
        *rb_r = rb;
        Ok(())
    }

    // ---- Runtime intrinsics (same synthetic streams as the reference) -----

    fn run_malloc<S: EventSink>(
        &mut self,
        dst_idx: usize,
        size: u64,
        pc: u64,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        // Same-bounds PLT stub: no PCC resteer (see the reference for
        // the Morello rationale).
        let pcc = false;
        femit!(
            self,
            sink,
            pc,
            OpClass::Branch,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_MALLOC_PC,
                pcc_change: pcc,
            }
        );
        let alloc = self
            .heap
            .malloc(size)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;

        let class = HeapAllocator::size_class(size);
        let meta = self.prog.map.heap.0 + (class / 16 % META_LINES) * 64;
        for i in 0..14u64 {
            femit!(
                self,
                sink,
                RT_MALLOC_PC + i * 4,
                OpClass::Runtime,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 56,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 60,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: true,
            }
        );
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 64,
            OpClass::Runtime,
            RetiredInfo::Store {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            for i in 0..10u64 {
                femit!(
                    self,
                    sink,
                    RT_MALLOC_PC + 68 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::CapManip
                );
            }
            for i in 0..26u64 {
                femit!(
                    self,
                    sink,
                    RT_MALLOC_PC + 108 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 156,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: meta + 32,
                    size: 16,
                    is_cap: true,
                }
            );
            let revbm = self.prog.map.heap.0 + (1 << 19) + (alloc.addr >> 10 & 0x3FFFF);
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 160,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 164,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                    dep_load: true,
                }
            );
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 168,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            let cap = self
                .data_root
                .set_bounds_exact(alloc.addr, alloc.padded)
                .expect("allocator guarantees representable bounds");
            self.regs[dst_idx] = Value::Cap(cap);
        } else {
            self.regs[dst_idx] = Value::Int(alloc.addr);
        }
        self.taints[dst_idx] = 0;
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 92,
            OpClass::Runtime,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    fn run_free<S: EventSink>(
        &mut self,
        addr: u64,
        pc: u64,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        let pcc = false; // see run_malloc
        femit!(
            self,
            sink,
            pc,
            OpClass::Branch,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_FREE_PC,
                pcc_change: pcc,
            }
        );
        let outcome = self
            .heap
            .free(&mut self.mem, addr)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;
        for i in 0..8u64 {
            femit!(
                self,
                sink,
                RT_FREE_PC + i * 4,
                OpClass::Runtime,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        let meta = self.prog.map.heap.0 + (addr / 64 % META_LINES) * 64;
        femit!(
            self,
            sink,
            RT_FREE_PC + 32,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        femit!(
            self,
            sink,
            RT_FREE_PC + 36,
            OpClass::Runtime,
            RetiredInfo::Store {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            for i in 0..4u64 {
                femit!(
                    self,
                    sink,
                    RT_FREE_PC + 40 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::CapManip
                );
            }
            for i in 0..6u64 {
                femit!(
                    self,
                    sink,
                    RT_FREE_PC + 56 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            let revbm = self.prog.map.heap.0 + (1 << 19) + (addr >> 10 & 0x3FFFF);
            femit!(
                self,
                sink,
                RT_FREE_PC + 80,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            femit!(
                self,
                sink,
                RT_FREE_PC + 84,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            femit!(
                self,
                sink,
                RT_FREE_PC + 88,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                }
            );
        }
        if let Some(sweep) = outcome.sweep {
            self.emit_sweep(&sweep, sink);
        }
        femit!(
            self,
            sink,
            RT_FREE_PC + 48,
            OpClass::Runtime,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    fn emit_sweep<S: EventSink>(&mut self, sweep: &SweepOutcome, sink: &mut S) {
        for i in 0..4u64 {
            femit!(
                self,
                sink,
                RT_SWEEP_PC + i * 4,
                OpClass::Meta,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let mut page_boundary = 0u64;
        for (i, acc) in sweep.accesses.iter().enumerate() {
            let pc = RT_SWEEP_PC + 16 + (i as u64 % 48) * 4;
            if acc.write {
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Meta,
                    RetiredInfo::Store {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                    }
                );
            } else {
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Meta,
                    RetiredInfo::Load {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                        dep_load: false,
                    }
                );
            }
            femit!(
                self,
                sink,
                pc + 4,
                OpClass::Meta,
                RetiredInfo::Simple(InstClass::Dp)
            );
            if acc.addr >> 12 != page_boundary {
                page_boundary = acc.addr >> 12;
                femit!(
                    self,
                    sink,
                    RT_SWEEP_PC + 16 + 49 * 4,
                    OpClass::Meta,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken: true,
                        target: RT_SWEEP_PC + 16,
                        pcc_change: false,
                    }
                );
            }
        }
    }
}

// ---- Direct-threaded interior handlers -------------------------------------
//
// One free function per micro-op kind (see `decoded::mk`), fully
// specialised: no operand-form, size, or sub-op `match` survives inside
// a handler — `eval_int_op`/`eval_float_op` are called with constant
// ops so their internal dispatch const-folds away. Handlers read the
// frame base and function index from the block-loop-synced
// `FastMachine::{rb, fi}` fields, report errors by parking them in
// `FastMachine::err` and returning `Ctl::Die`, and emit events through
// `FastMachine::iemit` (per-op bookkeeping is hoisted to the block
// boundary). Memory handlers and `MOV_NULL` are additionally
// monomorphised over the ABI (`const CAP: bool`).

/// Handler outcome: continue with the next interior op, or stop the
/// block because the op faulted (the error is in [`FastMachine::err`]).
enum Ctl {
    Next,
    Die,
}

/// A dispatch-table entry.
type Handler<S> = for<'a, 'b, 'c, 'p> fn(&'a mut FastMachine<'p>, &'b mut S, &'c MicroOp) -> Ctl;

/// Unwraps a `Result` inside a handler, converting `Err` into the
/// park-and-die protocol.
macro_rules! get {
    ($m:ident, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => {
                $m.err = Some(e);
                return Ctl::Die;
            }
        }
    };
}

/// Rebuilds the exact ALU event info from the packed long-latency byte.
#[inline(always)]
fn ll_info(class: InstClass, ll: u8) -> RetiredInfo {
    if ll == 0 {
        RetiredInfo::Simple(class)
    } else {
        RetiredInfo::LongLatency { class, extra: ll }
    }
}

/// Expands to the `(offset value, offset taint)` pair for a memory
/// handler's offset mode (`imm`/`reg`/`scl`), mirroring the `Off` match
/// of the per-op engine.
macro_rules! off_val {
    ($m:ident, $o:ident, imm) => {
        ($o.imm as i64, 0u64)
    };
    ($m:ident, $o:ident, reg) => {{
        let r = $m.rb + $o.b as usize;
        (get!($m, $m.as_int(r, $o.pc)) as i64, $m.taints[r])
    }};
    ($m:ident, $o:ident, scl) => {{
        let r = $m.rb + $o.b as usize;
        (
            (get!($m, $m.as_int(r, $o.pc)) as i64).wrapping_mul($o.sz as i64),
            $m.taints[r],
        )
    }};
}

fn h_bad_kind<S: EventSink>(_m: &mut FastMachine<'_>, _sink: &mut S, o: &MicroOp) -> Ctl {
    unreachable!("no handler for micro-op kind {} at pc {:#x}", o.kind, o.pc)
}

fn h_mov_imm<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::Int(o.imm);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_mov_f64<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::F64(f64::from_bits(o.imm));
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_mov<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let d = rb + o.dst as usize;
    m.regs[d] = m.regs[rb + o.a as usize];
    m.taints[d] = m.taints[rb + o.a as usize];
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

/// Defines the register-register / register-immediate handler pair for
/// one integer ALU op. The constant `$op` lets `eval_int_op`'s dispatch
/// const-fold into the single operation.
macro_rules! alu_h {
    ($rr:ident, $ri:ident, $op:expr) => {
        fn $rr<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
            let rb = m.rb;
            let av = get!(m, m.as_int(rb + o.a as usize, o.pc));
            let bv = get!(m, m.as_int(rb + o.b as usize, o.pc));
            let t = m.taints[rb + o.a as usize].max(m.taints[rb + o.b as usize]);
            let d = rb + o.dst as usize;
            m.regs[d] = Value::Int(eval_int_op($op, av, bv));
            m.taints[d] = t;
            m.iemit(sink, o.pc, OpClass::IntAlu, ll_info(InstClass::Dp, o.sz));
            Ctl::Next
        }
        fn $ri<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
            let rb = m.rb;
            let av = get!(m, m.as_int(rb + o.a as usize, o.pc));
            let t = m.taints[rb + o.a as usize];
            let d = rb + o.dst as usize;
            m.regs[d] = Value::Int(eval_int_op($op, av, o.imm));
            m.taints[d] = t;
            m.iemit(sink, o.pc, OpClass::IntAlu, ll_info(InstClass::Dp, o.sz));
            Ctl::Next
        }
    };
}

alu_h!(h_add_rr, h_add_ri, IntOp::Add);
alu_h!(h_sub_rr, h_sub_ri, IntOp::Sub);
alu_h!(h_mul_rr, h_mul_ri, IntOp::Mul);
alu_h!(h_udiv_rr, h_udiv_ri, IntOp::UDiv);
alu_h!(h_urem_rr, h_urem_ri, IntOp::URem);
alu_h!(h_and_rr, h_and_ri, IntOp::And);
alu_h!(h_orr_rr, h_orr_ri, IntOp::Orr);
alu_h!(h_eor_rr, h_eor_ri, IntOp::Eor);
alu_h!(h_lsl_rr, h_lsl_ri, IntOp::Lsl);
alu_h!(h_lsr_rr, h_lsr_ri, IntOp::Lsr);
alu_h!(h_asr_rr, h_asr_ri, IntOp::Asr);

fn h_madd<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let av = get!(m, m.as_int(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_int(rb + o.b as usize, o.pc));
    let cv = get!(m, m.as_int(rb + o.aux as usize, o.pc));
    let t = m.taints[rb + o.a as usize]
        .max(m.taints[rb + o.b as usize])
        .max(m.taints[rb + o.aux as usize]);
    let d = rb + o.dst as usize;
    m.regs[d] = Value::Int(av.wrapping_mul(bv).wrapping_add(cv));
    m.taints[d] = t;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::LongLatency {
            class: InstClass::Dp,
            extra: 1,
        },
    );
    Ctl::Next
}

/// Defines the handler for one float ALU op (same const-fold trick as
/// [`alu_h`]).
macro_rules! falu_h {
    ($name:ident, $op:expr) => {
        fn $name<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
            let rb = m.rb;
            let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
            let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
            let d = rb + o.dst as usize;
            m.regs[d] = Value::F64(eval_float_op($op, av, bv));
            m.taints[d] = 0;
            m.iemit(sink, o.pc, OpClass::IntAlu, ll_info(InstClass::Vfp, o.sz));
            Ctl::Next
        }
    };
}

falu_h!(h_fadd, FloatOp::FAdd);
falu_h!(h_fsub, FloatOp::FSub);
falu_h!(h_fmul, FloatOp::FMul);
falu_h!(h_fdiv, FloatOp::FDiv);
falu_h!(h_fmin, FloatOp::FMin);
falu_h!(h_fmax, FloatOp::FMax);
falu_h!(h_fsqrt, FloatOp::FSqrt);

fn h_fmadd<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
    let cv = get!(m, m.as_f64(rb + o.aux as usize, o.pc));
    let d = rb + o.dst as usize;
    m.regs[d] = Value::F64(av.mul_add(bv, cv));
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Vfp),
    );
    Ctl::Next
}

/// Defines the handler for one folded f64 comparison ordering.
macro_rules! fcmp_h {
    ($name:ident, $op:tt) => {
        fn $name<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
            let rb = m.rb;
            let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
            let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
            let d = rb + o.dst as usize;
            m.regs[d] = Value::Int(u64::from(av $op bv));
            m.taints[d] = 0;
            m.iemit(sink, o.pc, OpClass::IntAlu, RetiredInfo::Simple(InstClass::Vfp));
            Ctl::Next
        }
    };
}

fcmp_h!(h_fceq, ==);
fcmp_h!(h_fcne, !=);
fcmp_h!(h_fclt, <);
fcmp_h!(h_fcle, <=);
fcmp_h!(h_fcgt, >);
fcmp_h!(h_fcge, >=);

fn h_vadd<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
    let d = rb + o.dst as usize;
    m.regs[d] = Value::F64(av + bv);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Ase),
    );
    Ctl::Next
}

fn h_vmul<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
    let d = rb + o.dst as usize;
    m.regs[d] = Value::F64(av * bv);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Ase),
    );
    Ctl::Next
}

fn h_vfma<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let d = rb + o.dst as usize;
    let acc = get!(m, m.as_f64(d, o.pc));
    let av = get!(m, m.as_f64(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_f64(rb + o.b as usize, o.pc));
    m.regs[d] = Value::F64(av.mul_add(bv, acc));
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Ase),
    );
    Ctl::Next
}

fn h_vsad<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let d = rb + o.dst as usize;
    let acc = get!(m, m.as_int(d, o.pc));
    let av = get!(m, m.as_int(rb + o.a as usize, o.pc));
    let bv = get!(m, m.as_int(rb + o.b as usize, o.pc));
    m.regs[d] = Value::Int(acc.wrapping_add(av.abs_diff(bv)));
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Ase),
    );
    Ctl::Next
}

fn h_cvt_to_int<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let v = get!(m, m.as_f64(m.rb + o.a as usize, o.pc));
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::Int(v as i64 as u64);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Vfp),
    );
    Ctl::Next
}

fn h_cvt_to_f64<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let v = get!(m, m.as_int(m.rb + o.a as usize, o.pc));
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::F64(v as i64 as f64);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Vfp),
    );
    Ctl::Next
}

fn h_lea<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::Int(o.imm);
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_mov_null<S: EventSink, const CAP: bool>(
    m: &mut FastMachine<'_>,
    sink: &mut S,
    o: &MicroOp,
) -> Ctl {
    let d = m.rb + o.dst as usize;
    m.regs[d] = if CAP {
        Value::Cap(Capability::null())
    } else {
        Value::Int(0)
    };
    m.taints[d] = 0;
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

// `PtrAdd`/`PtrToInt` skip the taint write, exactly like the per-op
// arms (pre-lowering misuse shims).
fn h_ptr_add_rr<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let b = get!(m, m.as_int(rb + o.a as usize, o.pc));
    let ov = get!(m, m.as_int(rb + o.b as usize, o.pc));
    m.regs[rb + o.dst as usize] = Value::Int(b.wrapping_add(ov));
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_ptr_add_ri<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let b = get!(m, m.as_int(rb + o.a as usize, o.pc));
    m.regs[rb + o.dst as usize] = Value::Int(b.wrapping_add(o.imm));
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_ptr_to_int<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let rb = m.rb;
    let r = match m.regs[rb + o.a as usize] {
        Value::Int(i) => i,
        Value::Cap(c) => c.address(),
        Value::F64(_) => {
            m.err = Some(InterpError::TypeConfusion {
                pc: o.pc,
                expected: "pointer",
            });
            return Ctl::Die;
        }
    };
    m.regs[rb + o.dst as usize] = Value::Int(r);
    m.iemit(
        sink,
        o.pc,
        OpClass::IntAlu,
        RetiredInfo::Simple(InstClass::Dp),
    );
    Ctl::Next
}

fn h_load_ct<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
    let (cc, tag) = get!(
        m,
        m.mem
            .load_cap(o.imm)
            .map_err(|err| InterpError::Mem { err, pc: o.pc })
    );
    let mut cap = Capability::from_compressed(cc, tag);
    let off = o.aux as i32;
    if off != 0 {
        cap = cap.inc_address(i64::from(off));
    }
    m.load_seq += 1;
    let seq = m.load_seq;
    let d = m.rb + o.dst as usize;
    m.regs[d] = Value::Cap(cap);
    m.taints[d] = seq;
    m.iemit(
        sink,
        o.pc,
        OpClass::MemCap,
        RetiredInfo::Load {
            addr: o.imm,
            size: 16,
            is_cap: true,
            dep_load: false,
        },
    );
    Ctl::Next
}

/// Defines one narrow integer-load handler (u8/u16/u32, widened).
macro_rules! load_int_h {
    ($name:ident, $mode:tt, $bytes:expr, $rd:ident) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let rb = m.rb;
            let (off_v, off_taint) = off_val!(m, o, $mode);
            let (addr, _auth) = get!(
                m,
                m.resolve_c::<CAP>(o.a, off_v, $bytes, false, false, o.pc)
            );
            let base_taint = m.taints[rb + o.a as usize].max(off_taint);
            let dep = m.dep_load(base_taint);
            let v = get!(
                m,
                m.mem
                    .$rd(addr)
                    .map(u64::from)
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            m.load_seq += 1;
            let seq = m.load_seq;
            let d = rb + o.dst as usize;
            m.regs[d] = Value::Int(v);
            m.taints[d] = seq;
            m.iemit(
                sink,
                o.pc,
                OpClass::MemScalar,
                RetiredInfo::Load {
                    addr,
                    size: $bytes,
                    is_cap: false,
                    dep_load: dep,
                },
            );
            Ctl::Next
        }
    };
}

load_int_h!(h_ld_u8_imm, imm, 1, read_u8);
load_int_h!(h_ld_u8_reg, reg, 1, read_u8);
load_int_h!(h_ld_u8_scl, scl, 1, read_u8);
load_int_h!(h_ld_u16_imm, imm, 2, read_u16);
load_int_h!(h_ld_u16_reg, reg, 2, read_u16);
load_int_h!(h_ld_u16_scl, scl, 2, read_u16);
load_int_h!(h_ld_u32_imm, imm, 4, read_u32);
load_int_h!(h_ld_u32_reg, reg, 4, read_u32);
load_int_h!(h_ld_u32_scl, scl, 4, read_u32);

/// Defines one u64/f64 load handler (`$wrap` rebuilds the register
/// value from the raw 8-byte read).
macro_rules! load_word_h {
    ($name:ident, $mode:tt, $wrap:path) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let rb = m.rb;
            let (off_v, off_taint) = off_val!(m, o, $mode);
            let (addr, _auth) = get!(m, m.resolve_c::<CAP>(o.a, off_v, 8, false, false, o.pc));
            let base_taint = m.taints[rb + o.a as usize].max(off_taint);
            let dep = m.dep_load(base_taint);
            let v = get!(
                m,
                m.mem
                    .read_u64(addr)
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            m.load_seq += 1;
            let seq = m.load_seq;
            let d = rb + o.dst as usize;
            m.regs[d] = $wrap(v);
            m.taints[d] = seq;
            m.iemit(
                sink,
                o.pc,
                OpClass::MemScalar,
                RetiredInfo::Load {
                    addr,
                    size: 8,
                    is_cap: false,
                    dep_load: dep,
                },
            );
            Ctl::Next
        }
    };
}

#[inline(always)]
fn word_as_int(v: u64) -> Value {
    Value::Int(v)
}

#[inline(always)]
fn word_as_f64(v: u64) -> Value {
    Value::F64(f64::from_bits(v))
}

load_word_h!(h_ld_u64_imm, imm, word_as_int);
load_word_h!(h_ld_u64_reg, reg, word_as_int);
load_word_h!(h_ld_u64_scl, scl, word_as_int);
load_word_h!(h_ld_f64_imm, imm, word_as_f64);
load_word_h!(h_ld_f64_reg, reg, word_as_f64);
load_word_h!(h_ld_f64_scl, scl, word_as_f64);

/// Defines one capability-load handler (Morello tag-strip on missing
/// LOAD_CAP, like the per-op arm).
macro_rules! load_cap_h {
    ($name:ident, $mode:tt) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let rb = m.rb;
            let (off_v, off_taint) = off_val!(m, o, $mode);
            let (addr, auth) = get!(m, m.resolve_c::<CAP>(o.a, off_v, 16, false, false, o.pc));
            let base_taint = m.taints[rb + o.a as usize].max(off_taint);
            let dep = m.dep_load(base_taint);
            let (cc, mut tag) = get!(
                m,
                m.mem
                    .load_cap(addr)
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            if let Some(a) = auth {
                if !a.perms().contains(Perms::LOAD_CAP) {
                    tag = false;
                }
            }
            m.load_seq += 1;
            let seq = m.load_seq;
            let d = rb + o.dst as usize;
            m.regs[d] = Value::Cap(Capability::from_compressed(cc, tag));
            m.taints[d] = seq;
            m.iemit(
                sink,
                o.pc,
                OpClass::MemCap,
                RetiredInfo::Load {
                    addr,
                    size: 16,
                    is_cap: true,
                    dep_load: dep,
                },
            );
            Ctl::Next
        }
    };
}

load_cap_h!(h_ld_cap_imm, imm);
load_cap_h!(h_ld_cap_reg, reg);
load_cap_h!(h_ld_cap_scl, scl);

/// Defines one narrow integer-store handler (truncating cast).
macro_rules! store_int_h {
    ($name:ident, $mode:tt, $bytes:expr, $wr:ident, $cast:ty) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let (off_v, _t) = off_val!(m, o, $mode);
            let (addr, _auth) = get!(m, m.resolve_c::<CAP>(o.a, off_v, $bytes, true, false, o.pc));
            let v = get!(m, m.as_int(m.rb + o.dst as usize, o.pc));
            get!(
                m,
                m.mem
                    .$wr(addr, v as $cast)
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            m.iemit(
                sink,
                o.pc,
                OpClass::MemScalar,
                RetiredInfo::Store {
                    addr,
                    size: $bytes,
                    is_cap: false,
                },
            );
            Ctl::Next
        }
    };
}

store_int_h!(h_st_u8_imm, imm, 1, write_u8, u8);
store_int_h!(h_st_u8_reg, reg, 1, write_u8, u8);
store_int_h!(h_st_u8_scl, scl, 1, write_u8, u8);
store_int_h!(h_st_u16_imm, imm, 2, write_u16, u16);
store_int_h!(h_st_u16_reg, reg, 2, write_u16, u16);
store_int_h!(h_st_u16_scl, scl, 2, write_u16, u16);
store_int_h!(h_st_u32_imm, imm, 4, write_u32, u32);
store_int_h!(h_st_u32_reg, reg, 4, write_u32, u32);
store_int_h!(h_st_u32_scl, scl, 4, write_u32, u32);

/// Defines one u64/f64 store handler (`$src` reads the source register
/// as raw 8-byte payload).
macro_rules! store_word_h {
    ($name:ident, $mode:tt, $src:ident) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let (off_v, _t) = off_val!(m, o, $mode);
            let (addr, _auth) = get!(m, m.resolve_c::<CAP>(o.a, off_v, 8, true, false, o.pc));
            let v = get!(m, $src(m, o));
            get!(
                m,
                m.mem
                    .write_u64(addr, v)
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            m.iemit(
                sink,
                o.pc,
                OpClass::MemScalar,
                RetiredInfo::Store {
                    addr,
                    size: 8,
                    is_cap: false,
                },
            );
            Ctl::Next
        }
    };
}

#[inline(always)]
fn src_int(m: &FastMachine<'_>, o: &MicroOp) -> Result<u64, InterpError> {
    m.as_int(m.rb + o.dst as usize, o.pc)
}

#[inline(always)]
fn src_f64_bits(m: &FastMachine<'_>, o: &MicroOp) -> Result<u64, InterpError> {
    m.as_f64(m.rb + o.dst as usize, o.pc).map(f64::to_bits)
}

store_word_h!(h_st_u64_imm, imm, src_int);
store_word_h!(h_st_u64_reg, reg, src_int);
store_word_h!(h_st_u64_scl, scl, src_int);
store_word_h!(h_st_f64_imm, imm, src_f64_bits);
store_word_h!(h_st_f64_reg, reg, src_f64_bits);
store_word_h!(h_st_f64_scl, scl, src_f64_bits);

/// Defines one capability-store handler.
macro_rules! store_cap_h {
    ($name:ident, $mode:tt) => {
        fn $name<S: EventSink, const CAP: bool>(
            m: &mut FastMachine<'_>,
            sink: &mut S,
            o: &MicroOp,
        ) -> Ctl {
            let (off_v, _t) = off_val!(m, o, $mode);
            let (addr, _auth) = get!(m, m.resolve_c::<CAP>(o.a, off_v, 16, true, true, o.pc));
            let c = get!(m, m.as_cap(m.rb + o.dst as usize, o.pc));
            get!(
                m,
                m.mem
                    .store_cap(addr, c.to_compressed(), c.tag())
                    .map_err(|err| InterpError::Mem { err, pc: o.pc })
            );
            m.iemit(
                sink,
                o.pc,
                OpClass::MemCap,
                RetiredInfo::Store {
                    addr,
                    size: 16,
                    is_cap: true,
                },
            );
            Ctl::Next
        }
    };
}

store_cap_h!(h_st_cap_imm, imm);
store_cap_h!(h_st_cap_reg, reg);
store_cap_h!(h_st_cap_scl, scl);

/// Defines the RR/RI handler pair for one two-operand capability op.
/// `$body` produces the result `Value` from capability `$c` and integer
/// operand `$v` (idents passed in so the expansion stays hygienic).
macro_rules! cap_rr_ri {
    ($rr:ident, $ri:ident, |$m:ident, $o:ident, $c:ident, $v:ident| $body:expr) => {
        fn $rr<S: EventSink>($m: &mut FastMachine<'_>, sink: &mut S, $o: &MicroOp) -> Ctl {
            let rb = $m.rb;
            let t = $m.taints[rb + $o.a as usize];
            let $c = get!($m, $m.as_cap(rb + $o.a as usize, $o.pc));
            let $v = get!($m, $m.as_int(rb + $o.b as usize, $o.pc));
            let r: Value = $body;
            $m.regs[rb + $o.dst as usize] = r;
            $m.taints[rb + $o.dst as usize] = t;
            $m.iemit(sink, $o.pc, OpClass::CapManip, RetiredInfo::CapManip);
            Ctl::Next
        }
        fn $ri<S: EventSink>($m: &mut FastMachine<'_>, sink: &mut S, $o: &MicroOp) -> Ctl {
            let rb = $m.rb;
            let t = $m.taints[rb + $o.a as usize];
            let $c = get!($m, $m.as_cap(rb + $o.a as usize, $o.pc));
            let $v = $o.imm;
            let r: Value = $body;
            $m.regs[rb + $o.dst as usize] = r;
            $m.taints[rb + $o.dst as usize] = t;
            $m.iemit(sink, $o.pc, OpClass::CapManip, RetiredInfo::CapManip);
            Ctl::Next
        }
    };
}

cap_rr_ri!(h_cinc_rr, h_cinc_ri, |m, o, c, v| Value::Cap(
    c.inc_address(v as i64)
));
cap_rr_ri!(h_csetaddr_rr, h_csetaddr_ri, |m, o, c, v| Value::Cap(
    c.set_address(v)
));
cap_rr_ri!(h_csetb_rr, h_csetb_ri, |m, o, c, v| Value::Cap(get!(
    m,
    c.set_bounds(c.address(), v)
        .map_err(|f| m.cap_fault(f, o.pc, m.fi))
)));
cap_rr_ri!(h_csetbe_rr, h_csetbe_ri, |m, o, c, v| Value::Cap(get!(
    m,
    c.set_bounds_exact(c.address(), v)
        .map_err(|f| m.cap_fault(f, o.pc, m.fi))
)));
cap_rr_ri!(h_candp_rr, h_candp_ri, |m, o, c, v| Value::Cap(get!(
    m,
    c.and_perms(Perms::from_bits_truncate(v as u32))
        .map_err(|f| m.cap_fault(f, o.pc, m.fi))
)));

/// Defines the handler for one single-operand capability op.
macro_rules! cap_un_h {
    ($name:ident, |$m:ident, $o:ident, $c:ident| $body:expr) => {
        fn $name<S: EventSink>($m: &mut FastMachine<'_>, sink: &mut S, $o: &MicroOp) -> Ctl {
            let rb = $m.rb;
            let t = $m.taints[rb + $o.a as usize];
            let $c = get!($m, $m.as_cap(rb + $o.a as usize, $o.pc));
            let r: Value = $body;
            $m.regs[rb + $o.dst as usize] = r;
            $m.taints[rb + $o.dst as usize] = t;
            $m.iemit(sink, $o.pc, OpClass::CapManip, RetiredInfo::CapManip);
            Ctl::Next
        }
    };
}

cap_un_h!(h_cgetaddr, |m, o, c| Value::Int(c.address()));
cap_un_h!(h_cgetlen, |m, o, c| Value::Int(c.length()));
cap_un_h!(h_cgetbase, |m, o, c| Value::Int(c.base()));
cap_un_h!(h_cgettag, |m, o, c| Value::Int(u64::from(c.tag())));
cap_un_h!(h_cseale, |m, o, c| Value::Cap(get!(
    m,
    c.seal_sentry().map_err(|f| m.cap_fault(f, o.pc, m.fi))
)));
cap_un_h!(h_ccleartag, |m, o, c| Value::Cap(c.clear_tag()));

/// Defines the handler for one sealing op (cap × auth-cap).
macro_rules! cap2_h {
    ($name:ident, $method:ident) => {
        fn $name<S: EventSink>(m: &mut FastMachine<'_>, sink: &mut S, o: &MicroOp) -> Ctl {
            let rb = m.rb;
            let av = get!(m, m.as_cap(rb + o.a as usize, o.pc));
            let authv = get!(m, m.as_cap(rb + o.b as usize, o.pc));
            let r = get!(
                m,
                av.$method(&authv).map_err(|f| m.cap_fault(f, o.pc, m.fi))
            );
            let t = m.taints[rb + o.a as usize];
            m.regs[rb + o.dst as usize] = Value::Cap(r);
            m.taints[rb + o.dst as usize] = t;
            m.iemit(sink, o.pc, OpClass::CapManip, RetiredInfo::CapManip);
            Ctl::Next
        }
    };
}

cap2_h!(h_cseal, seal);
cap2_h!(h_cunseal, unseal);

/// Builds the 256-entry dispatch table for the sink/ABI pair. Entries
/// not covered by a packed kind point at [`h_bad_kind`] (unreachable:
/// `pack` only produces kinds assigned here). The `u8` index means the
/// hot-loop lookup needs no bounds check.
fn handler_table<S: EventSink>(cap_abi: bool) -> [Handler<S>; 256] {
    if cap_abi {
        build_table::<S, true>()
    } else {
        build_table::<S, false>()
    }
}

fn build_table<S: EventSink, const CAP: bool>() -> [Handler<S>; 256] {
    let mut t: [Handler<S>; 256] = [h_bad_kind as Handler<S>; 256];
    t[mk::MOV_IMM as usize] = h_mov_imm;
    t[mk::MOV_F64 as usize] = h_mov_f64;
    t[mk::MOV as usize] = h_mov;
    t[mk::ADD_RR as usize] = h_add_rr;
    t[mk::ADD_RI as usize] = h_add_ri;
    t[mk::SUB_RR as usize] = h_sub_rr;
    t[mk::SUB_RI as usize] = h_sub_ri;
    t[mk::MUL_RR as usize] = h_mul_rr;
    t[mk::MUL_RI as usize] = h_mul_ri;
    t[mk::UDIV_RR as usize] = h_udiv_rr;
    t[mk::UDIV_RI as usize] = h_udiv_ri;
    t[mk::UREM_RR as usize] = h_urem_rr;
    t[mk::UREM_RI as usize] = h_urem_ri;
    t[mk::AND_RR as usize] = h_and_rr;
    t[mk::AND_RI as usize] = h_and_ri;
    t[mk::ORR_RR as usize] = h_orr_rr;
    t[mk::ORR_RI as usize] = h_orr_ri;
    t[mk::EOR_RR as usize] = h_eor_rr;
    t[mk::EOR_RI as usize] = h_eor_ri;
    t[mk::LSL_RR as usize] = h_lsl_rr;
    t[mk::LSL_RI as usize] = h_lsl_ri;
    t[mk::LSR_RR as usize] = h_lsr_rr;
    t[mk::LSR_RI as usize] = h_lsr_ri;
    t[mk::ASR_RR as usize] = h_asr_rr;
    t[mk::ASR_RI as usize] = h_asr_ri;
    t[mk::MADD as usize] = h_madd;
    t[mk::FADD as usize] = h_fadd;
    t[mk::FSUB as usize] = h_fsub;
    t[mk::FMUL as usize] = h_fmul;
    t[mk::FDIV as usize] = h_fdiv;
    t[mk::FMIN as usize] = h_fmin;
    t[mk::FMAX as usize] = h_fmax;
    t[mk::FSQRT as usize] = h_fsqrt;
    t[mk::FMADD as usize] = h_fmadd;
    t[mk::FCEQ as usize] = h_fceq;
    t[mk::FCNE as usize] = h_fcne;
    t[mk::FCLT as usize] = h_fclt;
    t[mk::FCLE as usize] = h_fcle;
    t[mk::FCGT as usize] = h_fcgt;
    t[mk::FCGE as usize] = h_fcge;
    t[mk::VADD as usize] = h_vadd;
    t[mk::VMUL as usize] = h_vmul;
    t[mk::VFMA as usize] = h_vfma;
    t[mk::VSAD as usize] = h_vsad;
    t[mk::CVT_TO_INT as usize] = h_cvt_to_int;
    t[mk::CVT_TO_F64 as usize] = h_cvt_to_f64;
    t[mk::LEA as usize] = h_lea;
    t[mk::MOV_NULL as usize] = h_mov_null::<S, CAP>;
    t[mk::PTR_ADD_RR as usize] = h_ptr_add_rr;
    t[mk::PTR_ADD_RI as usize] = h_ptr_add_ri;
    t[mk::PTR_TO_INT as usize] = h_ptr_to_int;
    t[mk::LOAD_CT as usize] = h_load_ct;
    t[mk::LD_U8_IMM as usize] = h_ld_u8_imm::<S, CAP>;
    t[mk::LD_U8_IMM as usize + 1] = h_ld_u8_reg::<S, CAP>;
    t[mk::LD_U8_IMM as usize + 2] = h_ld_u8_scl::<S, CAP>;
    t[mk::LD_U16_IMM as usize] = h_ld_u16_imm::<S, CAP>;
    t[mk::LD_U16_IMM as usize + 1] = h_ld_u16_reg::<S, CAP>;
    t[mk::LD_U16_IMM as usize + 2] = h_ld_u16_scl::<S, CAP>;
    t[mk::LD_U32_IMM as usize] = h_ld_u32_imm::<S, CAP>;
    t[mk::LD_U32_IMM as usize + 1] = h_ld_u32_reg::<S, CAP>;
    t[mk::LD_U32_IMM as usize + 2] = h_ld_u32_scl::<S, CAP>;
    t[mk::LD_U64_IMM as usize] = h_ld_u64_imm::<S, CAP>;
    t[mk::LD_U64_IMM as usize + 1] = h_ld_u64_reg::<S, CAP>;
    t[mk::LD_U64_IMM as usize + 2] = h_ld_u64_scl::<S, CAP>;
    t[mk::LD_F64_IMM as usize] = h_ld_f64_imm::<S, CAP>;
    t[mk::LD_F64_IMM as usize + 1] = h_ld_f64_reg::<S, CAP>;
    t[mk::LD_F64_IMM as usize + 2] = h_ld_f64_scl::<S, CAP>;
    t[mk::LD_CAP_IMM as usize] = h_ld_cap_imm::<S, CAP>;
    t[mk::LD_CAP_IMM as usize + 1] = h_ld_cap_reg::<S, CAP>;
    t[mk::LD_CAP_IMM as usize + 2] = h_ld_cap_scl::<S, CAP>;
    t[mk::ST_U8_IMM as usize] = h_st_u8_imm::<S, CAP>;
    t[mk::ST_U8_IMM as usize + 1] = h_st_u8_reg::<S, CAP>;
    t[mk::ST_U8_IMM as usize + 2] = h_st_u8_scl::<S, CAP>;
    t[mk::ST_U16_IMM as usize] = h_st_u16_imm::<S, CAP>;
    t[mk::ST_U16_IMM as usize + 1] = h_st_u16_reg::<S, CAP>;
    t[mk::ST_U16_IMM as usize + 2] = h_st_u16_scl::<S, CAP>;
    t[mk::ST_U32_IMM as usize] = h_st_u32_imm::<S, CAP>;
    t[mk::ST_U32_IMM as usize + 1] = h_st_u32_reg::<S, CAP>;
    t[mk::ST_U32_IMM as usize + 2] = h_st_u32_scl::<S, CAP>;
    t[mk::ST_U64_IMM as usize] = h_st_u64_imm::<S, CAP>;
    t[mk::ST_U64_IMM as usize + 1] = h_st_u64_reg::<S, CAP>;
    t[mk::ST_U64_IMM as usize + 2] = h_st_u64_scl::<S, CAP>;
    t[mk::ST_F64_IMM as usize] = h_st_f64_imm::<S, CAP>;
    t[mk::ST_F64_IMM as usize + 1] = h_st_f64_reg::<S, CAP>;
    t[mk::ST_F64_IMM as usize + 2] = h_st_f64_scl::<S, CAP>;
    t[mk::ST_CAP_IMM as usize] = h_st_cap_imm::<S, CAP>;
    t[mk::ST_CAP_IMM as usize + 1] = h_st_cap_reg::<S, CAP>;
    t[mk::ST_CAP_IMM as usize + 2] = h_st_cap_scl::<S, CAP>;
    t[mk::CINC_RR as usize] = h_cinc_rr;
    t[mk::CINC_RI as usize] = h_cinc_ri;
    t[mk::CSETADDR_RR as usize] = h_csetaddr_rr;
    t[mk::CSETADDR_RI as usize] = h_csetaddr_ri;
    t[mk::CSETB_RR as usize] = h_csetb_rr;
    t[mk::CSETB_RI as usize] = h_csetb_ri;
    t[mk::CSETBE_RR as usize] = h_csetbe_rr;
    t[mk::CSETBE_RI as usize] = h_csetbe_ri;
    t[mk::CANDP_RR as usize] = h_candp_rr;
    t[mk::CANDP_RI as usize] = h_candp_ri;
    t[mk::CGETADDR as usize] = h_cgetaddr;
    t[mk::CGETLEN as usize] = h_cgetlen;
    t[mk::CGETBASE as usize] = h_cgetbase;
    t[mk::CGETTAG as usize] = h_cgettag;
    t[mk::CSEALE as usize] = h_cseale;
    t[mk::CCLEARTAG as usize] = h_ccleartag;
    t[mk::CSEAL as usize] = h_cseal;
    t[mk::CUNSEAL as usize] = h_cunseal;
    t
}
