//! The pre-decoded fast engine.
//!
//! Executes a [`DecodedProgram`] (see [`crate::decoded`]) in a tight
//! dispatch loop over dense `Copy` micro-ops: no per-instruction
//! re-decode, no fault-injection polls (an inert injector cannot fire,
//! so the `active()` checks of the reference loop are compiled out of
//! the hot path entirely), registers and taints in flat arenas indexed
//! off a cached frame base, and classification resolved once per op
//! through [`EventSink::retire_classified`].
//!
//! Equivalence contract: for any program and sink, this engine produces
//! the *same event stream* (order and payload), the same architectural
//! result, and the same error as the reference executor
//! ([`crate::refexec`]). The differential harness
//! (`tests/differential.rs`) locks this across every workload×ABI cell,
//! random programs, and the error paths; `debug_assert`s in the emit
//! macro additionally check every pre-computed class against
//! [`OpClass::of`] in debug builds.

use crate::classify::{ClassCounts, OpClass};
use crate::decoded::{ArgsRef, DecodedFunc, DecodedProgram, Off, Op};
use crate::inst::{
    BranchKind, CapOp2Kind, CapOpKind, Cond, InstClass, LoadKind, MemSize, Operand, VecKind,
};
use crate::interp::{
    eval_float_op, eval_int_op, EventSink, FaultInjector, InterpConfig, InterpError,
    RecoveryPolicy, RetiredEvent, RetiredInfo, RunResult,
};
use crate::lower::{RT_FREE_PC, RT_MALLOC_PC, RT_SWEEP_PC, STACK_SIZE};
use crate::program::Program;
use crate::refexec::{init_memory, Value, META_LINES, SAVE_AREA};
use cheri_cap::{CapFault, Capability, Perms};
use cheri_mem::{HeapAllocator, TaggedMemory};
use cheri_revoke::{RevokingHeap, StrategyKind, SweepOutcome};

/// Runs `prog` to completion on the fast engine. The caller guarantees
/// the injector is inert (`!active()` under `Abort`); the only hook an
/// inert injector can still observe is `trapped` on an organic fault,
/// which is replayed here exactly as the reference handler does.
pub(crate) fn run<S: EventSink, I: FaultInjector>(
    prog: &Program,
    cfg: InterpConfig,
    sink: &mut S,
    mut inj: I,
) -> Result<RunResult, InterpError> {
    debug_assert!(
        !inj.active() && inj.policy() == RecoveryPolicy::Abort,
        "fast engine selected with an armed injector"
    );
    let dec = DecodedProgram::decode(prog);
    let mut m = FastMachine::new(prog, &dec, cfg);
    init_memory(prog, &mut m.mem)?;
    let r = m.exec(sink);
    if let Err(InterpError::Fault { pc, .. }) = &r {
        // The reference SIGPROT-analogue handler journals every trap
        // before aborting; keep that observable for inert injectors.
        inj.trapped(*pc);
    }
    r
}

/// One active call frame. Registers live in the machine-wide arenas at
/// `[reg_base, reg_base + vregs)`; the running frame's `func`/`ip` are
/// cached in locals of the dispatch loop, so only the return plumbing
/// is stored here.
struct FastFrame {
    func: u32,
    reg_base: u32,
    ret_reg: Option<u16>,
    ret_ip: u32,
    saved_sp: u64,
}

struct FastMachine<'p> {
    prog: &'p Program,
    dec: &'p DecodedProgram,
    cfg: InterpConfig,
    mem: TaggedMemory,
    heap: RevokingHeap,
    frames: Vec<FastFrame>,
    regs: Vec<Value>,
    taints: Vec<u64>,
    sp: u64,
    stack_cap: Capability,
    code_root: Capability,
    data_root: Capability,
    retired: u64,
    classes: ClassCounts,
    load_seq: u64,
    exit: Option<u64>,
    cap_abi: bool,
    pcc_branches: bool,
}

/// Emits one retired event with its pre-computed class: bumps the
/// architectural counters and hands the sink the class so classifying
/// sinks skip `OpClass::of`. Debug builds verify the hint.
macro_rules! femit {
    ($self:ident, $sink:ident, $pc:expr, $class:expr, $info:expr) => {{
        let pc = $pc;
        let info = $info;
        let class = $class;
        debug_assert_eq!(class, OpClass::of(pc, &info), "pre-computed class mismatch");
        $self.retired += 1;
        $self.classes.bump(class);
        $sink.retire_classified(RetiredEvent { pc, info }, class);
    }};
}

impl<'p> FastMachine<'p> {
    fn new(prog: &'p Program, dec: &'p DecodedProgram, cfg: InterpConfig) -> FastMachine<'p> {
        let cap_abi = prog.abi.is_capability();
        let kind = if cap_abi {
            match cfg.cap_alloc {
                // Capability ABIs need representable bounds: classic
                // layout would hand out unencodable large blocks.
                StrategyKind::Classic => StrategyKind::CapabilityPadded,
                k => k,
            }
        } else {
            StrategyKind::Classic
        };
        let (heap_lo, heap_hi) = prog.map.heap;
        let heap = RevokingHeap::new(heap_lo + (1 << 20), heap_hi, heap_lo + (1 << 19), kind);
        let stack_base = prog.map.stack_top - STACK_SIZE;
        let stack_cap = Capability::root_rw()
            .set_bounds(stack_base, STACK_SIZE)
            .expect("stack bounds representable");
        FastMachine {
            prog,
            dec,
            cfg,
            mem: TaggedMemory::new(),
            heap,
            frames: Vec::with_capacity(64),
            regs: Vec::with_capacity(256),
            taints: Vec::with_capacity(256),
            sp: prog.map.stack_top,
            stack_cap,
            code_root: Capability::root_exec(),
            data_root: Capability::root_rw(),
            retired: 0,
            classes: ClassCounts::new(),
            load_seq: 0,
            exit: None,
            cap_abi,
            pcc_branches: prog.abi.capability_branches(),
        }
    }

    // ---- Value plumbing (flat-arena addressing) ---------------------------

    #[inline]
    fn as_int(&self, idx: usize, pc: u64) -> Result<u64, InterpError> {
        match self.regs[idx] {
            Value::Int(v) => Ok(v),
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "integer",
            }),
        }
    }

    #[inline]
    fn as_f64(&self, idx: usize, pc: u64) -> Result<f64, InterpError> {
        match self.regs[idx] {
            Value::F64(v) => Ok(v),
            Value::Int(0) => Ok(0.0), // zero-initialised registers
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "float",
            }),
        }
    }

    #[inline]
    fn as_cap(&self, idx: usize, pc: u64) -> Result<Capability, InterpError> {
        match self.regs[idx] {
            Value::Cap(c) => Ok(c),
            _ => Err(InterpError::TypeConfusion {
                pc,
                expected: "capability",
            }),
        }
    }

    #[inline]
    fn operand_int(&self, rb: usize, op: Operand, pc: u64) -> Result<u64, InterpError> {
        match op {
            Operand::Reg(r) => self.as_int(rb + r as usize, pc),
            Operand::Imm(i) => Ok(i as u64),
        }
    }

    #[inline]
    fn operand_taint(&self, rb: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.taints[rb + r as usize],
            Operand::Imm(_) => 0,
        }
    }

    #[inline]
    fn cap_fault(&self, fault: CapFault, pc: u64, fi: usize) -> InterpError {
        InterpError::Fault {
            fault,
            pc,
            func: self.prog.funcs[fi].name.clone(),
        }
    }

    /// Resolves a memory operand to (effective address, authorising cap).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &self,
        rb: usize,
        fi: usize,
        base: u16,
        off: i64,
        size: u64,
        write: bool,
        cap_access: bool,
        pc: u64,
    ) -> Result<(u64, Option<Capability>), InterpError> {
        if self.cap_abi {
            let c = self.as_cap(rb + base as usize, pc)?;
            let addr = c.address().wrapping_add(off as u64);
            let mut req = if write { Perms::STORE } else { Perms::LOAD };
            if cap_access && write {
                req = req | Perms::STORE_CAP;
            }
            c.check_access(addr, size, req)
                .map_err(|fault| self.cap_fault(fault, pc, fi))?;
            Ok((addr, Some(c)))
        } else {
            let b = self.as_int(rb + base as usize, pc)?;
            Ok((b.wrapping_add(off as u64), None))
        }
    }

    #[inline]
    fn dep_load(&self, base_taint: u64) -> bool {
        base_taint != 0 && self.load_seq.saturating_sub(base_taint) <= self.cfg.dep_window
    }

    // ---- Frame plumbing ---------------------------------------------------

    /// Pushes a frame for `callee`: depth/arity checks, the call-site
    /// branch event (`None` for the entry frame), the synthetic
    /// prologue (SP adjust + return-address save), and fresh registers
    /// in the flat arenas. Returns the new frame's register base.
    /// `branch` is `(call_pc, kind, target, pcc_change)`.
    #[allow(clippy::too_many_arguments)]
    fn enter_frame<S: EventSink>(
        &mut self,
        sink: &mut S,
        callee: u32,
        caller_args: Option<(usize, ArgsRef)>,
        ret_reg: Option<u16>,
        ret_ip: u32,
        branch: Option<(u64, BranchKind, u64, bool)>,
        call_pc: u64,
    ) -> Result<usize, InterpError> {
        if self.frames.len() as u32 >= self.cfg.max_call_depth {
            return Err(InterpError::CallDepth { pc: call_pc });
        }
        let dec = self.dec;
        let f = &dec.funcs[callee as usize];
        let n_args = caller_args.map_or(0, |(_, a)| a.len);
        if n_args != f.params {
            return Err(InterpError::BadProgram {
                msg: format!(
                    "call to `{}` with {} args (expects {})",
                    self.prog.funcs[callee as usize].name, n_args, f.params
                ),
            });
        }
        let mut ret_pc = 0;
        if let Some((pc, kind, target, pcc_change)) = branch {
            ret_pc = pc + 4;
            femit!(
                self,
                sink,
                pc,
                if pcc_change {
                    OpClass::CapBranch
                } else {
                    OpClass::Branch
                },
                RetiredInfo::Branch {
                    kind,
                    taken: true,
                    target,
                    pcc_change,
                }
            );
        }

        // Prologue: SP adjust + return-address save.
        let saved_sp = self.sp;
        let new_sp = self.sp - (f.frame_size + SAVE_AREA);
        self.sp = new_sp;
        let base_pc = f.base_pc;
        if self.cap_abi {
            femit!(
                self,
                sink,
                base_pc,
                OpClass::CapManip,
                RetiredInfo::CapManip
            );
        } else {
            femit!(
                self,
                sink,
                base_pc,
                OpClass::IntAlu,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let lr_addr = new_sp + f.frame_size;
        if self.cap_abi {
            // Save the return address as a capability into the caller.
            let ret_cap = self.code_root.set_address(ret_pc);
            self.mem
                .store_cap(lr_addr & !15, ret_cap.to_compressed(), true)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            femit!(
                self,
                sink,
                base_pc + 4,
                OpClass::MemCap,
                RetiredInfo::Store {
                    addr: lr_addr & !15,
                    size: 16,
                    is_cap: true,
                }
            );
        } else {
            self.mem
                .write_u64(lr_addr, ret_pc)
                .map_err(|err| InterpError::Mem { err, pc: base_pc })?;
            femit!(
                self,
                sink,
                base_pc + 4,
                OpClass::MemScalar,
                RetiredInfo::Store {
                    addr: lr_addr,
                    size: 8,
                    is_cap: false,
                }
            );
        }

        let new_base = self.regs.len();
        self.regs.resize(new_base + f.vregs as usize, Value::Int(0));
        self.taints.resize(new_base + f.vregs as usize, 0);
        self.regs[new_base] = if self.cap_abi {
            Value::Cap(self.stack_cap.set_address(new_sp))
        } else {
            Value::Int(new_sp)
        };
        if let Some((caller_rb, args)) = caller_args {
            for k in 0..args.len as usize {
                let src = dec.args[args.start as usize + k];
                self.regs[new_base + 1 + k] = self.regs[caller_rb + src as usize];
            }
        }
        self.frames.push(FastFrame {
            func: callee,
            reg_base: new_base as u32,
            ret_reg,
            ret_ip,
            saved_sp,
        });
        Ok(new_base)
    }

    // ---- The dispatch loop ------------------------------------------------

    fn exec<S: EventSink>(&mut self, sink: &mut S) -> Result<RunResult, InterpError> {
        let prog = self.prog;
        let dec = self.dec;
        let entry = prog.entry.0;
        if dec.funcs[entry as usize].params != 0 {
            return Err(InterpError::BadProgram {
                msg: format!(
                    "entry `{}` must take no parameters",
                    prog.funcs[entry as usize].name
                ),
            });
        }
        // The entry frame: no call-site branch event, return address 0.
        self.enter_frame(sink, entry, None, None, 0, None, 0)?;
        let mut fi = entry as usize;
        let mut ip = 0usize;
        let mut rb = 0usize;

        while self.exit.is_none() {
            if self.retired >= self.cfg.max_insts {
                return Err(InterpError::FuelExhausted {
                    retired: self.retired,
                });
            }
            let fun: &DecodedFunc = &dec.funcs[fi];
            debug_assert!(ip < fun.ops.len(), "fell off function {fi}");
            let pc = fun.base_pc + (ip as u64) * 4;
            match fun.ops[ip] {
                Op::MovImm { dst, imm } => {
                    self.regs[rb + dst as usize] = Value::Int(imm);
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::MovF64 { dst, imm } => {
                    self.regs[rb + dst as usize] = Value::F64(imm);
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::Mov { dst, src } => {
                    self.regs[rb + dst as usize] = self.regs[rb + src as usize];
                    self.taints[rb + dst as usize] = self.taints[rb + src as usize];
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::IntAlu { op, dst, a, b, ll } => {
                    let av = self.as_int(rb + a as usize, pc)?;
                    let bv = self.operand_int(rb, b, pc)?;
                    let r = eval_int_op(op, av, bv);
                    let t = self.taints[rb + a as usize].max(self.operand_taint(rb, b));
                    self.regs[rb + dst as usize] = Value::Int(r);
                    self.taints[rb + dst as usize] = t;
                    let info = if ll == 0 {
                        RetiredInfo::Simple(InstClass::Dp)
                    } else {
                        RetiredInfo::LongLatency {
                            class: InstClass::Dp,
                            extra: ll,
                        }
                    };
                    femit!(self, sink, pc, OpClass::IntAlu, info);
                    ip += 1;
                }
                Op::Madd { dst, a, b, c } => {
                    let r = self
                        .as_int(rb + a as usize, pc)?
                        .wrapping_mul(self.as_int(rb + b as usize, pc)?)
                        .wrapping_add(self.as_int(rb + c as usize, pc)?);
                    let t = self.taints[rb + a as usize]
                        .max(self.taints[rb + b as usize])
                        .max(self.taints[rb + c as usize]);
                    self.regs[rb + dst as usize] = Value::Int(r);
                    self.taints[rb + dst as usize] = t;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::LongLatency {
                            class: InstClass::Dp,
                            extra: 1,
                        }
                    );
                    ip += 1;
                }
                Op::FloatAlu { op, dst, a, b, ll } => {
                    let r = eval_float_op(
                        op,
                        self.as_f64(rb + a as usize, pc)?,
                        self.as_f64(rb + b as usize, pc)?,
                    );
                    self.regs[rb + dst as usize] = Value::F64(r);
                    self.taints[rb + dst as usize] = 0;
                    let info = if ll == 0 {
                        RetiredInfo::Simple(InstClass::Vfp)
                    } else {
                        RetiredInfo::LongLatency {
                            class: InstClass::Vfp,
                            extra: ll,
                        }
                    };
                    femit!(self, sink, pc, OpClass::IntAlu, info);
                    ip += 1;
                }
                Op::FMadd { dst, a, b, c } => {
                    let r = self.as_f64(rb + a as usize, pc)?.mul_add(
                        self.as_f64(rb + b as usize, pc)?,
                        self.as_f64(rb + c as usize, pc)?,
                    );
                    self.regs[rb + dst as usize] = Value::F64(r);
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Vfp)
                    );
                    ip += 1;
                }
                Op::FCmp { cond, dst, a, b } => {
                    let av = self.as_f64(rb + a as usize, pc)?;
                    let bv = self.as_f64(rb + b as usize, pc)?;
                    let r = match cond {
                        Cond::Eq => av == bv,
                        Cond::Ne => av != bv,
                        Cond::Ltu | Cond::Lts => av < bv,
                        Cond::Leu => av <= bv,
                        Cond::Gtu | Cond::Gts => av > bv,
                        Cond::Geu => av >= bv,
                    };
                    self.regs[rb + dst as usize] = Value::Int(u64::from(r));
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Vfp)
                    );
                    ip += 1;
                }
                Op::Vec { op, dst, a, b } => {
                    match op {
                        VecKind::VAdd => {
                            let r = self.as_f64(rb + a as usize, pc)?
                                + self.as_f64(rb + b as usize, pc)?;
                            self.regs[rb + dst as usize] = Value::F64(r);
                        }
                        VecKind::VMul => {
                            let r = self.as_f64(rb + a as usize, pc)?
                                * self.as_f64(rb + b as usize, pc)?;
                            self.regs[rb + dst as usize] = Value::F64(r);
                        }
                        VecKind::VFma => {
                            let acc = self.as_f64(rb + dst as usize, pc)?;
                            let r = self
                                .as_f64(rb + a as usize, pc)?
                                .mul_add(self.as_f64(rb + b as usize, pc)?, acc);
                            self.regs[rb + dst as usize] = Value::F64(r);
                        }
                        VecKind::VSad => {
                            let acc = self.as_int(rb + dst as usize, pc)?;
                            let av = self.as_int(rb + a as usize, pc)?;
                            let bv = self.as_int(rb + b as usize, pc)?;
                            self.regs[rb + dst as usize] =
                                Value::Int(acc.wrapping_add(av.abs_diff(bv)));
                        }
                    }
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Ase)
                    );
                    ip += 1;
                }
                Op::Cvt { dst, src, to_int } => {
                    if to_int {
                        let v = self.as_f64(rb + src as usize, pc)?;
                        self.regs[rb + dst as usize] = Value::Int(v as i64 as u64);
                    } else {
                        let v = self.as_int(rb + src as usize, pc)?;
                        self.regs[rb + dst as usize] = Value::F64(v as i64 as f64);
                    }
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Vfp)
                    );
                    ip += 1;
                }
                Op::LeaConst { dst, addr } => {
                    self.regs[rb + dst as usize] = Value::Int(addr);
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::MovNullPtr { dst } => {
                    self.regs[rb + dst as usize] = if self.cap_abi {
                        Value::Cap(Capability::null())
                    } else {
                        Value::Int(0)
                    };
                    self.taints[rb + dst as usize] = 0;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::PtrAdd { dst, base, off } => {
                    // Only reachable pre-lowering misuse; behaves as an
                    // integer add and (like the reference) skips taint.
                    let b = self.as_int(rb + base as usize, pc)?;
                    let o = self.operand_int(rb, off, pc)?;
                    self.regs[rb + dst as usize] = Value::Int(b.wrapping_add(o));
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::PtrToInt { dst, src } => {
                    let r = match self.regs[rb + src as usize] {
                        Value::Int(i) => i,
                        Value::Cap(c) => c.address(),
                        Value::F64(_) => {
                            return Err(InterpError::TypeConfusion {
                                pc,
                                expected: "pointer",
                            })
                        }
                    };
                    self.regs[rb + dst as usize] = Value::Int(r);
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    ip += 1;
                }
                Op::BadGeneric => {
                    return Err(InterpError::BadProgram {
                        msg: "pointer-generic memory op survived lowering".into(),
                    });
                }
                Op::LoadCapTable { dst, addr, off } => {
                    let (cc, tag) = self
                        .mem
                        .load_cap(addr)
                        .map_err(|err| InterpError::Mem { err, pc })?;
                    let mut cap = Capability::from_compressed(cc, tag);
                    if off != 0 {
                        cap = cap.inc_address(off);
                    }
                    self.load_seq += 1;
                    let seq = self.load_seq;
                    self.regs[rb + dst as usize] = Value::Cap(cap);
                    self.taints[rb + dst as usize] = seq;
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::MemCap,
                        RetiredInfo::Load {
                            addr,
                            size: 16,
                            is_cap: true,
                            dep_load: false,
                        }
                    );
                    ip += 1;
                }
                Op::Load {
                    dst,
                    base,
                    off,
                    size,
                    kind,
                    bytes,
                } => {
                    let (off_v, off_taint) = match off {
                        Off::Imm(i) => (i, 0),
                        Off::Reg(r) => (
                            self.as_int(rb + r as usize, pc)? as i64,
                            self.taints[rb + r as usize],
                        ),
                        Off::RegScaled(r) => (
                            (self.as_int(rb + r as usize, pc)? as i64).wrapping_mul(bytes as i64),
                            self.taints[rb + r as usize],
                        ),
                    };
                    let (addr, auth) =
                        self.resolve(rb, fi, base, off_v, bytes as u64, false, false, pc)?;
                    let base_taint = self.taints[rb + base as usize].max(off_taint);
                    let dep = self.dep_load(base_taint);
                    let v = match kind {
                        LoadKind::Int => {
                            let v = match size {
                                MemSize::S1 => self.mem.read_u8(addr).map(u64::from),
                                MemSize::S2 => self.mem.read_u16(addr).map(u64::from),
                                MemSize::S4 => self.mem.read_u32(addr).map(u64::from),
                                MemSize::S8 => self.mem.read_u64(addr),
                            }
                            .map_err(|err| InterpError::Mem { err, pc })?;
                            Value::Int(v)
                        }
                        LoadKind::F64 => {
                            let v = self
                                .mem
                                .read_u64(addr)
                                .map_err(|err| InterpError::Mem { err, pc })?;
                            Value::F64(f64::from_bits(v))
                        }
                        LoadKind::Cap => {
                            let (cc, mut tag) = self
                                .mem
                                .load_cap(addr)
                                .map_err(|err| InterpError::Mem { err, pc })?;
                            // Loading through a capability without
                            // LOAD_CAP strips the tag (Morello
                            // semantics).
                            if let Some(a) = auth {
                                if !a.perms().contains(Perms::LOAD_CAP) {
                                    tag = false;
                                }
                            }
                            Value::Cap(Capability::from_compressed(cc, tag))
                        }
                    };
                    self.load_seq += 1;
                    let seq = self.load_seq;
                    self.regs[rb + dst as usize] = v;
                    self.taints[rb + dst as usize] = seq;
                    let is_cap = matches!(kind, LoadKind::Cap);
                    femit!(
                        self,
                        sink,
                        pc,
                        if is_cap {
                            OpClass::MemCap
                        } else {
                            OpClass::MemScalar
                        },
                        RetiredInfo::Load {
                            addr,
                            size: bytes,
                            is_cap,
                            dep_load: dep,
                        }
                    );
                    ip += 1;
                }
                Op::Store {
                    src,
                    base,
                    off,
                    size,
                    kind,
                    bytes,
                } => {
                    let off_v = match off {
                        Off::Imm(i) => i,
                        Off::Reg(r) => self.as_int(rb + r as usize, pc)? as i64,
                        Off::RegScaled(r) => {
                            (self.as_int(rb + r as usize, pc)? as i64).wrapping_mul(bytes as i64)
                        }
                    };
                    let is_cap = matches!(kind, LoadKind::Cap);
                    let (addr, _auth) =
                        self.resolve(rb, fi, base, off_v, bytes as u64, true, is_cap, pc)?;
                    match kind {
                        LoadKind::Int => {
                            let v = self.as_int(rb + src as usize, pc)?;
                            match size {
                                MemSize::S1 => self.mem.write_u8(addr, v as u8),
                                MemSize::S2 => self.mem.write_u16(addr, v as u16),
                                MemSize::S4 => self.mem.write_u32(addr, v as u32),
                                MemSize::S8 => self.mem.write_u64(addr, v),
                            }
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        }
                        LoadKind::F64 => {
                            let v = self.as_f64(rb + src as usize, pc)?;
                            self.mem
                                .write_u64(addr, v.to_bits())
                                .map_err(|err| InterpError::Mem { err, pc })?;
                        }
                        LoadKind::Cap => {
                            let c = self.as_cap(rb + src as usize, pc)?;
                            self.mem
                                .store_cap(addr, c.to_compressed(), c.tag())
                                .map_err(|err| InterpError::Mem { err, pc })?;
                        }
                    }
                    femit!(
                        self,
                        sink,
                        pc,
                        if is_cap {
                            OpClass::MemCap
                        } else {
                            OpClass::MemScalar
                        },
                        RetiredInfo::Store {
                            addr,
                            size: bytes,
                            is_cap,
                        }
                    );
                    ip += 1;
                }
                Op::Jump { t_ip, t_pc } => {
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::Branch,
                        RetiredInfo::Branch {
                            kind: BranchKind::Immediate,
                            taken: true,
                            target: t_pc,
                            pcc_change: false,
                        }
                    );
                    ip = t_ip as usize;
                }
                Op::CondBr {
                    cond,
                    a,
                    b,
                    t_ip,
                    t_pc,
                } => {
                    let av = self.as_int(rb + a as usize, pc)?;
                    let bv = self.operand_int(rb, b, pc)?;
                    let taken = cond.eval(av, bv);
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::Branch,
                        RetiredInfo::Branch {
                            kind: BranchKind::Immediate,
                            taken,
                            target: t_pc,
                            pcc_change: false,
                        }
                    );
                    ip = if taken { t_ip as usize } else { ip + 1 };
                }
                Op::Call {
                    callee,
                    args,
                    ret,
                    pcc_change,
                } => {
                    let target = dec.funcs[callee as usize].base_pc;
                    rb = self.enter_frame(
                        sink,
                        callee,
                        Some((rb, args)),
                        ret,
                        (ip + 1) as u32,
                        Some((pc, BranchKind::Call, target, pcc_change)),
                        pc,
                    )?;
                    fi = callee as usize;
                    ip = 0;
                }
                Op::CallIndirect { target, args, ret } => {
                    let taddr = match self.regs[rb + target as usize] {
                        Value::Int(a) if !self.cap_abi => a,
                        Value::Cap(c) if self.cap_abi => {
                            c.check_branch()
                                .map_err(|fault| self.cap_fault(fault, pc, fi))?;
                            c.address()
                        }
                        _ => {
                            return Err(InterpError::TypeConfusion {
                                pc,
                                expected: "function pointer",
                            })
                        }
                    };
                    let callee = self
                        .prog
                        .map
                        .func_at(taddr)
                        .ok_or(InterpError::UnknownCode { addr: taddr, pc })?;
                    let pcc_change = self.pcc_branches
                        && dec.funcs[callee.0 as usize].module != dec.funcs[fi].module;
                    rb = self.enter_frame(
                        sink,
                        callee.0,
                        Some((rb, args)),
                        ret,
                        (ip + 1) as u32,
                        Some((pc, BranchKind::IndirectCall, taddr, pcc_change)),
                        pc,
                    )?;
                    fi = callee.0 as usize;
                    ip = 0;
                }
                Op::Ret { val } => {
                    let v = val.map(|r| self.regs[rb + r as usize]);
                    let fr = self.frames.pop().expect("no frame");
                    let fun = &dec.funcs[fi];
                    let lr_addr = (self.sp + fun.frame_size) & if self.cap_abi { !15 } else { !0 };

                    // Epilogue: LR reload + SP adjust + return branch.
                    femit!(
                        self,
                        sink,
                        pc,
                        if self.cap_abi {
                            OpClass::MemCap
                        } else {
                            OpClass::MemScalar
                        },
                        RetiredInfo::Load {
                            addr: lr_addr,
                            size: if self.cap_abi { 16 } else { 8 },
                            is_cap: self.cap_abi,
                            dep_load: false,
                        }
                    );
                    if self.cap_abi {
                        self.mem
                            .load_cap(lr_addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                    } else {
                        self.mem
                            .read_u64(lr_addr)
                            .map_err(|err| InterpError::Mem { err, pc })?;
                        femit!(
                            self,
                            sink,
                            pc,
                            OpClass::IntAlu,
                            RetiredInfo::Simple(InstClass::Dp)
                        );
                    }
                    self.sp = fr.saved_sp;

                    match self.frames.last() {
                        Some(caller) => {
                            let caller_fun = &dec.funcs[caller.func as usize];
                            let ret_target = caller_fun.base_pc + u64::from(fr.ret_ip) * 4;
                            let pcc_change = self.pcc_branches && caller_fun.module != fun.module;
                            let caller_rb = caller.reg_base as usize;
                            let caller_func = caller.func as usize;
                            if let (Some(r), Some(v)) = (fr.ret_reg, v) {
                                // Return values inherit "recently loaded"
                                // status conservatively: cleared.
                                self.regs[caller_rb + r as usize] = v;
                                self.taints[caller_rb + r as usize] = 0;
                            }
                            femit!(
                                self,
                                sink,
                                pc,
                                if pcc_change {
                                    OpClass::CapBranch
                                } else {
                                    OpClass::Branch
                                },
                                RetiredInfo::Branch {
                                    kind: BranchKind::Return,
                                    taken: true,
                                    target: ret_target,
                                    pcc_change,
                                }
                            );
                            self.regs.truncate(fr.reg_base as usize);
                            self.taints.truncate(fr.reg_base as usize);
                            fi = caller_func;
                            ip = fr.ret_ip as usize;
                            rb = caller_rb;
                        }
                        None => {
                            // Returning from the entry function ends the
                            // program.
                            let code = match v {
                                Some(Value::Int(v)) => v,
                                _ => 0,
                            };
                            self.exit = Some(code);
                        }
                    }
                }
                Op::Malloc { dst, size } => {
                    let sz = self.operand_int(rb, size, pc)?;
                    self.run_malloc(rb + dst as usize, sz, pc, sink)?;
                    ip += 1;
                }
                Op::Free { ptr } => {
                    let addr = match self.regs[rb + ptr as usize] {
                        Value::Int(a) => a,
                        Value::Cap(c) => c.address(),
                        Value::F64(_) => {
                            return Err(InterpError::TypeConfusion {
                                pc,
                                expected: "pointer",
                            })
                        }
                    };
                    self.run_free(addr, pc, sink)?;
                    ip += 1;
                }
                Op::CapOp { op, dst, a, b } => {
                    let a_idx = rb + a as usize;
                    let a_taint = self.taints[a_idx];
                    let result: Value = match op {
                        CapOpKind::IncOffset => {
                            let c = self.as_cap(a_idx, pc)?;
                            let d = self.operand_int(rb, b, pc)? as i64;
                            Value::Cap(c.inc_address(d))
                        }
                        CapOpKind::SetAddr => {
                            let c = self.as_cap(a_idx, pc)?;
                            let addr = self.operand_int(rb, b, pc)?;
                            Value::Cap(c.set_address(addr))
                        }
                        CapOpKind::SetBounds => {
                            let c = self.as_cap(a_idx, pc)?;
                            let len = self.operand_int(rb, b, pc)?;
                            Value::Cap(
                                c.set_bounds(c.address(), len)
                                    .map_err(|f| self.cap_fault(f, pc, fi))?,
                            )
                        }
                        CapOpKind::SetBoundsExact => {
                            let c = self.as_cap(a_idx, pc)?;
                            let len = self.operand_int(rb, b, pc)?;
                            Value::Cap(
                                c.set_bounds_exact(c.address(), len)
                                    .map_err(|f| self.cap_fault(f, pc, fi))?,
                            )
                        }
                        CapOpKind::GetAddr => Value::Int(self.as_cap(a_idx, pc)?.address()),
                        CapOpKind::GetLen => Value::Int(self.as_cap(a_idx, pc)?.length()),
                        CapOpKind::GetBase => Value::Int(self.as_cap(a_idx, pc)?.base()),
                        CapOpKind::GetTag => Value::Int(u64::from(self.as_cap(a_idx, pc)?.tag())),
                        CapOpKind::AndPerm => {
                            let c = self.as_cap(a_idx, pc)?;
                            let mask =
                                Perms::from_bits_truncate(self.operand_int(rb, b, pc)? as u32);
                            Value::Cap(c.and_perms(mask).map_err(|f| self.cap_fault(f, pc, fi))?)
                        }
                        CapOpKind::SealEntry => {
                            let c = self.as_cap(a_idx, pc)?;
                            Value::Cap(c.seal_sentry().map_err(|f| self.cap_fault(f, pc, fi))?)
                        }
                        CapOpKind::ClearTag => Value::Cap(self.as_cap(a_idx, pc)?.clear_tag()),
                    };
                    self.regs[rb + dst as usize] = result;
                    self.taints[rb + dst as usize] = a_taint;
                    femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                    ip += 1;
                }
                Op::CapOp2 { op, a, auth, dst } => {
                    let av = self.as_cap(rb + a as usize, pc)?;
                    let authv = self.as_cap(rb + auth as usize, pc)?;
                    let r = match op {
                        CapOp2Kind::Seal => {
                            av.seal(&authv).map_err(|f| self.cap_fault(f, pc, fi))?
                        }
                        CapOp2Kind::Unseal => {
                            av.unseal(&authv).map_err(|f| self.cap_fault(f, pc, fi))?
                        }
                    };
                    let t = self.taints[rb + a as usize];
                    self.regs[rb + dst as usize] = Value::Cap(r);
                    self.taints[rb + dst as usize] = t;
                    femit!(self, sink, pc, OpClass::CapManip, RetiredInfo::CapManip);
                    ip += 1;
                }
                Op::Halt { code } => {
                    let c = match code {
                        Some(r) => self.as_int(rb + r as usize, pc)?,
                        None => 0,
                    };
                    femit!(
                        self,
                        sink,
                        pc,
                        OpClass::IntAlu,
                        RetiredInfo::Simple(InstClass::Dp)
                    );
                    self.exit = Some(c);
                }
                // Profiling marker: no retired instruction, no cycles —
                // just tell the sink the attribution context changed.
                Op::Region { id } => {
                    sink.region(id);
                    ip += 1;
                }
            }
        }
        Ok(RunResult {
            retired: self.retired,
            exit_code: self.exit.unwrap_or(0),
            mem_stats: self.mem.stats(),
            heap_stats: self.heap.stats(),
            pages_touched: self.mem.pages_touched(),
            classes: self.classes,
        })
    }

    // ---- Runtime intrinsics (same synthetic streams as the reference) -----

    fn run_malloc<S: EventSink>(
        &mut self,
        dst_idx: usize,
        size: u64,
        pc: u64,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        // Same-bounds PLT stub: no PCC resteer (see the reference for
        // the Morello rationale).
        let pcc = false;
        femit!(
            self,
            sink,
            pc,
            OpClass::Branch,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_MALLOC_PC,
                pcc_change: pcc,
            }
        );
        let alloc = self
            .heap
            .malloc(size)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;

        let class = HeapAllocator::size_class(size);
        let meta = self.prog.map.heap.0 + (class / 16 % META_LINES) * 64;
        for i in 0..14u64 {
            femit!(
                self,
                sink,
                RT_MALLOC_PC + i * 4,
                OpClass::Runtime,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 56,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 60,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: true,
            }
        );
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 64,
            OpClass::Runtime,
            RetiredInfo::Store {
                addr: meta + 16,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            for i in 0..10u64 {
                femit!(
                    self,
                    sink,
                    RT_MALLOC_PC + 68 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::CapManip
                );
            }
            for i in 0..26u64 {
                femit!(
                    self,
                    sink,
                    RT_MALLOC_PC + 108 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 156,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: meta + 32,
                    size: 16,
                    is_cap: true,
                }
            );
            let revbm = self.prog.map.heap.0 + (1 << 19) + (alloc.addr >> 10 & 0x3FFFF);
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 160,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 164,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                    dep_load: true,
                }
            );
            femit!(
                self,
                sink,
                RT_MALLOC_PC + 168,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            let cap = self
                .data_root
                .set_bounds_exact(alloc.addr, alloc.padded)
                .expect("allocator guarantees representable bounds");
            self.regs[dst_idx] = Value::Cap(cap);
        } else {
            self.regs[dst_idx] = Value::Int(alloc.addr);
        }
        self.taints[dst_idx] = 0;
        femit!(
            self,
            sink,
            RT_MALLOC_PC + 92,
            OpClass::Runtime,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    fn run_free<S: EventSink>(
        &mut self,
        addr: u64,
        pc: u64,
        sink: &mut S,
    ) -> Result<(), InterpError> {
        let pcc = false; // see run_malloc
        femit!(
            self,
            sink,
            pc,
            OpClass::Branch,
            RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: RT_FREE_PC,
                pcc_change: pcc,
            }
        );
        let outcome = self
            .heap
            .free(&mut self.mem, addr)
            .map_err(|e| InterpError::BadProgram { msg: e.to_string() })?;
        for i in 0..8u64 {
            femit!(
                self,
                sink,
                RT_FREE_PC + i * 4,
                OpClass::Runtime,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let cap_meta = self.cap_abi;
        let meta_sz: u8 = if cap_meta { 16 } else { 8 };
        let meta = self.prog.map.heap.0 + (addr / 64 % META_LINES) * 64;
        femit!(
            self,
            sink,
            RT_FREE_PC + 32,
            OpClass::Runtime,
            RetiredInfo::Load {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
                dep_load: false,
            }
        );
        femit!(
            self,
            sink,
            RT_FREE_PC + 36,
            OpClass::Runtime,
            RetiredInfo::Store {
                addr: meta,
                size: meta_sz,
                is_cap: cap_meta,
            }
        );
        if self.cap_abi {
            for i in 0..4u64 {
                femit!(
                    self,
                    sink,
                    RT_FREE_PC + 40 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::CapManip
                );
            }
            for i in 0..6u64 {
                femit!(
                    self,
                    sink,
                    RT_FREE_PC + 56 + i * 4,
                    OpClass::Runtime,
                    RetiredInfo::Simple(InstClass::Dp)
                );
            }
            let revbm = self.prog.map.heap.0 + (1 << 19) + (addr >> 10 & 0x3FFFF);
            femit!(
                self,
                sink,
                RT_FREE_PC + 80,
                OpClass::Runtime,
                RetiredInfo::Load {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                    dep_load: false,
                }
            );
            femit!(
                self,
                sink,
                RT_FREE_PC + 84,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm,
                    size: 8,
                    is_cap: false,
                }
            );
            femit!(
                self,
                sink,
                RT_FREE_PC + 88,
                OpClass::Runtime,
                RetiredInfo::Store {
                    addr: revbm + 64,
                    size: 8,
                    is_cap: false,
                }
            );
        }
        if let Some(sweep) = outcome.sweep {
            self.emit_sweep(&sweep, sink);
        }
        femit!(
            self,
            sink,
            RT_FREE_PC + 48,
            OpClass::Runtime,
            RetiredInfo::Branch {
                kind: BranchKind::Return,
                taken: true,
                target: pc + 4,
                pcc_change: pcc,
            }
        );
        Ok(())
    }

    fn emit_sweep<S: EventSink>(&mut self, sweep: &SweepOutcome, sink: &mut S) {
        for i in 0..4u64 {
            femit!(
                self,
                sink,
                RT_SWEEP_PC + i * 4,
                OpClass::Meta,
                RetiredInfo::Simple(InstClass::Dp)
            );
        }
        let mut page_boundary = 0u64;
        for (i, acc) in sweep.accesses.iter().enumerate() {
            let pc = RT_SWEEP_PC + 16 + (i as u64 % 48) * 4;
            if acc.write {
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Meta,
                    RetiredInfo::Store {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                    }
                );
            } else {
                femit!(
                    self,
                    sink,
                    pc,
                    OpClass::Meta,
                    RetiredInfo::Load {
                        addr: acc.addr,
                        size: acc.size,
                        is_cap: acc.is_cap,
                        dep_load: false,
                    }
                );
            }
            femit!(
                self,
                sink,
                pc + 4,
                OpClass::Meta,
                RetiredInfo::Simple(InstClass::Dp)
            );
            if acc.addr >> 12 != page_boundary {
                page_boundary = acc.addr >> 12;
                femit!(
                    self,
                    sink,
                    RT_SWEEP_PC + 16 + 49 * 4,
                    OpClass::Meta,
                    RetiredInfo::Branch {
                        kind: BranchKind::Immediate,
                        taken: true,
                        target: RT_SWEEP_PC + 16,
                        pcc_change: false,
                    }
                );
            }
        }
    }
}
