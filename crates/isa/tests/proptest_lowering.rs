//! Property tests over random generated programs: the three lowerings
//! must agree architecturally, and lowering/interpreter invariants must
//! hold for arbitrary (valid) programs — not just the hand-written
//! workloads.

use cheri_isa::{
    lower, Abi, Cond, EventSink, GenericProgram, Interp, InterpConfig, MemSize, NullSink, OpClass,
    ProgramBuilder, RetiredEvent, RetiredInfo,
};
use proptest::prelude::*;

/// A tiny random "program specification" that the builder turns into a
/// structurally valid program: a sequence of operations over a bounded
/// arena and a few scalar registers.
#[derive(Clone, Debug)]
enum Op {
    AddConst(u8),
    Mix,
    StoreSlot(u8),
    LoadSlot(u8),
    StorePtrSlot(u8),
    LoadPtrSlot(u8),
    AllocTouch(u16),
    LoopAccum(u8),
    CallHelper,
    BranchOnBit(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddConst),
        Just(Op::Mix),
        (0u8..16).prop_map(Op::StoreSlot),
        (0u8..16).prop_map(Op::LoadSlot),
        (0u8..8).prop_map(Op::StorePtrSlot),
        (0u8..8).prop_map(Op::LoadPtrSlot),
        (16u16..2000).prop_map(Op::AllocTouch),
        (1u8..20).prop_map(Op::LoopAccum),
        Just(Op::CallHelper),
        (0u8..8).prop_map(Op::BranchOnBit),
    ]
}

/// Builds a program realising the op sequence under the given ABI.
fn realise(ops: &[Op], abi: Abi) -> GenericProgram {
    let mut b = ProgramBuilder::new("prop", abi);
    let ps = b.ptr_size() as i64;
    // Scratch global: 16 integer slots then 8 pointer slots.
    let g = b.global_zero("scratch", 128 + 8 * abi.pointer_size());
    let helper = b.function("helper", 1, |f| {
        let r = f.vreg();
        f.eor(r, f.arg(0), 0x5a5ai64);
        f.lsr(r, r, 1);
        f.ret(Some(r));
    });
    let ops = ops.to_vec();
    let main = b.function("main", 0, |f| {
        let acc = f.vreg();
        f.mov_imm(acc, 0x1234);
        let base = f.vreg();
        f.lea_global(base, g, 0);
        // One live heap pointer at all times.
        let heap = f.vreg();
        f.malloc(heap, 64);
        f.store_ptr(heap, base, 128);

        for op in &ops {
            match op {
                Op::AddConst(k) => f.add(acc, acc, *k as i64),
                Op::Mix => {
                    f.eor(acc, acc, 0x9e37i64);
                    f.lsr(acc, acc, 1);
                    f.add(acc, acc, 3);
                }
                Op::StoreSlot(s) => {
                    f.store_int(acc, base, (*s as i64) * 8, MemSize::S8);
                }
                Op::LoadSlot(s) => {
                    let v = f.vreg();
                    f.load_int(v, base, (*s as i64) * 8, MemSize::S8);
                    f.add(acc, acc, v);
                }
                Op::StorePtrSlot(s) => {
                    let p = f.vreg();
                    f.load_ptr(p, base, 128);
                    f.store_ptr(p, base, 128 + (*s as i64) * ps);
                }
                Op::LoadPtrSlot(s) => {
                    let p = f.vreg();
                    f.load_ptr(p, base, 128 + (*s as i64) * ps);
                    // The slot may be null; only fold the address.
                    let a = f.vreg();
                    f.ptr_to_int(a, p);
                    let lowbits = f.vreg();
                    f.and(lowbits, a, 15);
                    f.add(acc, acc, lowbits);
                }
                Op::AllocTouch(sz) => {
                    let p = f.vreg();
                    f.malloc(p, *sz as u64);
                    f.store_int(acc, p, 0, MemSize::S8);
                    let v = f.vreg();
                    f.load_int(v, p, 0, MemSize::S8);
                    f.eor(acc, acc, v);
                    f.free(p);
                }
                Op::LoopAccum(n) => {
                    let lim = f.vreg();
                    f.mov_imm(lim, *n as u64);
                    f.for_loop(0, lim, 1, |f, i| {
                        f.add(acc, acc, i);
                    });
                }
                Op::CallHelper => {
                    let r = f.vreg();
                    f.call(helper, &[acc], Some(r));
                    f.add(acc, acc, r);
                }
                Op::BranchOnBit(bit) => {
                    let t = f.vreg();
                    f.lsr(t, acc, *bit as i64);
                    f.and(t, t, 1);
                    let skip = f.label();
                    f.br(Cond::Eq, t, 0, skip);
                    f.eor(acc, acc, 0xffi64);
                    f.bind(skip);
                }
            }
        }
        f.and(acc, acc, 0xFFFF_FFFFi64);
        f.halt_code(acc);
    });
    b.set_entry(main);
    b.build()
}

#[derive(Default)]
struct Audit {
    events: u64,
    cap_mem: u64,
    int_ptr_mem: u64,
    pcc: u64,
}

impl EventSink for Audit {
    fn retire(&mut self, ev: RetiredEvent) {
        self.events += 1;
        match ev.info {
            RetiredInfo::Load { is_cap, size, .. } | RetiredInfo::Store { is_cap, size, .. } => {
                if is_cap {
                    self.cap_mem += 1;
                    assert_eq!(size, 16, "capability accesses are 16 bytes");
                } else if size == 8 {
                    self.int_ptr_mem += 1;
                }
            }
            RetiredInfo::Branch { pcc_change, .. } if pcc_change => {
                self.pcc += 1;
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fundamental reproduction invariant: all three lowerings of a
    /// random program compute the same architectural result.
    #[test]
    fn three_lowerings_agree(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut result = None;
        for abi in Abi::ALL {
            let prog = lower(&realise(&ops, abi));
            let r = Interp::new(InterpConfig::default())
                .run(&prog, &mut Audit::default())
                .expect("generated programs are valid");
            match result {
                None => result = Some(r.exit_code),
                Some(prev) => prop_assert_eq!(prev, r.exit_code, "{} differs", abi),
            }
        }
    }

    /// Event-stream invariants: capability ABIs emit 16-byte tagged
    /// accesses where hybrid emits 8-byte integer ones; hybrid emits no
    /// capability traffic and no PCC changes; purecap retires at least as
    /// many instructions as hybrid.
    #[test]
    fn event_stream_invariants(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut audits = Vec::new();
        for abi in Abi::ALL {
            let prog = lower(&realise(&ops, abi));
            let mut audit = Audit::default();
            Interp::new(InterpConfig::default())
                .run(&prog, &mut audit)
                .expect("valid");
            audits.push(audit);
        }
        let (hybrid, benchmark, purecap) = (&audits[0], &audits[1], &audits[2]);
        prop_assert_eq!(hybrid.cap_mem, 0, "hybrid must not move capabilities");
        prop_assert_eq!(hybrid.pcc, 0);
        prop_assert_eq!(benchmark.pcc, 0, "benchmark ABI uses integer jumps");
        prop_assert!(purecap.cap_mem > 0, "the live heap pointer guarantees cap traffic");
        prop_assert_eq!(purecap.cap_mem, benchmark.cap_mem, "same memory profile");
        prop_assert_eq!(purecap.events, benchmark.events, "same instruction stream");
        prop_assert!(purecap.events >= hybrid.events || hybrid.events - purecap.events < purecap.events / 10,
            "purecap should not retire substantially fewer instructions");
    }

    /// The opcode-class attribution partitions the retired stream: on
    /// every ABI the eight per-class counts sum exactly to the total
    /// retired-instruction count, and the capability-only classes stay
    /// empty where the ABI moves no capabilities.
    #[test]
    fn class_counts_partition_retired(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for abi in Abi::ALL {
            let prog = lower(&realise(&ops, abi));
            let r = Interp::new(InterpConfig::default())
                .run(&prog, &mut NullSink)
                .expect("generated programs are valid");
            prop_assert_eq!(
                r.classes.total(), r.retired,
                "{}: class counts must partition the retired stream", abi
            );
            // Every program allocates, so the runtime class is never empty.
            prop_assert!(r.classes.get(OpClass::Runtime) > 0, "{}", abi);
            if abi == Abi::Hybrid {
                prop_assert_eq!(r.classes.get(OpClass::MemCap), 0, "hybrid moves no capabilities");
                prop_assert_eq!(r.classes.get(OpClass::CapBranch), 0, "hybrid never changes PCC");
            } else {
                prop_assert!(r.classes.get(OpClass::MemCap) > 0,
                    "{}: the live heap pointer guarantees capability traffic", abi);
            }
        }
    }

    /// Lowering is deterministic and its label table stays in bounds.
    #[test]
    fn lowering_is_deterministic(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        for abi in Abi::ALL {
            let a = lower(&realise(&ops, abi));
            let b = lower(&realise(&ops, abi));
            prop_assert_eq!(&a, &b);
            for f in &a.funcs {
                for &l in &f.labels {
                    prop_assert!(l as usize <= f.insts.len());
                }
            }
        }
    }
}
