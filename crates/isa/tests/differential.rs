//! The differential-testing harness locking the pre-decoded fast
//! engine against the reference executor.
//!
//! [`Interp::run`] dispatches through the decoded-arena fast path
//! (`fastexec`); [`Interp::run_reference`] walks the original
//! per-instruction decode `match` (`refexec`). The two must be
//! *observationally identical*: the same retired-event stream (payloads
//! **and** the decode-time [`OpClass`] hints), the same region
//! crossings, the same [`RunResult`] down to every architectural
//! statistic, and the same [`InterpError`] on every failing program.
//!
//! Coverage:
//!
//! * every registry workload × every supported ABI at test scale
//!   (22 workloads, 66 cells);
//! * ≥1000 proptest-generated random programs (350 specs × 3 ABIs);
//! * the error paths: fuel exhaustion, unrepresentable-bounds traps,
//!   and sealed-entry violations.

use cheri_isa::{
    lower, Abi, CapOpKind, Cond, EventSink, GlobalDef, Interp, InterpConfig, InterpError, MemSize,
    OpClass, Program, ProgramBuilder, PtrInit, RetiredEvent, RunResult,
};
use cheri_workloads::{registry, Scale};
use proptest::prelude::*;

/// One observable emission from a run: a retired event with its class
/// hint, or a region-marker crossing.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Obs {
    Retire(RetiredEvent, OpClass),
    Region(u32),
}

/// Records the full observation stream. The plain [`retire`] entry
/// point (used by the reference engine) recomputes the class from the
/// event, while [`retire_classified`] (used by the fast engine) records
/// the decode-time hint — so stream equality also proves every
/// pre-computed class matches a fresh classification.
#[derive(Default)]
struct Recorder {
    obs: Vec<Obs>,
}

impl EventSink for Recorder {
    fn retire(&mut self, ev: RetiredEvent) {
        self.obs.push(Obs::Retire(ev, OpClass::of(ev.pc, &ev.info)));
    }
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        self.obs.push(Obs::Retire(ev, class));
    }
    fn region(&mut self, id: u32) {
        self.obs.push(Obs::Region(id));
    }
}

fn assert_streams_eq(reference: &[Obs], fast: &[Obs], ctx: &str) {
    for (i, (r, f)) in reference.iter().zip(fast.iter()).enumerate() {
        assert_eq!(
            r, f,
            "{ctx}: first event-stream divergence at index {i}: reference {r:?} vs fast {f:?}"
        );
    }
    assert_eq!(
        reference.len(),
        fast.len(),
        "{ctx}: event-stream lengths differ (reference {} vs fast {})",
        reference.len(),
        fast.len()
    );
}

/// Runs `prog` on both engines and asserts observational identity;
/// returns the (shared) outcome so callers can make further
/// per-scenario assertions.
fn diff_run(prog: &Program, cfg: InterpConfig, ctx: &str) -> Result<RunResult, InterpError> {
    let interp = Interp::new(cfg);
    let mut ref_sink = Recorder::default();
    let ref_out = interp.run_reference(prog, &mut ref_sink);
    let mut fast_sink = Recorder::default();
    let fast_out = interp.run(prog, &mut fast_sink);

    assert_streams_eq(&ref_sink.obs, &fast_sink.obs, ctx);
    match (&ref_out, &fast_out) {
        (Ok(r), Ok(f)) => {
            // RunResult aggregates every architectural statistic
            // (retired, exit code, class counts, memory/heap stats,
            // footprint); the Debug form covers all fields.
            assert_eq!(
                format!("{r:?}"),
                format!("{f:?}"),
                "{ctx}: architectural results differ"
            );
        }
        (Err(r), Err(f)) => {
            assert_eq!(r, f, "{ctx}: engines fail with different errors");
        }
        _ => {
            panic!("{ctx}: engines disagree on success: reference {ref_out:?} vs fast {fast_out:?}")
        }
    }
    fast_out
}

/// Every workload in the registry, on every ABI it supports, produces a
/// bit-identical run on both engines.
#[test]
fn all_workloads_and_abis_are_bit_identical() {
    let workloads = registry();
    assert_eq!(workloads.len(), 22, "full registry coverage expected");
    let mut cells = 0;
    for w in &workloads {
        for abi in Abi::ALL {
            if !w.supports(abi) {
                continue;
            }
            let prog = lower(&w.build(abi, Scale::Test));
            let out = diff_run(&prog, InterpConfig::default(), &format!("{}/{abi}", w.key));
            let res = out.expect("registry workloads complete");
            assert_eq!(
                res.classes.total(),
                res.retired,
                "{}/{abi}: classes partition retired",
                w.key
            );
            cells += 1;
        }
    }
    assert!(cells >= 60, "expected the full matrix, ran {cells} cells");
}

/// A compact random-program specification, realised per-ABI through the
/// builder (the same technique as `proptest_lowering.rs`, with heavier
/// emphasis on control flow and allocator traffic — the paths the
/// decoded arena rewrites most).
#[derive(Clone, Debug)]
enum Op {
    AddConst(u8),
    Mix,
    StoreSlot(u8),
    LoadSlot(u8),
    AllocTouch(u16),
    AllocHold(u16),
    LoopAccum(u8),
    CallHelper,
    BranchOnBit(u8),
    PtrWalk(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddConst),
        Just(Op::Mix),
        (0u8..16).prop_map(Op::StoreSlot),
        (0u8..16).prop_map(Op::LoadSlot),
        (16u16..2000).prop_map(Op::AllocTouch),
        (16u16..512).prop_map(Op::AllocHold),
        (1u8..24).prop_map(Op::LoopAccum),
        Just(Op::CallHelper),
        (0u8..8).prop_map(Op::BranchOnBit),
        (1u8..6).prop_map(Op::PtrWalk),
    ]
}

fn realise(ops: &[Op], abi: Abi) -> Program {
    let mut b = ProgramBuilder::new("diff", abi);
    let g = b.global_zero("scratch", 256);
    let helper = b.function("helper", 1, |f| {
        let r = f.vreg();
        f.eor(r, f.arg(0), 0x5a5ai64);
        f.lsr(r, r, 1);
        f.ret(Some(r));
    });
    let ops = ops.to_vec();
    let main = b.function("main", 0, |f| {
        let acc = f.vreg();
        f.mov_imm(acc, 0x1234);
        let base = f.vreg();
        f.lea_global(base, g, 0);
        let held = f.vreg();
        f.malloc(held, 64);
        for op in &ops {
            match op {
                Op::AddConst(k) => f.add(acc, acc, *k as i64),
                Op::Mix => {
                    f.eor(acc, acc, 0x9e37i64);
                    f.lsr(acc, acc, 1);
                    f.add(acc, acc, 3);
                }
                Op::StoreSlot(s) => f.store_int(acc, base, (*s as i64) * 8, MemSize::S8),
                Op::LoadSlot(s) => {
                    let v = f.vreg();
                    f.load_int(v, base, (*s as i64) * 8, MemSize::S8);
                    f.add(acc, acc, v);
                }
                Op::AllocTouch(sz) => {
                    let p = f.vreg();
                    f.malloc(p, *sz as u64);
                    f.store_int(acc, p, 0, MemSize::S8);
                    let v = f.vreg();
                    f.load_int(v, p, 0, MemSize::S8);
                    f.eor(acc, acc, v);
                    f.free(p);
                }
                Op::AllocHold(sz) => {
                    // Replace the held allocation without freeing the
                    // old one: leaks exercise end-of-run heap stats.
                    f.malloc(held, *sz as u64);
                    f.store_int(acc, held, 8, MemSize::S8);
                }
                Op::LoopAccum(n) => {
                    let lim = f.vreg();
                    f.mov_imm(lim, *n as u64);
                    f.for_loop(0, lim, 1, |f, i| {
                        f.add(acc, acc, i);
                    });
                }
                Op::CallHelper => {
                    let r = f.vreg();
                    f.call(helper, &[acc], Some(r));
                    f.add(acc, acc, r);
                }
                Op::BranchOnBit(bit) => {
                    let t = f.vreg();
                    f.lsr(t, acc, *bit as i64);
                    f.and(t, t, 1);
                    let skip = f.label();
                    f.br(Cond::Eq, t, 0, skip);
                    f.eor(acc, acc, 0xffi64);
                    f.bind(skip);
                }
                Op::PtrWalk(n) => {
                    // A short pointer-chase through the held block to
                    // exercise dependent-load tracking in both engines.
                    f.store_ptr(held, held, 0);
                    let p = f.vreg();
                    f.mov(p, held);
                    for _ in 0..*n {
                        f.load_ptr(p, p, 0);
                    }
                    let a = f.vreg();
                    f.ptr_to_int(a, p);
                    f.and(a, a, 0xff);
                    f.add(acc, acc, a);
                }
            }
        }
        f.and(acc, acc, 0xFFFF_FFFFi64);
        f.halt_code(acc);
    });
    b.set_entry(main);
    lower(&b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(350))]

    /// 350 random specs × 3 ABIs = 1050 generated programs, each run on
    /// both engines and required to match event-for-event.
    #[test]
    fn random_programs_are_bit_identical(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        for abi in Abi::ALL {
            let prog = realise(&ops, abi);
            diff_run(&prog, InterpConfig::default(), &format!("random/{abi}"))
                .expect("generated programs are valid");
        }
    }
}

// ---- Superblock edge cases -------------------------------------------------
//
// Named with a `superblock_` prefix so CI can run exactly this group
// under `--release` (`cargo test --release superblock_`): they pin the
// partition-boundary behaviours of the direct-threaded engine — branch
// targets splitting straight-line runs, the fuel cutoff landing inside
// a block's interior, and a fault at a block's final interior op.

/// A backward branch into the middle of what would otherwise be one
/// straight-line run: the target must be a block leader, and chaining
/// to it (rather than falling through) must match the reference
/// event-for-event.
#[test]
fn superblock_branch_into_former_interior_is_identical() {
    for abi in Abi::ALL {
        let mut b = ProgramBuilder::new("midblock", abi);
        let main = b.function("main", 0, |f| {
            let acc = f.vreg();
            let n = f.vreg();
            f.mov_imm(acc, 7);
            f.mov_imm(n, 3);
            // Straight-line prefix; `mid` splits it into two blocks.
            f.add(acc, acc, 11);
            f.eor(acc, acc, 0x3c3ci64);
            let mid = f.here();
            f.add(acc, acc, 5);
            f.lsr(acc, acc, 1);
            f.eor(acc, acc, 0x55i64);
            f.sub(n, n, 1u64);
            f.br(Cond::Ne, n, 0u64, mid);
            f.and(acc, acc, 0xFFFFi64);
            f.halt_code(acc);
        });
        b.set_entry(main);
        let prog = b.lower();
        let res = diff_run(&prog, InterpConfig::default(), &format!("midblock/{abi}"))
            .expect("program completes");
        assert_eq!(res.classes.total(), res.retired);
    }
}

/// Sweeps the fuel limit across every position of a long straight-line
/// block so the cutoff lands before, inside (every interior offset),
/// and after it. The fast engine's block-margin check must delegate to
/// the per-op path and report the identical truncated stream and
/// `FuelExhausted { retired }` as the reference.
#[test]
fn superblock_fuel_exhaustion_mid_block_is_identical() {
    for abi in Abi::ALL {
        let mut b = ProgramBuilder::new("fuelmid", abi);
        let main = b.function("main", 0, |f| {
            let acc = f.vreg();
            f.mov_imm(acc, 1);
            for k in 0..24 {
                f.add(acc, acc, k + 1);
            }
            f.halt_code(acc);
        });
        b.set_entry(main);
        let prog = b.lower();
        let mut exhausted = 0;
        for max in 1..40u64 {
            let cfg = InterpConfig {
                max_insts: max,
                ..InterpConfig::default()
            };
            match diff_run(&prog, cfg, &format!("fuelmid/{abi}/max{max}")) {
                Ok(_) => {}
                Err(InterpError::FuelExhausted { retired }) => {
                    // The entry prologue retires before the first fuel
                    // check, so the cutoff count can exceed a tiny
                    // budget; it can never undershoot it.
                    assert!(
                        retired >= max,
                        "{abi}: cutoff {retired} undershoots budget {max}"
                    );
                    exhausted += 1;
                }
                Err(other) => panic!("{abi}/max{max}: unexpected error {other:?}"),
            }
        }
        assert!(
            exhausted > 20,
            "{abi}: the sweep must cross the block interior ({exhausted} cutoffs)"
        );
    }
}

/// A bounds fault raised by the *last* interior op of a block (with a
/// terminator behind it that never runs): the fast engine must stop at
/// the same op, with the same truncated stream and the same fault.
#[test]
fn superblock_fault_at_block_last_op_is_identical() {
    let mut b = ProgramBuilder::new("lastop", Abi::Purecap);
    let main = b.function("main", 0, |f| {
        let p = f.vreg();
        f.malloc(p, 16);
        let acc = f.vreg();
        f.mov_imm(acc, 2);
        f.add(acc, acc, 40);
        // Out of bounds: offset 64 in a 16-byte allocation. This is the
        // block's final interior op; the following halt never retires.
        let v = f.vreg();
        f.load_int(v, p, 64, MemSize::S8);
        f.halt_code(v);
    });
    b.set_entry(main);
    let prog = b.lower();
    let err = diff_run(&prog, InterpConfig::default(), "lastop/purecap")
        .expect_err("the out-of-bounds load must fault");
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::BoundsViolation)
        }
        other => panic!("expected bounds fault, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The engine's per-block class pre-sums, folded by execution
    /// count at run end, must equal a per-op accumulation over the
    /// actual emitted event stream — checked directly against the
    /// recorded events, independent of the reference engine.
    #[test]
    fn superblock_class_presums_match_per_op_accumulation(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        for abi in Abi::ALL {
            let prog = realise(&ops, abi);
            let mut sink = Recorder::default();
            let res = Interp::new(InterpConfig::default())
                .run(&prog, &mut sink)
                .expect("generated programs are valid");
            let mut per_op = cheri_isa::ClassCounts::new();
            for o in &sink.obs {
                if let Obs::Retire(ev, _) = o {
                    per_op.bump(OpClass::of(ev.pc, &ev.info));
                }
            }
            prop_assert_eq!(res.classes, per_op, "{}: pre-summed fold != per-op accumulation", abi);
            prop_assert_eq!(res.classes.total(), res.retired);
        }
    }
}

/// Fuel exhaustion is reported identically: same error variant, same
/// retired count at the cutoff, same (truncated) event stream.
#[test]
fn fuel_exhaustion_is_identical() {
    for abi in Abi::ALL {
        let mut b = ProgramBuilder::new("fuel", abi);
        let main = b.function("main", 0, |f| {
            let acc = f.vreg();
            f.mov_imm(acc, 1);
            let l = f.here();
            f.add(acc, acc, 1);
            f.jump(l);
            f.halt();
        });
        b.set_entry(main);
        let prog = b.lower();
        let err = diff_run(
            &prog,
            InterpConfig {
                max_insts: 1000,
                ..InterpConfig::default()
            },
            &format!("fuel/{abi}"),
        )
        .expect_err("the loop must exhaust its budget");
        assert!(
            matches!(err, InterpError::FuelExhausted { retired } if retired >= 1000),
            "{abi}: {err:?}"
        );
    }
}

/// An exact-bounds request on a misaligned, too-large region is not
/// representable in the compressed encoding; both engines must raise
/// the same `RepresentabilityLoss` fault at the same pc.
#[test]
fn unrepresentable_bounds_trap_is_identical() {
    let mut b = ProgramBuilder::new("repr", Abi::Purecap);
    let main = b.function("main", 0, |f| {
        let p = f.vreg();
        f.malloc(p, 4 << 20);
        let off = f.vreg();
        f.cap_op(CapOpKind::IncOffset, off, p, 1);
        let narrowed = f.vreg();
        f.cap_op(CapOpKind::SetBoundsExact, narrowed, off, (1i64 << 20) + 1);
        f.halt();
    });
    b.set_entry(main);
    let prog = b.lower();
    let err = diff_run(&prog, InterpConfig::default(), "repr/purecap")
        .expect_err("exact bounds on a misaligned megabyte must trap");
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::RepresentabilityLoss)
        }
        other => panic!("expected representability fault, got {other:?}"),
    }
}

/// Dereferencing a sealed capability (a sealed-entry handle used as a
/// data pointer) faults identically on both engines.
#[test]
fn sealed_entry_violation_is_identical() {
    let mut b = ProgramBuilder::new("sealed", Abi::Purecap);
    let g_auth = b.add_global(GlobalDef {
        name: "root".into(),
        size: 16,
        init: Vec::new(),
        ptr_inits: vec![(0, PtrInit::SealRoot(42))],
        is_const: false,
        align: 16,
    });
    let main = b.function("main", 0, |f| {
        let obj = f.vreg();
        f.malloc(obj, 32);
        let ap = f.vreg();
        f.lea_global(ap, g_auth, 0);
        let auth = f.vreg();
        f.load_ptr(auth, ap, 0);
        let sealed = f.vreg();
        f.seal(sealed, obj, auth);
        let r = f.vreg();
        f.load_int(r, sealed, 0, MemSize::S8);
        f.halt_code(r);
    });
    b.set_entry(main);
    let prog = cheri_isa::lower(&b.build());
    let err = diff_run(&prog, InterpConfig::default(), "sealed/purecap")
        .expect_err("loading through a sealed capability must trap");
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::SealViolation)
        }
        other => panic!("expected seal violation, got {other:?}"),
    }
}
