//! Architectural semantics tests: cross-ABI result equivalence, capability
//! enforcement, event-stream sanity.

use cheri_isa::{
    Abi, BranchKind, Cond, EventSink, Interp, InterpConfig, InterpError, MemSize, NullSink,
    ProgramBuilder, RetiredEvent, RetiredInfo,
};

/// Collects every retired event.
#[derive(Default)]
struct Collect {
    events: Vec<RetiredEvent>,
}

impl EventSink for Collect {
    fn retire(&mut self, ev: RetiredEvent) {
        self.events.push(ev);
    }
}

fn run_exit(abi: Abi, build: impl Fn(&mut ProgramBuilder)) -> u64 {
    let mut b = ProgramBuilder::new("t", abi);
    build(&mut b);
    let prog = b.lower();
    Interp::new(InterpConfig::default())
        .run(&prog, &mut NullSink)
        .unwrap()
        .exit_code
}

/// A linked-list sum: allocates nodes, chains them, walks the chain.
fn list_sum_program(b: &mut ProgramBuilder) {
    let ps = b.ptr_size() as i64;
    // node = { value: i64, next: ptr } — the pointer field must sit at a
    // pointer-aligned offset (8 under hybrid, 16 under the capability
    // ABIs), so the struct layout is ABI-specific, as in real CHERI C.
    let next_off = ps;
    let main = b.function("main", 0, |f| {
        let n = f.vreg();
        f.mov_imm(n, 50);
        let head = f.vreg();
        f.mov_imm(head, 0); // null
        let head_is_null = f.vreg();
        f.mov_imm(head_is_null, 1);
        let node_size = next_off + ps;
        f.for_loop(0, n, 1, |f, i| {
            let node = f.vreg();
            f.malloc(node, node_size);
            f.store_int(i, node, 0, MemSize::S8);
            let skip = f.label();
            let done = f.label();
            f.br(Cond::Eq, head_is_null, 1, skip);
            f.store_ptr(head, node, next_off);
            f.jump(done);
            f.bind(skip);
            // first node: next stays "null" (store a 0 int value in the
            // value slot only; leave next untouched)
            f.bind(done);
            f.mov(head, node);
            f.mov_imm(head_is_null, 0);
        });
        // Walk and sum.
        let sum = f.vreg();
        f.mov_imm(sum, 0);
        let count = f.vreg();
        f.mov_imm(count, 0);
        let cur = f.vreg();
        f.mov(cur, head);
        let loop_head = f.here();
        let out = f.label();
        f.br(Cond::Geu, count, 50, out);
        let v = f.vreg();
        f.load_int(v, cur, 0, MemSize::S8);
        f.add(sum, sum, v);
        f.add(count, count, 1);
        let more = f.label();
        f.br(Cond::Ltu, count, 50, more);
        f.jump(out);
        f.bind(more);
        f.load_ptr(cur, cur, next_off);
        f.jump(loop_head);
        f.bind(out);
        f.halt_code(sum);
    });
    b.set_entry(main);
}

#[test]
fn same_result_across_all_abis() {
    let expected: u64 = (0..50).sum();
    for abi in Abi::ALL {
        assert_eq!(
            run_exit(abi, list_sum_program),
            expected,
            "wrong result under {abi}"
        );
    }
}

#[test]
fn purecap_executes_more_instructions_than_hybrid() {
    let count = |abi: Abi| {
        let mut b = ProgramBuilder::new("t", abi);
        list_sum_program(&mut b);
        let prog = b.lower();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut NullSink)
            .unwrap()
            .retired
    };
    let h = count(Abi::Hybrid);
    let p = count(Abi::Purecap);
    let bm = count(Abi::Benchmark);
    assert!(p > h, "purecap {p} must retire more than hybrid {h}");
    assert_eq!(p, bm, "benchmark matches purecap instruction stream");
}

#[test]
fn out_of_bounds_faults_in_purecap_but_not_hybrid() {
    let build = |b: &mut ProgramBuilder| {
        let main = b.function("main", 0, |f| {
            let p = f.vreg();
            f.malloc(p, 32);
            let v = f.vreg();
            f.mov_imm(v, 1);
            // One element past the end.
            f.store_int(v, p, 32, MemSize::S8);
            f.halt();
        });
        b.set_entry(main);
    };
    // Hybrid: silent buffer overflow (the C bug CHERI exists to catch).
    assert_eq!(run_exit(Abi::Hybrid, build), 0);
    // Purecap: bounds violation.
    let mut b = ProgramBuilder::new("t", Abi::Purecap);
    build(&mut b);
    let prog = b.lower();
    let err = Interp::new(InterpConfig::default())
        .run(&prog, &mut NullSink)
        .unwrap_err();
    assert!(
        matches!(err, InterpError::Fault { .. }),
        "expected a capability fault, got {err}"
    );
}

#[test]
fn use_after_free_type_is_still_bounded() {
    // Freed memory reuse: the stale capability still has its original
    // bounds, so a *larger* overflow through it faults.
    let mut b = ProgramBuilder::new("t", Abi::Purecap);
    let main = b.function("main", 0, |f| {
        let p = f.vreg();
        f.malloc(p, 32);
        f.free(p);
        let v = f.vreg();
        f.mov_imm(v, 7);
        f.store_int(v, p, 4096, MemSize::S8);
        f.halt();
    });
    b.set_entry(main);
    let prog = b.lower();
    let err = Interp::new(InterpConfig::default())
        .run(&prog, &mut NullSink)
        .unwrap_err();
    assert!(matches!(err, InterpError::Fault { .. }));
}

#[test]
fn wild_pointer_arithmetic_clears_tag_then_faults() {
    let mut b = ProgramBuilder::new("t", Abi::Purecap);
    let main = b.function("main", 0, |f| {
        let p = f.vreg();
        f.malloc(p, 32);
        // Jump megabytes away: unrepresentable for a 32-byte object.
        let q = f.vreg();
        f.ptr_add(q, p, 0x40_0000);
        let v = f.vreg();
        f.load_int(v, q, 0, MemSize::S8);
        f.halt();
    });
    b.set_entry(main);
    let prog = b.lower();
    let err = Interp::new(InterpConfig::default())
        .run(&prog, &mut NullSink)
        .unwrap_err();
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::TagViolation);
        }
        other => panic!("expected tag violation, got {other}"),
    }
}

#[test]
fn indirect_calls_work_across_abis() {
    let build = |b: &mut ProgramBuilder| {
        let double = b.function("double", 1, |f| {
            let r = f.vreg();
            f.add(r, f.arg(0), f.arg(0));
            f.ret(Some(r));
        });
        let triple = b.function("triple", 1, |f| {
            let r = f.vreg();
            let t = f.vreg();
            f.add(t, f.arg(0), f.arg(0));
            f.add(r, t, f.arg(0));
            f.ret(Some(r));
        });
        let table = b.func_table("ops", &[double, triple]);
        let ps = b.ptr_size() as i64;
        let main = b.function("main", 0, |f| {
            let tbl = f.vreg();
            f.lea_global(tbl, table, 0);
            let x = f.vreg();
            f.mov_imm(x, 10);
            let fp = f.vreg();
            let acc = f.vreg();
            f.mov_imm(acc, 0);
            // acc = double(10) + triple(10)
            f.load_ptr(fp, tbl, 0);
            let r1 = f.vreg();
            f.call_indirect(fp, &[x], Some(r1));
            f.add(acc, acc, r1);
            f.load_ptr(fp, tbl, ps);
            let r2 = f.vreg();
            f.call_indirect(fp, &[x], Some(r2));
            f.add(acc, acc, r2);
            f.halt_code(acc);
        });
        b.set_entry(main);
    };
    for abi in Abi::ALL {
        assert_eq!(run_exit(abi, build), 50, "under {abi}");
    }
}

#[test]
fn recursion_fibonacci() {
    let build = |b: &mut ProgramBuilder| {
        let fib = b.declare("fib", 1);
        b.define(fib, |f| {
            let base = f.label();
            f.br(Cond::Ltu, f.arg(0), 2, base);
            let a = f.vreg();
            f.sub(a, f.arg(0), 1);
            let ra = f.vreg();
            f.call(fib, &[a], Some(ra));
            let bv = f.vreg();
            f.sub(bv, f.arg(0), 2);
            let rb = f.vreg();
            f.call(fib, &[bv], Some(rb));
            let s = f.vreg();
            f.add(s, ra, rb);
            f.ret(Some(s));
            f.bind(base);
            f.ret(Some(f.arg(0)));
        });
        let main = b.function("main", 0, |f| {
            let n = f.vreg();
            f.mov_imm(n, 15);
            let r = f.vreg();
            f.call(fib, &[n], Some(r));
            f.halt_code(r);
        });
        b.set_entry(main);
    };
    for abi in Abi::ALL {
        assert_eq!(run_exit(abi, build), 610, "fib(15) under {abi}");
    }
}

#[test]
fn pcc_change_only_under_purecap_and_only_cross_module() {
    let mk = |abi: Abi| {
        let mut b = ProgramBuilder::new("t", abi);
        let lib = b.module("libxml");
        let lib_fn = b.function_in(lib, "parse", 0, |f| {
            let r = f.vreg();
            f.mov_imm(r, 1);
            f.ret(Some(r));
        });
        let local_fn = b.function("helper", 0, |f| {
            let r = f.vreg();
            f.mov_imm(r, 2);
            f.ret(Some(r));
        });
        let main = b.function("main", 0, |f| {
            let a = f.vreg();
            f.call(local_fn, &[], Some(a));
            let c = f.vreg();
            f.call(lib_fn, &[], Some(c));
            f.halt();
        });
        b.set_entry(main);
        let prog = b.lower();
        let mut sink = Collect::default();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut sink)
            .unwrap();
        sink.events
    };

    let count_pcc = |evs: &[RetiredEvent]| {
        evs.iter()
            .filter(|e| {
                matches!(
                    e.info,
                    RetiredInfo::Branch {
                        pcc_change: true,
                        ..
                    }
                )
            })
            .count()
    };

    assert_eq!(count_pcc(&mk(Abi::Hybrid)), 0);
    assert_eq!(count_pcc(&mk(Abi::Benchmark)), 0);
    let purecap = mk(Abi::Purecap);
    // Cross-module call + its return = 2 PCC changes (the local call has
    // none). Note: no mallocs here.
    assert_eq!(count_pcc(&purecap), 2);
}

#[test]
fn dependent_load_hints_flag_pointer_chasing() {
    // A pointer chase marks loads dependent; an array sweep does not.
    let chase_events = {
        let mut b = ProgramBuilder::new("chase", Abi::Hybrid);
        list_sum_program(&mut b);
        let prog = b.lower();
        let mut sink = Collect::default();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut sink)
            .unwrap();
        sink.events
    };
    let dep_loads = chase_events
        .iter()
        .filter(|e| matches!(e.info, RetiredInfo::Load { dep_load: true, .. }))
        .count();
    assert!(
        dep_loads > 40,
        "list walk must produce dependent loads, got {dep_loads}"
    );

    let sweep_events = {
        let mut b = ProgramBuilder::new("sweep", Abi::Hybrid);
        let g = b.global_zero("arr", 4096);
        let main = b.function("main", 0, |f| {
            let p = f.vreg();
            f.lea_global(p, g, 0);
            let n = f.vreg();
            f.mov_imm(n, 512);
            let sum = f.vreg();
            f.mov_imm(sum, 0);
            f.for_loop(0, n, 1, |f, i| {
                let off = f.vreg();
                f.lsl(off, i, 3);
                let v = f.vreg();
                f.load_int(v, p, off, MemSize::S8);
                f.add(sum, sum, v);
            });
            f.halt_code(sum);
        });
        b.set_entry(main);
        let prog = b.lower();
        let mut sink = Collect::default();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut sink)
            .unwrap();
        sink.events
    };
    let (dep, total): (usize, usize) = sweep_events.iter().fold((0, 0), |(d, t), e| match e.info {
        RetiredInfo::Load { dep_load, .. } => (d + usize::from(dep_load), t + 1),
        _ => (d, t),
    });
    assert!(
        (dep as f64) < 0.1 * total as f64,
        "array sweep should not be flagged as pointer chasing ({dep}/{total})"
    );
}

#[test]
fn branch_events_match_control_flow() {
    let mut b = ProgramBuilder::new("t", Abi::Hybrid);
    let main = b.function("main", 0, |f| {
        let n = f.vreg();
        f.mov_imm(n, 10);
        f.for_loop(0, n, 1, |_, _| {});
        f.halt();
    });
    b.set_entry(main);
    let prog = b.lower();
    let mut sink = Collect::default();
    Interp::new(InterpConfig::default())
        .run(&prog, &mut sink)
        .unwrap();
    let branches: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match e.info {
            RetiredInfo::Branch { kind, taken, .. } => Some((kind, taken)),
            _ => None,
        })
        .collect();
    // 11 loop-condition branches (10 not taken + final taken) + 10
    // back-edges, all Immediate.
    let immediates = branches
        .iter()
        .filter(|(k, _)| *k == BranchKind::Immediate)
        .count();
    assert_eq!(immediates, 21);
    let taken = branches
        .iter()
        .filter(|(k, t)| *k == BranchKind::Immediate && *t)
        .count();
    assert_eq!(taken, 11);
}

#[test]
fn fuel_exhaustion_reports() {
    let mut b = ProgramBuilder::new("t", Abi::Hybrid);
    let main = b.function("main", 0, |f| {
        let l = f.here();
        f.jump(l); // infinite loop
        f.halt();
    });
    b.set_entry(main);
    let prog = b.lower();
    let err = Interp::new(InterpConfig {
        max_insts: 1000,
        ..InterpConfig::default()
    })
    .run(&prog, &mut NullSink)
    .unwrap_err();
    assert!(matches!(err, InterpError::FuelExhausted { retired } if retired >= 1000));
}

#[test]
fn globals_initialised_and_pointer_slots_resolve() {
    let build = |b: &mut ProgramBuilder| {
        let data = b.global_data("nums", vec![5, 0, 0, 0, 0, 0, 0, 0]); // u64 = 5
        let holder = b.add_global(cheri_isa::GlobalDef {
            name: "holder".into(),
            size: b.abi().pointer_size(),
            init: Vec::new(),
            ptr_inits: vec![(0, cheri_isa::PtrInit::Global(data, 0))],
            is_const: false,
            align: 16,
        });
        let main = b.function("main", 0, |f| {
            let h = f.vreg();
            f.lea_global(h, holder, 0);
            let p = f.vreg();
            f.load_ptr(p, h, 0);
            let v = f.vreg();
            f.load_int(v, p, 0, MemSize::S8);
            f.halt_code(v);
        });
        b.set_entry(main);
    };
    for abi in Abi::ALL {
        assert_eq!(run_exit(abi, build), 5, "under {abi}");
    }
}

#[test]
fn memory_footprint_larger_under_purecap() {
    let run = |abi: Abi| {
        let mut b = ProgramBuilder::new("t", abi);
        let ps = b.ptr_size() as i64;
        let main = b.function("main", 0, |f| {
            let n = f.vreg();
            f.mov_imm(n, 2000);
            // Allocate pointer-rich nodes: {ptr, ptr, ptr, i64}
            f.for_loop(0, n, 1, |f, _| {
                let node = f.vreg();
                f.malloc(node, 3 * ps + 8);
                f.store_ptr(node, node, 0);
                f.store_ptr(node, node, ps);
                f.store_ptr(node, node, 2 * ps);
            });
            f.halt();
        });
        b.set_entry(main);
        let prog = b.lower();
        Interp::new(InterpConfig::default())
            .run(&prog, &mut NullSink)
            .unwrap()
    };
    let h = run(Abi::Hybrid);
    let p = run(Abi::Purecap);
    assert!(
        p.heap_stats.live_bytes > h.heap_stats.live_bytes,
        "pointer-rich heap must be larger under purecap"
    );
    assert!(p.pages_touched > h.pages_touched);
}

#[test]
fn isa_level_sealing_roundtrip_and_enforcement() {
    use cheri_isa::{GlobalDef, PtrInit};
    // seal -> opaque -> unseal -> usable; and using the sealed handle
    // directly faults.
    let build = |attack: bool| {
        let mut b = ProgramBuilder::new("seal", Abi::Purecap);
        let g_auth = b.add_global(GlobalDef {
            name: "root".into(),
            size: 16,
            init: Vec::new(),
            ptr_inits: vec![(0, PtrInit::SealRoot(42))],
            is_const: false,
            align: 16,
        });
        let main = b.function("main", 0, move |f| {
            let obj = f.vreg();
            f.malloc(obj, 32);
            let v = f.vreg();
            f.mov_imm(v, 99);
            f.store_int(v, obj, 0, MemSize::S8);
            let ap = f.vreg();
            f.lea_global(ap, g_auth, 0);
            let auth = f.vreg();
            f.load_ptr(auth, ap, 0);
            let sealed = f.vreg();
            f.seal(sealed, obj, auth);
            if attack {
                let r = f.vreg();
                f.load_int(r, sealed, 0, MemSize::S8);
                f.halt_code(r);
            } else {
                let back = f.vreg();
                f.unseal(back, sealed, auth);
                let r = f.vreg();
                f.load_int(r, back, 0, MemSize::S8);
                f.halt_code(r);
            }
        });
        b.set_entry(main);
        cheri_isa::lower(&b.build())
    };
    let ok = Interp::new(InterpConfig::default())
        .run(&build(false), &mut NullSink)
        .unwrap();
    assert_eq!(ok.exit_code, 99);
    let err = Interp::new(InterpConfig::default())
        .run(&build(true), &mut NullSink)
        .unwrap_err();
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::SealViolation)
        }
        other => panic!("expected seal violation, got {other:?}"),
    }
}

#[test]
fn unseal_with_wrong_authority_faults() {
    use cheri_isa::{CapOpKind, GlobalDef, PtrInit};
    let mut b = ProgramBuilder::new("wrong-auth", Abi::Purecap);
    let g_auth = b.add_global(GlobalDef {
        name: "root".into(),
        size: 16,
        init: Vec::new(),
        ptr_inits: vec![(0, PtrInit::SealRoot(7))],
        is_const: false,
        align: 16,
    });
    let main = b.function("main", 0, |f| {
        let obj = f.vreg();
        f.malloc(obj, 32);
        let ap = f.vreg();
        f.lea_global(ap, g_auth, 0);
        let auth = f.vreg();
        f.load_ptr(auth, ap, 0);
        let sealed = f.vreg();
        f.seal(sealed, obj, auth);
        // Move the authority cursor to a different otype.
        let wrong = f.vreg();
        f.cap_op(CapOpKind::SetAddr, wrong, auth, 8);
        let back = f.vreg();
        f.unseal(back, sealed, wrong);
        f.halt();
    });
    b.set_entry(main);
    let err = Interp::new(InterpConfig::default())
        .run(&cheri_isa::lower(&b.build()), &mut NullSink)
        .unwrap_err();
    match err {
        InterpError::Fault { fault, .. } => {
            assert_eq!(fault.kind, cheri_cap::FaultKind::OtypeMismatch)
        }
        other => panic!("expected otype mismatch, got {other:?}"),
    }
}
