//! Dispatch micro-benchmarks: the per-op match-loop engine (the
//! reference executor) against the direct-threaded superblock engine
//! (fn-pointer table, fused micro-op blocks) on the same programs.
//!
//! Three shapes bracket the engine's behaviour: a long straight-line
//! ALU body (interior dispatch dominates), a tight branchy loop (block
//! transitions dominate), and a strided load/store loop (the memory
//! substrate dominates). Throughput is reported in retired
//! instructions per second, so the two engines are directly comparable
//! per shape.

use cheri_isa::{Abi, Cond, Interp, InterpConfig, MemSize, NullSink, Program, ProgramBuilder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn alu_program(abi: Abi) -> Program {
    let mut b = ProgramBuilder::new("alu", abi);
    let main = b.function("main", 0, |f| {
        let i = f.vreg();
        let acc = f.vreg();
        let t = f.vreg();
        f.mov_imm(i, 2_000);
        f.mov_imm(acc, 1);
        f.mov_imm(t, 7);
        let top = f.here();
        for _ in 0..50 {
            f.add(acc, acc, t);
            f.eor(acc, acc, 0x5555);
            f.lsl(t, acc, 3u64);
            f.sub(t, t, acc);
        }
        f.sub(i, i, 1u64);
        f.br(Cond::Ne, i, 0u64, top);
        f.halt();
    });
    b.set_entry(main);
    b.lower()
}

fn branchy_program(abi: Abi) -> Program {
    let mut b = ProgramBuilder::new("branchy", abi);
    let main = b.function("main", 0, |f| {
        let i = f.vreg();
        let acc = f.vreg();
        f.mov_imm(i, 120_000);
        f.mov_imm(acc, 0);
        let top = f.here();
        f.add(acc, acc, i);
        f.sub(i, i, 1u64);
        f.br(Cond::Ne, i, 0u64, top);
        f.halt();
    });
    b.set_entry(main);
    b.lower()
}

fn mem_program(abi: Abi) -> Program {
    let mut b = ProgramBuilder::new("mem", abi);
    let buf = b.global_zero("buf", 64 * 1024);
    let main = b.function("main", 0, |f| {
        let i = f.vreg();
        let p = f.vreg();
        let t = f.vreg();
        let acc = f.vreg();
        f.mov_imm(i, 30_000);
        f.lea_global(p, buf, 0);
        f.mov_imm(acc, 3);
        let top = f.here();
        for k in 0..2 {
            f.load_int(t, p, k * 4096, MemSize::S8);
            f.add(acc, acc, t);
            f.store_int(acc, p, k * 4096 + 8, MemSize::S8);
        }
        f.sub(i, i, 1u64);
        f.br(Cond::Ne, i, 0u64, top);
        f.halt();
    });
    b.set_entry(main);
    b.lower()
}

fn retired_count(prog: &Program) -> u64 {
    Interp::new(InterpConfig::default())
        .run(prog, &mut NullSink)
        .expect("bench programs complete")
        .retired
}

type ShapeBuilder = fn(Abi) -> Program;

fn bench_dispatch(c: &mut Criterion) {
    let shapes: [(&str, ShapeBuilder); 3] = [
        ("alu_straightline", alu_program),
        ("branchy_loop", branchy_program),
        ("mem_strided", mem_program),
    ];
    for (name, build) in shapes {
        let mut g = c.benchmark_group(name);
        for abi in [Abi::Hybrid, Abi::Purecap] {
            let prog = build(abi);
            g.throughput(Throughput::Elements(retired_count(&prog)));
            g.bench_function(format!("match_loop/{abi}"), |b| {
                let interp = Interp::new(InterpConfig::default());
                b.iter(|| interp.run_reference(&prog, &mut NullSink).unwrap())
            });
            g.bench_function(format!("fn_ptr_superblocks/{abi}"), |b| {
                let interp = Interp::new(InterpConfig::default());
                b.iter(|| interp.run(&prog, &mut NullSink).unwrap())
            });
        }
        g.finish();
    }
}

criterion_group!(dispatch, bench_dispatch);
criterion_main!(dispatch);
