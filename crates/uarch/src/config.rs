//! Microarchitectural configuration.

use crate::cache::CacheGeometry;
use serde::{Deserialize, Serialize};

/// Full configuration of the timing model.
///
/// [`UarchConfig::neoverse_n1_morello`] reproduces the paper's platform:
/// a 2.5 GHz quad-issue out-of-order core with 64 KiB 4-way L1 caches,
/// a 1 MiB 8-way private L2, a 1 MiB shared last-level cache, and the
/// three Morello CHERI artefacts switched to their prototype (costly)
/// settings. [`UarchConfig::projected_cheri_native`] switches them off,
/// modelling the "future CHERI-native microarchitecture" the paper's §5
/// argues for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UarchConfig {
    /// Core clock in GHz (converts cycles to seconds in reports).
    pub clock_ghz: f64,
    /// Issue/retire slots per cycle.
    pub issue_width: u32,

    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified private L2 geometry.
    pub l2: CacheGeometry,
    /// Shared last-level cache geometry.
    pub llc: CacheGeometry,

    /// L1 load-to-use latency (cycles).
    pub lat_l1: u32,
    /// L2 hit latency.
    pub lat_l2: u32,
    /// LLC hit latency.
    pub lat_llc: u32,
    /// DRAM access latency.
    pub lat_dram: u32,
    /// DRAM per-line occupancy (bandwidth model): cycles a 64-byte line
    /// keeps the memory channel busy.
    pub dram_line_cycles: u32,

    /// L1 instruction TLB entries (fully associative model).
    pub l1i_tlb_entries: u32,
    /// L1 data TLB entries.
    pub l1d_tlb_entries: u32,
    /// Unified L2 TLB entries.
    pub l2_tlb_entries: u32,
    /// L2 TLB hit penalty (cycles).
    pub lat_l2_tlb: u32,
    /// Page-table walk penalty (cycles).
    pub tlb_walk_cycles: u32,

    /// Global-history bits of the gshare predictor.
    pub gshare_bits: u32,
    /// Branch target buffer entries (indirect branches).
    pub btb_entries: u32,
    /// Return-address stack depth.
    pub ras_entries: u32,
    /// Pipeline-flush penalty of a mispredicted branch (cycles).
    pub mispredict_penalty: u32,

    /// Morello artefact #1: when `false` (the prototype), a capability
    /// branch that changes PCC bounds costs a frontend resteer of
    /// [`UarchConfig::pcc_change_stall`] cycles.
    pub pcc_aware_branch_predictor: bool,
    /// Frontend stall charged per PCC-bounds-changing branch when the
    /// predictor is not PCC-aware.
    pub pcc_change_stall: u32,

    /// Store-buffer entries (64-bit each).
    pub store_buffer_entries: u32,
    /// Morello artefact #2: when `false`, a 128-bit capability store
    /// consumes two store-buffer entries.
    pub wide_cap_store_buffer: bool,

    /// Morello artefact #3 (projection only): when `true`, a capability
    /// address-increment that immediately follows an integer multiply is
    /// fused and retires for free (capability MADD).
    pub cap_madd_fusion: bool,

    /// Model the tag table explicitly: capability accesses that miss the
    /// LLC also look up the in-DRAM tag table through a dedicated tag
    /// cache (the Morello tag controller). Off by default — the baseline
    /// calibration folds average tag-controller cost into DRAM latency —
    /// and available as an extension/ablation knob.
    pub tag_table_model: bool,
    /// Tag-cache capacity in bytes (each byte covers 8 capability
    /// granules = 128 bytes of data; 32 KiB covers 4 MiB).
    pub tag_cache_bytes: u64,
    /// Extra latency of a tag-cache miss (a second DRAM access).
    pub tag_miss_penalty: u32,

    /// Memory-level parallelism of independent (streaming) misses: their
    /// exposed latency is divided by this factor.
    pub mlp_streaming: u32,
    /// Extra exposed cycles for a dependent load even on an L1 hit
    /// (pointer-chase serialisation).
    pub chase_l1_penalty: f64,
    /// Next-line prefetch on streaming L1D misses.
    pub prefetch_next_line: bool,

    /// Backend-core cost (cycles) charged per capability-manipulation
    /// instruction (single capability execution pipe).
    pub cap_manip_core_cost: f64,
    /// Backend-core cost per plain integer DP instruction (dependency
    /// hazard average).
    pub dp_core_cost: f64,
    /// Backend-core cost per floating-point instruction.
    pub vfp_core_cost: f64,
    /// Additional latency of integer multiply beyond pipelined issue.
    pub mul_extra: f64,
    /// Additional latency of integer divide.
    pub div_extra: f64,
}

impl UarchConfig {
    /// The Morello evaluation platform of the paper (§3.4): Neoverse-N1
    /// microarchitecture, 2.5 GHz, with the prototype's CHERI limitations.
    pub fn neoverse_n1_morello() -> UarchConfig {
        UarchConfig {
            clock_ghz: 2.5,
            issue_width: 4,
            l1i: CacheGeometry::new(64 << 10, 4, 64),
            l1d: CacheGeometry::new(64 << 10, 4, 64),
            l2: CacheGeometry::new(1 << 20, 8, 64),
            llc: CacheGeometry::new(1 << 20, 16, 64),
            lat_l1: 4,
            lat_l2: 9,
            lat_llc: 30,
            lat_dram: 190,
            dram_line_cycles: 6,
            l1i_tlb_entries: 48,
            l1d_tlb_entries: 48,
            l2_tlb_entries: 1280,
            lat_l2_tlb: 5,
            tlb_walk_cycles: 60,
            gshare_bits: 13,
            btb_entries: 4096,
            ras_entries: 16,
            mispredict_penalty: 11,
            pcc_aware_branch_predictor: false,
            pcc_change_stall: 13,
            store_buffer_entries: 24,
            wide_cap_store_buffer: false,
            cap_madd_fusion: false,
            tag_table_model: false,
            tag_cache_bytes: 32 << 10,
            tag_miss_penalty: 170,
            mlp_streaming: 6,
            chase_l1_penalty: 1.5,
            prefetch_next_line: true,
            cap_manip_core_cost: 0.18,
            dp_core_cost: 0.05,
            vfp_core_cost: 0.10,
            mul_extra: 1.0,
            div_extra: 9.0,
        }
    }

    /// The paper's §5 projection: the same pipeline with a PCC-aware
    /// branch predictor, a capability-wide store buffer, and a capability
    /// MADD — the "modest microarchitectural improvements".
    pub fn projected_cheri_native() -> UarchConfig {
        UarchConfig {
            pcc_aware_branch_predictor: true,
            wide_cap_store_buffer: true,
            cap_madd_fusion: true,
            // A native design also dedicates a second capability pipe.
            cap_manip_core_cost: 0.10,
            ..UarchConfig::neoverse_n1_morello()
        }
    }

    /// Returns a copy with the PCC-aware-predictor knob set.
    #[must_use]
    pub fn with_pcc_aware_bp(mut self, on: bool) -> UarchConfig {
        self.pcc_aware_branch_predictor = on;
        self
    }

    /// Returns a copy with the wide-store-buffer knob set.
    #[must_use]
    pub fn with_wide_cap_store_buffer(mut self, on: bool) -> UarchConfig {
        self.wide_cap_store_buffer = on;
        self
    }

    /// Returns a copy with the capability-MADD-fusion knob set.
    #[must_use]
    pub fn with_cap_madd_fusion(mut self, on: bool) -> UarchConfig {
        self.cap_madd_fusion = on;
        self
    }

    /// Returns a copy with the explicit tag-table model enabled.
    #[must_use]
    pub fn with_tag_table_model(mut self, on: bool) -> UarchConfig {
        self.tag_table_model = on;
        self
    }

    /// Converts a cycle count to seconds at this configuration's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }
}

impl Default for UarchConfig {
    fn default() -> UarchConfig {
        UarchConfig::neoverse_n1_morello()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_morello() {
        let c = UarchConfig::default();
        assert_eq!(c.issue_width, 4);
        assert!(!c.pcc_aware_branch_predictor);
        assert!(!c.wide_cap_store_buffer);
        assert_eq!(c.l1d.size, 64 << 10);
        assert_eq!(c.l2.ways, 8);
    }

    #[test]
    fn projection_flips_all_three_artefacts() {
        let p = UarchConfig::projected_cheri_native();
        assert!(p.pcc_aware_branch_predictor);
        assert!(p.wide_cap_store_buffer);
        assert!(p.cap_madd_fusion);
    }

    #[test]
    fn builders_compose() {
        let c = UarchConfig::neoverse_n1_morello()
            .with_pcc_aware_bp(true)
            .with_wide_cap_store_buffer(true)
            .with_cap_madd_fusion(true);
        assert!(c.pcc_aware_branch_predictor && c.wide_cap_store_buffer && c.cap_madd_fusion);
    }

    #[test]
    fn cycles_to_seconds() {
        let c = UarchConfig::neoverse_n1_morello();
        assert!((c.cycles_to_seconds(2_500_000_000) - 1.0).abs() < 1e-9);
    }
}
