//! # morello-uarch
//!
//! A Neoverse-N1-class timing model with Morello's documented CHERI
//! artefacts, consuming the retired-instruction event stream produced by
//! [`cheri_isa`]'s interpreter and producing the full set of raw
//! microarchitectural counts the paper's Table 1 methodology needs.
//!
//! The model is an *accounting* simulator in the spirit of the top-down
//! methodology (Yasin, ISPASS'14; Arm Neoverse N1 performance analysis
//! guide): every retired instruction consumes an issue slot, and every
//! stall source charges cycles to exactly one top-down bucket —
//! frontend (instruction delivery), backend-memory (split L1/L2/external),
//! backend-core (execution resources), or bad speculation (squashed work).
//!
//! The Morello-specific artefacts the paper identifies are first-class,
//! toggleable mechanisms:
//!
//! * a branch predictor that is **blind to PCC bounds changes**
//!   ([`UarchConfig::pcc_aware_branch_predictor`] off): every capability
//!   branch that changes PCC bounds costs a frontend resteer;
//! * a store buffer sized for 64-bit stores
//!   ([`UarchConfig::wide_cap_store_buffer`] off): a 128-bit capability
//!   store occupies two entries;
//! * no capability MADD ([`UarchConfig::cap_madd_fusion`] off): handled at
//!   lowering time by `cheri-isa`, and reversible here for projections.
//!
//! Turning the three knobs on yields the paper's §5 "modest
//! microarchitectural improvements" projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod config;
mod core_model;
mod stats;

pub use branch::{Btb, Gshare, ReturnStack};
pub use cache::{Cache, CacheGeometry, CacheStats, Tlb, TlbStats};
pub use config::UarchConfig;
pub use core_model::TimingCore;
pub use stats::UarchStats;
