//! Branch prediction: gshare direction predictor, BTB for indirect
//! targets, and a return-address stack.

/// A gshare direction predictor (global history XOR pc indexing a table of
/// 2-bit saturating counters).
#[derive(Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u64,
    ghr: u64,
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters, initialised weakly
    /// taken.
    pub fn new(bits: u32) -> Gshare {
        Gshare {
            table: vec![2u8; 1 << bits],
            mask: (1 << bits) - 1,
            ghr: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.ghr) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the predictor with the resolved direction and shifts it into
    /// the global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }
}

/// A path-history-indexed branch target buffer for indirect branches
/// (an ITTAGE-lite: indexing by recent branch targets lets repeated
/// control-flow patterns — interpreter dispatch loops — predict correctly
/// even when one site jumps to many targets).
#[derive(Clone)]
pub struct Btb {
    entries: Vec<(u64, u64)>, // (pc tag, target)
    mask: u64,
    path: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: u32) -> Btb {
        let n = entries.next_power_of_two() as usize;
        Btb {
            entries: vec![(u64::MAX, 0); n],
            mask: n as u64 - 1,
            path: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.path) & self.mask) as usize
    }

    /// The predicted target for the indirect branch at `pc`, if any.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.entries[self.index(pc)];
        (tag == pc).then_some(target)
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = (pc, target);
    }

    /// Folds a taken-branch target into the path history (call on every
    /// taken branch, conditional or not).
    pub fn note_path(&mut self, target: u64) {
        self.path = (self.path << 3) ^ ((target >> 2) & 0xFFFF);
    }
}

/// A fixed-depth return-address stack.
#[derive(Clone)]
pub struct ReturnStack {
    stack: Vec<u64>,
    depth: usize,
}

impl ReturnStack {
    /// Creates a RAS of the given depth.
    pub fn new(depth: u32) -> ReturnStack {
        ReturnStack {
            stack: Vec::with_capacity(depth as usize),
            depth: depth as usize,
        }
    }

    /// Pushes a return address at a call. Overflow discards the oldest
    /// entry (the hardware behaviour that makes deep recursion mispredict).
    pub fn push(&mut self, ret: u64) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_loop() {
        let mut g = Gshare::new(10);
        let pc = 0x1000;
        // Train a heavily taken branch.
        for _ in 0..16 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
        for _ in 0..16 {
            g.update(pc, false);
        }
        assert!(!g.predict(pc));
    }

    #[test]
    fn gshare_history_disambiguates_patterns() {
        let mut g = Gshare::new(12);
        let pc = 0x2000;
        // Alternating T/N: after warmup the history bit should make it
        // near-perfect.
        let mut mispredicts = 0;
        let mut taken = false;
        for i in 0..400 {
            taken = !taken;
            if i >= 200 && g.predict(pc) != taken {
                mispredicts += 1;
            }
            g.update(pc, taken);
        }
        assert!(
            mispredicts < 20,
            "alternating pattern should be learnable, got {mispredicts}"
        );
    }

    #[test]
    fn btb_predicts_stable_targets() {
        let mut b = Btb::new(64);
        assert_eq!(b.predict(0x100), None);
        b.update(0x100, 0x9000);
        assert_eq!(b.predict(0x100), Some(0x9000));
        b.update(0x100, 0x9100);
        assert_eq!(b.predict(0x100), Some(0x9100));
    }

    #[test]
    fn ras_matches_calls_and_returns() {
        let mut r = ReturnStack::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_loses_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
