//! The top-down accounting core: consumes retired-instruction events and
//! charges every stall cycle to one bucket.

use crate::branch::{Btb, Gshare, ReturnStack};
use crate::cache::{Cache, CacheGeometry, Tlb};
use crate::config::UarchConfig;
use crate::stats::UarchStats;
use cheri_isa::{BranchKind, EventSink, InstClass, OpClass, RetiredEvent, RetiredInfo};
use std::collections::VecDeque;

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Served {
    L1,
    L2,
    Llc,
    Dram,
}

/// Floating-point cycle accumulators, one per top-down bucket.
#[derive(Clone, Copy, Debug, Default)]
struct Buckets {
    retire: f64,
    frontend: f64,
    pcc: f64,
    mem_l1: f64,
    mem_l2: f64,
    mem_ext: f64,
    core: f64,
    sb_stall: f64,
    badspec: f64,
}

impl Buckets {
    fn total(&self) -> f64 {
        self.retire
            + self.frontend
            + self.pcc
            + self.mem_l1
            + self.mem_l2
            + self.mem_ext
            + self.core
            + self.sb_stall
            + self.badspec
    }
}

/// The timing model. Implements [`EventSink`]: feed it the interpreter's
/// event stream, then call [`TimingCore::finish`].
///
/// ```
/// use cheri_isa::{Abi, Interp, InterpConfig, ProgramBuilder};
/// use morello_uarch::{TimingCore, UarchConfig};
///
/// let mut b = ProgramBuilder::new("demo", Abi::Hybrid);
/// let main = b.function("main", 0, |f| {
///     let n = f.vreg();
///     f.mov_imm(n, 1000);
///     f.for_loop(0, n, 1, |_, _| {});
///     f.halt();
/// });
/// b.set_entry(main);
/// let prog = b.lower();
/// let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
/// Interp::new(InterpConfig::default()).run(&prog, &mut core).unwrap();
/// let stats = core.finish();
/// assert!(stats.cpu_cycles > 0);
/// assert!(stats.ipc() <= 4.0);
/// ```
pub struct TimingCore {
    cfg: UarchConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    l2tlb: Tlb,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnStack,
    tag_cache: Cache,
    store_buffer: VecDeque<f64>,
    last_store_completion: f64,
    cycle: f64,
    buckets: Buckets,
    dram_next_free: f64,
    last_fetch_line: u64,
    last_fetch_page: u64,
    prev_was_mul: bool,
    // `cycles()` as of the end of the previous retire: buckets only
    // change inside `retire`, so the next event's "cycles before" is the
    // previous event's "cycles after" — caching it halves the number of
    // bucket summations on the hot path without changing any value.
    cycles_after_last_retire: u64,
    // `1.0 / issue_width`, computed once: the quotient is the same f64
    // every retire, so dividing up front instead of per event changes
    // nothing downstream.
    issue_slot_cost: f64,
    s: UarchStats,
}

/// Adds `amount` to one bucket and the running cycle clock, exactly as
/// the old fn-pointer `charge` helper did (same two f64 additions in the
/// same order), but monomorphised per bucket field.
macro_rules! charge {
    ($self:ident, $amount:expr, $field:ident) => {{
        let amount = $amount;
        $self.buckets.$field += amount;
        $self.cycle += amount;
    }};
}

impl TimingCore {
    /// Creates a core in its post-reset state.
    pub fn new(cfg: UarchConfig) -> TimingCore {
        TimingCore {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            itlb: Tlb::new(cfg.l1i_tlb_entries),
            dtlb: Tlb::new(cfg.l1d_tlb_entries),
            l2tlb: Tlb::new(cfg.l2_tlb_entries),
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_entries),
            // One tag byte covers 128 data bytes; model the tag cache as a
            // set-associative cache over tag-granule addresses.
            tag_cache: Cache::new(CacheGeometry::new(cfg.tag_cache_bytes.max(1024), 4, 64)),
            store_buffer: VecDeque::with_capacity(cfg.store_buffer_entries as usize + 2),
            last_store_completion: 0.0,
            cycle: 0.0,
            buckets: Buckets::default(),
            dram_next_free: 0.0,
            last_fetch_line: u64::MAX,
            last_fetch_page: u64::MAX,
            prev_was_mul: false,
            cycles_after_last_retire: 0,
            issue_slot_cost: 1.0 / cfg.issue_width as f64,
            cfg,
            s: UarchStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// Finalises cycle accounting and returns the full counter set.
    pub fn finish(self) -> UarchStats {
        self.snapshot()
    }

    /// The full counter set as of now, without consuming the core —
    /// the cheap hook behind windowed (`pmcstat -w`-style) collection
    /// and region profiling. Calling this mid-run and feeding more
    /// events afterwards is fine: counters are cumulative, so
    /// successive snapshots yield exact interval deltas.
    pub fn snapshot(&self) -> UarchStats {
        let b = self.buckets;
        let mut s = self.s;
        s.cpu_cycles = b.total().ceil() as u64;
        s.stall_frontend = (b.frontend + b.pcc).round() as u64;
        s.stall_backend = (b.mem_l1 + b.mem_l2 + b.mem_ext + b.core + b.sb_stall).round() as u64;
        s.bound_mem_l1 = b.mem_l1.round() as u64;
        s.bound_mem_l2 = b.mem_l2.round() as u64;
        s.bound_mem_ext = b.mem_ext.round() as u64;
        s.bound_core = (b.core + b.sb_stall).round() as u64;
        s.badspec_cycles = b.badspec.round() as u64;
        s.pcc_stall_cycles = b.pcc.round() as u64;
        s.store_buffer_stalls = b.sb_stall.round() as u64;
        s.l1i_cache = self.l1i.stats().accesses;
        s.l1i_cache_refill = self.l1i.stats().refills;
        s.l1d_cache = self.l1d.stats().accesses;
        s.l1d_cache_refill = self.l1d.stats().refills;
        s.l2d_cache = self.l2.stats().accesses;
        s.l2d_cache_refill = self.l2.stats().refills;
        s.l1i_tlb = self.itlb.stats().accesses;
        s.l1i_tlb_refill = self.itlb.stats().refills;
        s.l1d_tlb = self.dtlb.stats().accesses;
        s.l1d_tlb_refill = self.dtlb.stats().refills;
        s.l2d_tlb = self.l2tlb.stats().accesses;
        s.l2d_tlb_refill = self.l2tlb.stats().refills;
        s
    }

    /// Total cycles accounted so far (cheap; no counter materialisation).
    pub fn cycles(&self) -> u64 {
        self.buckets.total().ceil() as u64
    }

    // ---- Instruction fetch -------------------------------------------------

    fn fetch(&mut self, pc: u64) {
        let line = pc & !(self.cfg.l1i.line - 1);
        if line == self.last_fetch_line {
            return;
        }
        self.last_fetch_line = line;
        if !self.l1i.access(line, false) {
            // Instruction refill through the unified L2 (and below).
            let served = self.lower_levels(line, false, true);
            let pen = match served {
                Served::L2 => self.cfg.lat_l2,
                Served::Llc => self.cfg.lat_llc,
                _ => self.cfg.lat_dram,
            } as f64;
            // Fetch-ahead hides part of the refill latency.
            charge!(self, pen * 0.7, frontend);
        }
        let page = pc >> 12;
        if page != self.last_fetch_page {
            self.last_fetch_page = page;
            if !self.itlb.access(pc) {
                if self.l2tlb.access(pc) {
                    charge!(self, self.cfg.lat_l2_tlb as f64, frontend);
                } else {
                    self.s.itlb_walk += 1;
                    charge!(self, self.cfg.tlb_walk_cycles as f64, frontend);
                }
            }
        }
    }

    /// Walks L2 → LLC → DRAM after an L1 miss, updating all counters, and
    /// reports which level served the line. `read` controls LLC read
    /// counters (the paper only uses the read-side LLC events).
    fn lower_levels(&mut self, addr: u64, write: bool, _ifetch: bool) -> Served {
        if self.l2.access(addr, write) {
            return Served::L2;
        }
        if !write {
            self.s.ll_cache_rd += 1;
        }
        if self.llc.access(addr, write) {
            return Served::Llc;
        }
        if !write {
            self.s.ll_cache_miss_rd += 1;
        }
        Served::Dram
    }

    // ---- Data side -----------------------------------------------------------

    fn dtlb_lookup(&mut self, addr: u64) {
        if !self.dtlb.access(addr) {
            if self.l2tlb.access(addr) {
                charge!(self, self.cfg.lat_l2_tlb as f64, mem_l1);
            } else {
                self.s.dtlb_walk += 1;
                charge!(self, self.cfg.tlb_walk_cycles as f64, mem_ext);
            }
        }
    }

    fn data_access(&mut self, addr: u64, write: bool, dep: bool) -> Served {
        self.dtlb_lookup(addr);
        let (hit, victim) = self.l1d.access_wb(addr, write);
        if let Some(wb) = victim {
            // The evicted dirty line is written back into the L2 (and
            // cascades further on an L2 dirty eviction). Write-backs are
            // off the load/store critical path, so they count as traffic
            // but cost no core cycles.
            let (_, l2_victim) = self.l2.access_wb(wb, true);
            if let Some(wb2) = l2_victim {
                self.llc.access(wb2, true);
            }
        }
        if hit {
            return Served::L1;
        }
        let served = self.lower_levels(addr, write, false);
        if self.cfg.prefetch_next_line && !dep {
            let next = addr.wrapping_add(self.cfg.l1d.line);
            self.l1d.prefetch(next);
            self.l2.prefetch(next);
        }
        served
    }

    /// Capability traffic that reaches DRAM must also fetch/update its tag
    /// line from the in-DRAM tag table (extension model; the baseline
    /// folds this into the DRAM latency constant).
    fn tag_table_access(&mut self, addr: u64) {
        if !self.cfg.tag_table_model {
            return;
        }
        self.s.tag_cache_access += 1;
        // One tag byte covers 8 granules (128 data bytes).
        let tag_addr = addr >> 7;
        if !self.tag_cache.access(tag_addr, false) {
            self.s.tag_cache_miss += 1;
            let extra = self.cfg.tag_miss_penalty as f64 / self.cfg.mlp_streaming as f64;
            charge!(self, extra, mem_ext);
        }
    }

    fn dram_queue_delay(&mut self) -> f64 {
        let start = self.cycle.max(self.dram_next_free);
        let delay = start - self.cycle;
        self.dram_next_free = start + self.cfg.dram_line_cycles as f64;
        delay
    }

    fn on_load(&mut self, addr: u64, is_cap: bool, dep: bool) {
        self.s.ld_spec += 1;
        self.s.mem_access_rd += 1;
        if is_cap {
            self.s.cap_mem_access_rd += 1;
            self.s.mem_access_rd_ctag += 1;
        }
        let served = self.data_access(addr, false, dep);
        if is_cap && served == Served::Dram {
            self.tag_table_access(addr);
        }
        // Exposed latency: a dependent (pointer-chasing) access pays the
        // full level latency plus the chase penalty; a streaming access
        // amortises it across the memory-level parallelism window. The
        // common case — a non-dependent L1 hit — charges nothing, so its
        // (zero) exposed latency is never computed.
        match served {
            Served::L1 => {
                if dep {
                    charge!(self, 0.0 + self.cfg.chase_l1_penalty, mem_l1);
                }
            }
            Served::L2 => {
                let base = (self.cfg.lat_l2 - self.cfg.lat_l1) as f64;
                let exposed = if dep {
                    base + self.cfg.chase_l1_penalty
                } else {
                    base / self.cfg.mlp_streaming as f64
                };
                charge!(self, exposed, mem_l2);
            }
            Served::Llc => {
                let base = (self.cfg.lat_llc - self.cfg.lat_l1) as f64;
                let exposed = if dep {
                    base + self.cfg.chase_l1_penalty
                } else {
                    base / self.cfg.mlp_streaming as f64
                };
                charge!(self, exposed, mem_ext);
            }
            Served::Dram => {
                let base = (self.cfg.lat_dram - self.cfg.lat_l1) as f64 + self.dram_queue_delay();
                let exposed = if dep {
                    base + self.cfg.chase_l1_penalty
                } else {
                    base / self.cfg.mlp_streaming as f64
                };
                charge!(self, exposed, mem_ext);
            }
        }
    }

    fn on_store(&mut self, addr: u64, is_cap: bool) {
        self.s.st_spec += 1;
        self.s.mem_access_wr += 1;
        if is_cap {
            self.s.cap_mem_access_wr += 1;
            self.s.mem_access_wr_ctag += 1;
        }
        let served = self.data_access(addr, true, false);
        if is_cap && served == Served::Dram {
            self.tag_table_access(addr);
        }
        let mut service = match served {
            Served::L1 => 1.0,
            Served::L2 => 3.0,
            Served::Llc => 8.0,
            Served::Dram => 20.0,
        };
        if is_cap {
            // The tag-table write extends a capability store's occupancy.
            service += 1.5;
        }
        let entries = if is_cap && !self.cfg.wide_cap_store_buffer {
            2
        } else {
            1
        };
        // Drain completed entries.
        while let Some(&front) = self.store_buffer.front() {
            if front <= self.cycle {
                self.store_buffer.pop_front();
            } else {
                break;
            }
        }
        // Stall until there is room.
        let cap = self.cfg.store_buffer_entries as usize;
        while self.store_buffer.len() + entries > cap {
            let t = self
                .store_buffer
                .pop_front()
                .expect("store buffer cannot be empty while over capacity");
            if t > self.cycle {
                let stall = t - self.cycle;
                charge!(self, stall, sb_stall);
            }
        }
        let completion = self.cycle.max(self.last_store_completion) + service;
        self.last_store_completion = completion;
        for _ in 0..entries {
            self.store_buffer.push_back(completion);
        }
    }

    // ---- Branches --------------------------------------------------------------

    fn on_branch(&mut self, pc: u64, kind: BranchKind, taken: bool, target: u64, pcc: bool) {
        self.s.br_retired += 1;
        let mispredicted = match kind {
            BranchKind::Immediate => {
                let pred = self.gshare.predict(pc);
                self.gshare.update(pc, taken);
                pred != taken
            }
            BranchKind::Call => {
                self.ras.push(pc + 4);
                false
            }
            BranchKind::IndirectCall | BranchKind::Indirect => {
                let pred = self.btb.predict(pc);
                self.btb.update(pc, target);
                if matches!(kind, BranchKind::IndirectCall) {
                    self.ras.push(pc + 4);
                }
                pred != Some(target)
            }
            BranchKind::Return => self.ras.pop() != Some(target),
        };
        if mispredicted {
            self.s.br_mis_pred_retired += 1;
            charge!(self, self.cfg.mispredict_penalty as f64, badspec);
        }
        if pcc {
            self.s.pcc_change_branches += 1;
            if !self.cfg.pcc_aware_branch_predictor {
                charge!(self, self.cfg.pcc_change_stall as f64, pcc);
            }
        }
        if taken {
            // Redirect: the next fetch group starts at the target line.
            self.last_fetch_line = u64::MAX;
            self.btb.note_path(target);
        }
    }

    fn count_class(&mut self, class: InstClass) {
        match class {
            InstClass::Dp => self.s.dp_spec += 1,
            InstClass::Vfp => self.s.vfp_spec += 1,
            InstClass::Ase => self.s.ase_spec += 1,
            InstClass::Ld => {} // counted in on_load
            InstClass::St => {}
            InstClass::BrImmed => self.s.br_immed_spec += 1,
            InstClass::BrIndirect => self.s.br_indirect_spec += 1,
            InstClass::BrReturn => self.s.br_return_spec += 1,
        }
    }
}

impl TimingCore {
    /// The shared retire body behind both [`EventSink`] entry points.
    ///
    /// Per-opcode-class attribution: everything this instruction
    /// charges (fetch, issue, execute, memory, resteers) lands in the
    /// cycles() delta across the call, so per-class cycles telescope
    /// exactly to CPU_CYCLES and retired counts to INST_RETIRED.
    fn retire_with_class(&mut self, ev: RetiredEvent, opclass: OpClass) {
        debug_assert_eq!(opclass, OpClass::of(ev.pc, &ev.info));
        // Buckets change only inside this function, so the cached
        // post-retire reading from the previous event is exactly
        // `self.cycles()` now.
        let cycles_before = self.cycles_after_last_retire;
        debug_assert_eq!(cycles_before, self.cycles());
        self.s.inst_retired += 1;
        self.s.inst_spec += 1;
        self.fetch(ev.pc);
        // Every instruction consumes one issue slot.
        charge!(self, self.issue_slot_cost, retire);

        let mut is_mul = false;
        match ev.info {
            RetiredInfo::Simple(class) => {
                self.count_class(class);
                let cost = match class {
                    InstClass::Dp => self.cfg.dp_core_cost,
                    InstClass::Vfp | InstClass::Ase => self.cfg.vfp_core_cost,
                    _ => 0.0,
                };
                if cost > 0.0 {
                    charge!(self, cost, core);
                }
            }
            RetiredInfo::LongLatency { class, extra } => {
                self.count_class(class);
                is_mul = class == InstClass::Dp && extra == 1;
                // Long-latency ops expose a fraction of their latency as
                // execution-resource pressure (out-of-order execution
                // overlaps independent long ops).
                charge!(self, extra as f64 * 0.3, core);
            }
            RetiredInfo::CapManip => {
                self.count_class(InstClass::Dp);
                self.s.cap_manip_spec += 1;
                let fused = self.cfg.cap_madd_fusion && self.prev_was_mul;
                if !fused {
                    charge!(self, self.cfg.cap_manip_core_cost, core);
                }
            }
            RetiredInfo::Load {
                addr,
                is_cap,
                dep_load,
                ..
            } => self.on_load(addr, is_cap, dep_load),
            RetiredInfo::Store { addr, is_cap, .. } => self.on_store(addr, is_cap),
            RetiredInfo::Branch {
                kind,
                taken,
                target,
                pcc_change,
            } => {
                self.count_class(ev.info.class());
                self.on_branch(ev.pc, kind, taken, target, pcc_change);
            }
        }
        self.prev_was_mul = is_mul;
        let cycles_after = self.cycles();
        self.s.opc_attribute(opclass, cycles_after - cycles_before);
        self.cycles_after_last_retire = cycles_after;
    }
}

impl EventSink for TimingCore {
    /// The timing core opts into superblock-batched delivery: the fast
    /// engine buffers a block's interior events and hands them over in
    /// one call, amortising the sink hop over the block.
    const WANTS_BLOCK_EVENTS: bool = true;

    fn retire(&mut self, ev: RetiredEvent) {
        let opclass = OpClass::of(ev.pc, &ev.info);
        self.retire_with_class(ev, opclass);
    }

    #[inline]
    fn retire_classified(&mut self, ev: RetiredEvent, class: OpClass) {
        self.retire_with_class(ev, class);
    }

    /// Batched delivery walks the block's events through the *same*
    /// per-event retire path in the same order — `UarchStats` is
    /// bit-identical whichever delivery mode the engine picks (locked
    /// by the `differential_timing` harness).
    fn retire_block_classified(&mut self, evs: &[(RetiredEvent, OpClass)]) {
        for &(ev, class) in evs {
            self.retire_with_class(ev, class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{Abi, Interp, InterpConfig, MemSize, ProgramBuilder};

    fn run(abi: Abi, cfg: UarchConfig, build: impl Fn(&mut ProgramBuilder)) -> UarchStats {
        let mut b = ProgramBuilder::new("t", abi);
        build(&mut b);
        let prog = b.lower();
        let mut core = TimingCore::new(cfg);
        Interp::new(InterpConfig::default())
            .run(&prog, &mut core)
            .unwrap();
        core.finish()
    }

    fn streaming_sum_passes(size_kb: u64, passes: u64) -> impl Fn(&mut ProgramBuilder) {
        move |b: &mut ProgramBuilder| {
            let bytes = size_kb * 1024;
            let g = b.global_zero("arr", bytes);
            let main = b.function("main", 0, |f| {
                let p = f.vreg();
                f.lea_global(p, g, 0);
                let reps = f.vreg();
                f.mov_imm(reps, passes);
                let n = f.vreg();
                f.mov_imm(n, bytes / 8);
                let sum = f.vreg();
                f.mov_imm(sum, 0);
                f.for_loop(0, reps, 1, |f, _| {
                    f.for_loop(0, n, 1, |f, i| {
                        let off = f.vreg();
                        f.lsl(off, i, 3);
                        let v = f.vreg();
                        f.load_int(v, p, off, MemSize::S8);
                        f.add(sum, sum, v);
                    });
                });
                f.halt_code(sum);
            });
            b.set_entry(main);
        }
    }

    fn streaming_sum(size_kb: u64) -> impl Fn(&mut ProgramBuilder) {
        streaming_sum_passes(size_kb, 8)
    }

    #[test]
    fn ipc_bounded_by_width() {
        let s = run(
            Abi::Hybrid,
            UarchConfig::neoverse_n1_morello(),
            streaming_sum(16),
        );
        assert!(s.ipc() > 0.2 && s.ipc() <= 4.0, "ipc = {}", s.ipc());
        assert_eq!(s.inst_retired, s.inst_spec);
    }

    #[test]
    fn small_working_set_hits_l1() {
        let s = run(
            Abi::Hybrid,
            UarchConfig::neoverse_n1_morello(),
            streaming_sum(16),
        );
        let mr = s.l1d_cache_refill as f64 / s.l1d_cache as f64;
        // 16 KiB fits L1D; only cold misses (with prefetch, fewer).
        assert!(mr < 0.02, "L1D miss rate {mr} too high for a 16 KiB set");
    }

    #[test]
    fn large_working_set_spills() {
        let s = run(
            Abi::Hybrid,
            UarchConfig::neoverse_n1_morello(),
            streaming_sum(8192), // 8 MiB >> LLC
        );
        assert!(s.l2d_cache_refill > 0);
        assert!(s.ll_cache_miss_rd > 0);
        // Streaming misses every 8th element (64B line / 8B loads), halved
        // by the next-line prefetcher.
        let mr = s.l1d_cache_refill as f64 / s.l1d_cache as f64;
        assert!(mr < 0.14, "prefetcher should cut streaming misses: {mr}");
    }

    #[test]
    fn bigger_footprint_is_slower() {
        let cfg = UarchConfig::neoverse_n1_morello();
        let small = run(Abi::Hybrid, cfg, streaming_sum_passes(32, 32));
        let large = run(Abi::Hybrid, cfg, streaming_sum_passes(4096, 2));
        let cpi_small = small.cpu_cycles as f64 / small.inst_retired as f64;
        let cpi_large = large.cpu_cycles as f64 / large.inst_retired as f64;
        assert!(
            cpi_large > cpi_small,
            "4 MiB sweep must be slower per instruction ({cpi_large} vs {cpi_small})"
        );
    }

    #[test]
    fn topdown_buckets_sum_to_cycles() {
        let s = run(
            Abi::Purecap,
            UarchConfig::neoverse_n1_morello(),
            streaming_sum(256),
        );
        let sum = s.stall_frontend + s.stall_backend + s.badspec_cycles;
        assert!(
            sum < s.cpu_cycles,
            "stalls {sum} must leave room for retirement in {}",
            s.cpu_cycles
        );
        let backend = s.bound_mem_l1 + s.bound_mem_l2 + s.bound_mem_ext + s.bound_core;
        assert!((backend as i64 - s.stall_backend as i64).abs() <= 2);
    }

    #[test]
    fn pcc_stalls_gate_on_config_and_abi() {
        let chatty_calls = |b: &mut ProgramBuilder| {
            let lib = b.module("lib");
            let f1 = b.function_in(lib, "ext", 0, |f| {
                let r = f.vreg();
                f.mov_imm(r, 1);
                f.ret(Some(r));
            });
            let main = b.function("main", 0, |f| {
                let n = f.vreg();
                f.mov_imm(n, 500);
                f.for_loop(0, n, 1, |f, _| {
                    let r = f.vreg();
                    f.call(f1, &[], Some(r));
                });
                f.halt();
            });
            b.set_entry(main);
        };
        let morello = UarchConfig::neoverse_n1_morello();
        let aware = morello.with_pcc_aware_bp(true);

        let purecap = run(Abi::Purecap, morello, chatty_calls);
        assert!(purecap.pcc_change_branches >= 1000);
        assert!(purecap.pcc_stall_cycles > 0);

        let purecap_aware = run(Abi::Purecap, aware, chatty_calls);
        assert_eq!(purecap_aware.pcc_stall_cycles, 0);
        assert!(purecap_aware.cpu_cycles < purecap.cpu_cycles);

        let benchmark = run(Abi::Benchmark, morello, chatty_calls);
        assert_eq!(benchmark.pcc_change_branches, 0);
        assert_eq!(benchmark.pcc_stall_cycles, 0);

        let hybrid = run(Abi::Hybrid, morello, chatty_calls);
        assert_eq!(hybrid.pcc_change_branches, 0);
    }

    #[test]
    fn store_buffer_pressure_hits_capability_stores() {
        let store_storm = |b: &mut ProgramBuilder| {
            let g = b.global_zero("buf", 1 << 20);
            let main = b.function("main", 0, |f| {
                let p = f.vreg();
                f.lea_global(p, g, 0);
                let n = f.vreg();
                f.mov_imm(n, 20_000);
                f.for_loop(0, n, 1, |f, i| {
                    let off = f.vreg();
                    f.lsl(off, i, 4);
                    let mask = f.vreg();
                    f.mov_imm(mask, (1 << 20) - 1);
                    f.and(off, off, mask);
                    let q = f.vreg();
                    f.ptr_add(q, p, off);
                    f.store_ptr(p, q, 0);
                });
                f.halt();
            });
            b.set_entry(main);
        };
        let morello = UarchConfig::neoverse_n1_morello();
        let narrow = run(Abi::Purecap, morello, store_storm);
        let wide = run(
            Abi::Purecap,
            morello.with_wide_cap_store_buffer(true),
            store_storm,
        );
        assert!(
            narrow.store_buffer_stalls > wide.store_buffer_stalls,
            "wide store buffer must relieve capability-store pressure ({} vs {})",
            narrow.store_buffer_stalls,
            wide.store_buffer_stalls
        );
    }

    #[test]
    fn mispredict_counting_and_badspec() {
        // A data-dependent unpredictable branch pattern.
        let noisy = |b: &mut ProgramBuilder| {
            let main = b.function("main", 0, |f| {
                let n = f.vreg();
                f.mov_imm(n, 4000);
                let x = f.vreg();
                f.mov_imm(x, 12345);
                let acc = f.vreg();
                f.mov_imm(acc, 0);
                f.for_loop(0, n, 1, |f, _| {
                    // xorshift PRNG
                    let t = f.vreg();
                    f.lsr(t, x, 7);
                    f.eor(x, x, t);
                    f.lsl(t, x, 9);
                    f.eor(x, x, t);
                    let bit = f.vreg();
                    f.and(bit, x, 1);
                    let skip = f.label();
                    f.br(cheri_isa::Cond::Eq, bit, 0, skip);
                    f.add(acc, acc, 1);
                    f.bind(skip);
                });
                f.halt_code(acc);
            });
            b.set_entry(main);
        };
        let s = run(Abi::Hybrid, UarchConfig::neoverse_n1_morello(), noisy);
        let mr = s.br_mis_pred_retired as f64 / s.br_retired as f64;
        assert!(
            mr > 0.05 && mr < 0.5,
            "PRNG branch should mispredict substantially: {mr}"
        );
        assert!(s.badspec_cycles > 0);
    }

    #[test]
    fn tag_table_model_charges_capability_dram_traffic() {
        // A purecap pointer-array sweep larger than the LLC: with the tag
        // table modelled, capability misses also miss the (small) tag
        // cache and pay extra external-memory cycles.
        let cap_sweep = |b: &mut ProgramBuilder| {
            let n: u64 = 256 * 1024; // ptr slots; 4 MiB of capabilities
            let main = b.function("main", 0, |f| {
                let arr = f.vreg();
                f.malloc(arr, n * 16);
                let lim = f.vreg();
                f.mov_imm(lim, n);
                f.for_loop(0, lim, 1, |f, i| {
                    store_ptr_like(f, arr, i);
                });
                f.halt();
            });
            b.set_entry(main);
        };
        fn store_ptr_like(
            f: &mut cheri_isa::FunctionBuilder,
            arr: cheri_isa::VReg,
            i: cheri_isa::VReg,
        ) {
            f.store_ptr_idx(arr, arr, i);
        }
        let base = UarchConfig::neoverse_n1_morello();
        let off = run(Abi::Purecap, base, cap_sweep);
        assert_eq!(off.tag_cache_access, 0, "model disabled by default");
        let on = run(Abi::Purecap, base.with_tag_table_model(true), cap_sweep);
        assert!(on.tag_cache_access > 10_000, "{}", on.tag_cache_access);
        assert!(on.tag_cache_miss > 0);
        assert!(on.tag_cache_miss <= on.tag_cache_access);
        assert!(
            on.cpu_cycles > off.cpu_cycles,
            "tag-table traffic must cost cycles ({} vs {})",
            on.cpu_cycles,
            off.cpu_cycles
        );
        // Hybrid traffic is untouched by the knob.
        let h = run(Abi::Hybrid, base.with_tag_table_model(true), cap_sweep);
        assert_eq!(h.tag_cache_access, 0);
    }

    #[test]
    fn dtlb_walks_appear_with_huge_footprints() {
        let s = run(
            Abi::Hybrid,
            UarchConfig::neoverse_n1_morello(),
            streaming_sum(16 * 1024), // 16 MiB = 4096 pages >> TLB reach
        );
        assert!(s.dtlb_walk > 0, "16 MiB sweep must walk the page table");
        assert!(s.l1d_tlb_refill > 0);
    }
}
