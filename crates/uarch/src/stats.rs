//! The raw microarchitectural counts the timing model produces — the
//! simulator-side superset of the PMU events in the paper's Table 1.

use cheri_isa::OpClass;
use serde::{Deserialize, Serialize};

/// Every count the timing model accumulates over one run.
///
/// Field names follow the Arm PMU event names where one exists. The PMU
/// layer (`morello-pmu`) exposes these through a 6-counter bank with
/// multiplexing, reproducing the paper's measurement methodology; this
/// struct is the "ground truth" the simulator affords.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UarchStats {
    // --- Cycle accounting --------------------------------------------------
    /// Total core cycles.
    pub cpu_cycles: u64,
    /// Retired instructions.
    pub inst_retired: u64,
    /// Cycles in which the frontend delivered no µops (fetch stalls, PCC
    /// resteers).
    pub stall_frontend: u64,
    /// Cycles in which the backend could not accept µops.
    pub stall_backend: u64,

    // --- Top-down backend split (cycles) ------------------------------------
    /// Backend-memory cycles attributable to L1D (hit pressure,
    /// pointer-chase serialisation).
    pub bound_mem_l1: u64,
    /// Backend-memory cycles served from L2.
    pub bound_mem_l2: u64,
    /// Backend-memory cycles served from LLC/DRAM.
    pub bound_mem_ext: u64,
    /// Backend-core cycles (execution-resource contention, store-buffer
    /// pressure).
    pub bound_core: u64,
    /// Cycles lost to pipeline flushes from mispredicted branches.
    pub badspec_cycles: u64,
    /// Frontend cycles charged specifically to PCC-bounds resteers (a
    /// subset of `stall_frontend`; the quantity the benchmark ABI
    /// eliminates).
    pub pcc_stall_cycles: u64,
    /// Backend-core cycles charged to store-buffer-full stalls (a subset
    /// of `bound_core`).
    pub store_buffer_stalls: u64,

    // --- Branches -----------------------------------------------------------
    /// Retired branches.
    pub br_retired: u64,
    /// Retired mispredicted branches.
    pub br_mis_pred_retired: u64,
    /// Branches that changed PCC bounds (capability branches).
    pub pcc_change_branches: u64,

    // --- Speculative instruction mix (retired classes) -----------------------
    /// All speculatively executed instructions (= retired in this model).
    pub inst_spec: u64,
    /// Loads.
    pub ld_spec: u64,
    /// Stores.
    pub st_spec: u64,
    /// Integer data processing (including capability manipulation).
    pub dp_spec: u64,
    /// SIMD.
    pub ase_spec: u64,
    /// Floating point.
    pub vfp_spec: u64,
    /// Immediate branches.
    pub br_immed_spec: u64,
    /// Indirect branches.
    pub br_indirect_spec: u64,
    /// Return branches.
    pub br_return_spec: u64,
    /// Capability-manipulation instructions (subset of `dp_spec`).
    pub cap_manip_spec: u64,

    // --- Caches --------------------------------------------------------------
    /// L1I lookups.
    pub l1i_cache: u64,
    /// L1I refills.
    pub l1i_cache_refill: u64,
    /// L1D lookups.
    pub l1d_cache: u64,
    /// L1D refills.
    pub l1d_cache_refill: u64,
    /// L2 (unified) lookups.
    pub l2d_cache: u64,
    /// L2 refills.
    pub l2d_cache_refill: u64,
    /// LLC read lookups.
    pub ll_cache_rd: u64,
    /// LLC read misses.
    pub ll_cache_miss_rd: u64,

    // --- TLBs ----------------------------------------------------------------
    /// L1 instruction TLB lookups.
    pub l1i_tlb: u64,
    /// L1 instruction TLB refills.
    pub l1i_tlb_refill: u64,
    /// L1 data TLB lookups.
    pub l1d_tlb: u64,
    /// L1 data TLB refills.
    pub l1d_tlb_refill: u64,
    /// Unified L2 TLB lookups.
    pub l2d_tlb: u64,
    /// Unified L2 TLB refills.
    pub l2d_tlb_refill: u64,
    /// Instruction-side page-table walks.
    pub itlb_walk: u64,
    /// Data-side page-table walks.
    pub dtlb_walk: u64,

    // --- Memory traffic --------------------------------------------------------
    /// All data reads.
    pub mem_access_rd: u64,
    /// All data writes.
    pub mem_access_wr: u64,
    /// Capability (tag-checked) reads.
    pub cap_mem_access_rd: u64,
    /// Capability (tag-carrying) writes.
    pub cap_mem_access_wr: u64,
    /// Reads that performed a capability-tag check.
    pub mem_access_rd_ctag: u64,
    /// Writes that performed a capability-tag update.
    pub mem_access_wr_ctag: u64,

    // --- Tag controller (extension model; zero unless enabled) ---------------
    /// Tag-cache lookups (capability traffic that missed the LLC).
    pub tag_cache_access: u64,
    /// Tag-cache misses (second DRAM access for the tag line).
    pub tag_cache_miss: u64,

    // --- Revocation subsystem (folded in from the allocator's heap stats;
    // --- zero unless a sweeping strategy ran) --------------------------------
    /// Capability granules visited by revocation tag sweeps.
    #[serde(default)]
    pub sweep_granules_visited: u64,
    /// Stale capability tags cleared by revocation tag sweeps.
    #[serde(default)]
    pub sweep_tags_cleared: u64,
    /// Revocation epochs (quarantine drains / tag sweeps) triggered.
    #[serde(default)]
    pub revocation_epochs: u64,
    /// High-water mark of quarantined bytes.
    #[serde(default)]
    pub quarantine_bytes_hwm: u64,

    // --- Fault-injection campaign (folded in from the fault session's
    // --- journal; zero unless a campaign ran) --------------------------------
    /// Faults injected into the run by the campaign.
    #[serde(default)]
    pub faults_injected: u64,
    /// Injected faults that raised a capability trap.
    #[serde(default)]
    pub faults_trapped: u64,
    /// Runs that completed with a corrupted checksum (0 or 1 per run).
    #[serde(default)]
    pub silent_corruptions: u64,
    /// Frames unwound by the SIGPROT-analogue recovery handler.
    #[serde(default)]
    pub recovery_unwinds: u64,

    // --- Per-opcode-class attribution (batched in `TimingCore::retire`;
    // --- retired counts partition `inst_retired`, cycle counts partition
    // --- `cpu_cycles`) --------------------------------------------------------
    /// Retired int-ALU (integer/FP/SIMD DP) instructions.
    #[serde(default)]
    pub opc_int_alu_retired: u64,
    /// Model cycles attributed to int-ALU instructions.
    #[serde(default)]
    pub opc_int_alu_cycles: u64,
    /// Retired capability-manipulation DP instructions.
    #[serde(default)]
    pub opc_cap_manip_retired: u64,
    /// Model cycles attributed to capability-manipulation instructions.
    #[serde(default)]
    pub opc_cap_manip_cycles: u64,
    /// Retired scalar loads/stores.
    #[serde(default)]
    pub opc_mem_scalar_retired: u64,
    /// Model cycles attributed to scalar loads/stores.
    #[serde(default)]
    pub opc_mem_scalar_cycles: u64,
    /// Retired capability loads/stores.
    #[serde(default)]
    pub opc_mem_cap_retired: u64,
    /// Model cycles attributed to capability loads/stores.
    #[serde(default)]
    pub opc_mem_cap_cycles: u64,
    /// Retired non-PCC-changing branches.
    #[serde(default)]
    pub opc_branch_retired: u64,
    /// Model cycles attributed to non-PCC-changing branches.
    #[serde(default)]
    pub opc_branch_cycles: u64,
    /// Retired PCC-changing (capability) branches.
    #[serde(default)]
    pub opc_cap_branch_retired: u64,
    /// Model cycles attributed to PCC-changing branches.
    #[serde(default)]
    pub opc_cap_branch_cycles: u64,
    /// Retired allocator-runtime (malloc/free stream) instructions.
    #[serde(default)]
    pub opc_runtime_retired: u64,
    /// Model cycles attributed to allocator-runtime instructions.
    #[serde(default)]
    pub opc_runtime_cycles: u64,
    /// Retired heap-metadata (revocation sweep stream) instructions.
    #[serde(default)]
    pub opc_meta_retired: u64,
    /// Model cycles attributed to heap-metadata instructions.
    #[serde(default)]
    pub opc_meta_cycles: u64,
}

impl UarchStats {
    /// Sum of all `*_SPEC` class counters plus `INST_SPEC` itself — the
    /// denominator of the paper's Table 1 "Retiring %" formula.
    pub fn sum_spec(&self) -> u64 {
        self.inst_spec
            + self.ld_spec
            + self.st_spec
            + self.dp_spec
            + self.ase_spec
            + self.vfp_spec
            + self.br_immed_spec
            + self.br_indirect_spec
            + self.br_return_spec
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.inst_retired as f64 / self.cpu_cycles.max(1) as f64
    }

    /// Attributes one retired instruction of `class` plus `cycles`
    /// model cycles to its opcode-class counters.
    pub fn opc_attribute(&mut self, class: OpClass, cycles: u64) {
        let (retired, cyc) = self.opc_slots(class);
        *retired += 1;
        *cyc += cycles;
    }

    /// Retired-instruction count for one opcode class.
    pub fn opc_retired(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => self.opc_int_alu_retired,
            OpClass::CapManip => self.opc_cap_manip_retired,
            OpClass::MemScalar => self.opc_mem_scalar_retired,
            OpClass::MemCap => self.opc_mem_cap_retired,
            OpClass::Branch => self.opc_branch_retired,
            OpClass::CapBranch => self.opc_cap_branch_retired,
            OpClass::Runtime => self.opc_runtime_retired,
            OpClass::Meta => self.opc_meta_retired,
        }
    }

    /// Attributed model cycles for one opcode class.
    pub fn opc_cycles(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => self.opc_int_alu_cycles,
            OpClass::CapManip => self.opc_cap_manip_cycles,
            OpClass::MemScalar => self.opc_mem_scalar_cycles,
            OpClass::MemCap => self.opc_mem_cap_cycles,
            OpClass::Branch => self.opc_branch_cycles,
            OpClass::CapBranch => self.opc_cap_branch_cycles,
            OpClass::Runtime => self.opc_runtime_cycles,
            OpClass::Meta => self.opc_meta_cycles,
        }
    }

    fn opc_slots(&mut self, class: OpClass) -> (&mut u64, &mut u64) {
        match class {
            OpClass::IntAlu => (&mut self.opc_int_alu_retired, &mut self.opc_int_alu_cycles),
            OpClass::CapManip => (
                &mut self.opc_cap_manip_retired,
                &mut self.opc_cap_manip_cycles,
            ),
            OpClass::MemScalar => (
                &mut self.opc_mem_scalar_retired,
                &mut self.opc_mem_scalar_cycles,
            ),
            OpClass::MemCap => (&mut self.opc_mem_cap_retired, &mut self.opc_mem_cap_cycles),
            OpClass::Branch => (&mut self.opc_branch_retired, &mut self.opc_branch_cycles),
            OpClass::CapBranch => (
                &mut self.opc_cap_branch_retired,
                &mut self.opc_cap_branch_cycles,
            ),
            OpClass::Runtime => (&mut self.opc_runtime_retired, &mut self.opc_runtime_cycles),
            OpClass::Meta => (&mut self.opc_meta_retired, &mut self.opc_meta_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_spec_counts_every_class_once() {
        let s = UarchStats {
            inst_spec: 100,
            ld_spec: 20,
            st_spec: 10,
            dp_spec: 40,
            ase_spec: 5,
            vfp_spec: 15,
            br_immed_spec: 7,
            br_indirect_spec: 2,
            br_return_spec: 1,
            ..UarchStats::default()
        };
        assert_eq!(s.sum_spec(), 200);
    }

    #[test]
    fn ipc_guards_zero_cycles() {
        let s = UarchStats {
            inst_retired: 10,
            ..UarchStats::default()
        };
        assert_eq!(s.ipc(), 10.0);
    }
}
