//! Set-associative caches and TLBs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for page numbers (see the TLB index below).
/// Identical in spirit to FxHash: page keys are small integers, so a
/// Fibonacci multiply plus a high-bit fold beats SipHash by an order of
/// magnitude on the TLB hot path. Map iteration order is never
/// observed — lookups and removals only.
#[derive(Clone, Copy, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

/// Geometry of a set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line` and the implied set count are powers of two.
    pub fn new(size: u64, ways: u32, line: u64) -> CacheGeometry {
        assert!(line.is_power_of_two());
        let sets = size / (ways as u64 * line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry { size, ways, line }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.ways as u64 * self.line)
    }
}

/// Access counters of one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups (reads + writes).
    pub accesses: u64,
    /// Lookups that missed and triggered a refill.
    pub refills: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

/// One cache line's metadata, packed into 16 bytes so a 4-way set spans
/// exactly one host cache line: `meta` holds the tag (a full line
/// address, at most 58 bits for ≥64-byte lines) with the valid and
/// dirty flags in the top two bits.
#[derive(Clone, Copy, Default)]
struct Line {
    meta: u64,
    lru: u64,
}

const LINE_VALID: u64 = 1 << 63;
const LINE_DIRTY: u64 = 1 << 62;
const LINE_TAG_MASK: u64 = LINE_DIRTY - 1;

impl Line {
    #[inline]
    fn valid(self) -> bool {
        self.meta & LINE_VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.meta & LINE_DIRTY != 0
    }

    #[inline]
    fn tag(self) -> u64 {
        self.meta & LINE_TAG_MASK
    }

    /// `valid && tag == want` as a single comparison (a hit check).
    #[inline]
    fn matches(self, want: u64) -> bool {
        self.meta & (LINE_VALID | LINE_TAG_MASK) == LINE_VALID | want
    }
}

/// A write-back, write-allocate set-associative cache with LRU
/// replacement.
///
/// Addresses are treated as physical (the simulator maps VA→PA
/// identically, so cache-conflict behaviour follows virtual layout — which
/// is precisely how allocation-alignment side effects become visible).
#[derive(Clone)]
pub struct Cache {
    geo: CacheGeometry,
    sets: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    stamp: u64,
    // Index of the most recently hit/filled line. Tags are full line
    // addresses (they include the set bits), so a tag match against the
    // hinted slot is sufficient: that line can only ever live in its own
    // set. Purely an access-order shortcut, as in [`Tlb`]: a stale hint
    // falls through to the scan, so hit/miss outcomes, LRU state, and
    // counters are unchanged.
    last_hit: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geo: CacheGeometry) -> Cache {
        let sets = geo.sets();
        Cache {
            geo,
            sets: vec![Line::default(); (sets * geo.ways as u64) as usize],
            set_mask: sets - 1,
            line_shift: geo.line.trailing_zeros(),
            stamp: 0,
            last_hit: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    /// The access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize * self.geo.ways as usize;
        (set, line_addr)
    }

    /// Looks up `addr`; on miss, fills the line (evicting LRU). Returns
    /// `true` on hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.access_wb(addr, write).0
    }

    /// As [`access`](Cache::access), additionally reporting the address of
    /// a dirty line evicted by the refill (the write-back the next cache
    /// level must absorb).
    pub fn access_wb(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        self.stats.accesses += 1;
        self.stamp += 1;
        let (set, tag) = self.set_range(addr);
        debug_assert!(tag <= LINE_TAG_MASK);
        let dirty = if write { LINE_DIRTY } else { 0 };
        if let Some(way) = self.sets.get_mut(self.last_hit) {
            if way.matches(tag) {
                way.lru = self.stamp;
                way.meta |= dirty;
                return (true, None);
            }
        }
        let ways = self.geo.ways as usize;
        for (i, way) in self.sets[set..set + ways].iter_mut().enumerate() {
            if way.matches(tag) {
                way.lru = self.stamp;
                way.meta |= dirty;
                self.last_hit = set + i;
                return (true, None);
            }
        }
        self.stats.refills += 1;
        let victim = self.fill_line(set, tag, write);
        (false, victim)
    }

    /// Installs a line without counting an access (prefetch).
    pub fn prefetch(&mut self, addr: u64) {
        self.stamp += 1;
        let (set, tag) = self.set_range(addr);
        let ways = self.geo.ways as usize;
        for way in &self.sets[set..set + ways] {
            if way.matches(tag) {
                return;
            }
        }
        self.fill_line(set, tag, false);
    }

    /// Returns `true` if the line holding `addr` is present (no state
    /// change, no counting).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_range(addr);
        let ways = self.geo.ways as usize;
        self.sets[set..set + ways].iter().any(|w| w.matches(tag))
    }

    fn fill_line(&mut self, set: usize, tag: u64, write: bool) -> Option<u64> {
        let ways = self.geo.ways as usize;
        let (slot, victim) = self.sets[set..set + ways]
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid() { w.lru } else { 0 })
            .expect("nonzero associativity");
        let wb = if victim.valid() && victim.dirty() {
            self.stats.writebacks += 1;
            Some(victim.tag() << self.line_shift)
        } else {
            None
        };
        *victim = Line {
            meta: tag | LINE_VALID | if write { LINE_DIRTY } else { 0 },
            lru: self.stamp,
        };
        self.last_hit = set + slot;
        wb
    }
}

/// TLB access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups.
    pub accesses: u64,
    /// Misses (refilled from the next level or the walker).
    pub refills: u64,
}

/// A fully associative TLB with LRU replacement over 4 KiB pages.
///
/// Lookup goes through a page→slot hash index instead of a linear scan:
/// the big second-level TLB (1280 entries) made every first-level miss
/// an O(capacity) walk. Hit/miss outcomes, LRU stamps, and the eviction
/// choice are untouched — stamps are unique, so the LRU minimum is the
/// same entry whichever way it is found.
#[derive(Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>,                                   // (page, lru)
    index: HashMap<u64, usize, BuildHasherDefault<PageHasher>>, // page → slot
    capacity: usize,
    stamp: u64,
    // Index of the most recently hit entry. Page locality makes
    // back-to-back lookups land on the same page, so checking this slot
    // first skips even the hash lookup on the common path. Purely an
    // access-order shortcut: a stale hint just falls through, so
    // hit/miss outcomes, LRU state, and counters are unchanged.
    last_hit: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots.
    pub fn new(entries: u32) -> Tlb {
        Tlb {
            entries: Vec::with_capacity(entries as usize),
            index: HashMap::with_capacity_and_hasher(entries as usize, Default::default()),
            capacity: entries as usize,
            stamp: 0,
            last_hit: 0,
            stats: TlbStats::default(),
        }
    }

    /// The access counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Looks up the page of `addr`; fills on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.stamp += 1;
        let page = addr >> 12;
        if let Some(e) = self.entries.get_mut(self.last_hit) {
            if e.0 == page {
                e.1 = self.stamp;
                return true;
            }
        }
        if let Some(&idx) = self.index.get(&page) {
            self.entries[idx].1 = self.stamp;
            self.last_hit = idx;
            return true;
        }
        self.stats.refills += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .expect("nonempty TLB");
            let (evicted, _) = self.entries.swap_remove(idx);
            self.index.remove(&evicted);
            if let Some(&(moved, _)) = self.entries.get(idx) {
                self.index.insert(moved, idx);
            }
        }
        self.entries.push((page, self.stamp));
        self.index.insert(page, self.entries.len() - 1);
        self.last_hit = self.entries.len() - 1;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheGeometry::new(512, 2, 64))
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(64 << 10, 4, 64);
        assert_eq!(g.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheGeometry::new(48 << 10, 5, 64);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        assert!(c.access(0x1000, false));
        assert!(c.access(0x103f, false), "same line");
        assert!(!c.access(0x1040, false), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().refills, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Set stride: 4 sets * 64 = 256 bytes. Three conflicting lines in a
        // 2-way set evict the least recent.
        c.access(0x0000, false);
        c.access(0x0100, false);
        c.access(0x0000, false); // refresh
        c.access(0x0200, false); // evicts 0x0100
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
        assert!(c.probe(0x0200));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small();
        c.access(0x0000, true);
        c.access(0x0100, false);
        c.access(0x0200, false); // evicts dirty 0x0000
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_installs_without_counting() {
        let mut c = small();
        c.prefetch(0x1000);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x1000, false), "prefetched line must hit");
    }

    #[test]
    fn tlb_basics() {
        let mut t = Tlb::new(2);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000));
        assert!(!t.access(0x5000)); // evicts LRU (page 1)
        assert!(!t.access(0x1000), "page 1 was evicted");
        assert_eq!(t.stats().accesses, 5);
        assert_eq!(t.stats().refills, 4);
    }
}

#[cfg(test)]
mod wb_tests {
    use super::*;

    #[test]
    fn access_wb_reports_dirty_victim_address() {
        // 4 sets x 2 ways x 64B: lines 0x000, 0x100, 0x200 collide in set 0.
        let mut c = Cache::new(CacheGeometry::new(512, 2, 64));
        assert_eq!(c.access_wb(0x000, true), (false, None));
        assert_eq!(c.access_wb(0x100, false), (false, None));
        // Evicts the dirty 0x000 line.
        let (hit, victim) = c.access_wb(0x200, false);
        assert!(!hit);
        assert_eq!(victim, Some(0x000));
        // Evicts the clean 0x100 line: no write-back.
        let (hit, victim) = c.access_wb(0x040, false); // set 1, no conflict
        assert!(!hit);
        assert_eq!(victim, None);
    }

    #[test]
    fn victim_address_is_line_aligned() {
        let mut c = Cache::new(CacheGeometry::new(512, 2, 64));
        c.access(0x0ab, true); // line 0x080, set 2
        c.access(0x28c, false); // line 0x280, set 2
        let (_, victim) = c.access_wb(0x48f, false); // line 0x480, set 2
        assert_eq!(victim, Some(0x080));
    }
}
