//! Property tests for the timing model: accounting identities must hold
//! for arbitrary event streams, not just well-formed programs.

use cheri_isa::{BranchKind, EventSink, InstClass, RetiredEvent, RetiredInfo};
use morello_uarch::{TimingCore, UarchConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Ev {
    Dp,
    Vfp,
    Mul,
    CapManip,
    Load { addr: u32, cap: bool, dep: bool },
    Store { addr: u32, cap: bool },
    Cond { pc: u16, taken: bool },
    CallRet { pcc: bool },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        Just(Ev::Dp),
        Just(Ev::Vfp),
        Just(Ev::Mul),
        Just(Ev::CapManip),
        (any::<u32>(), any::<bool>(), any::<bool>()).prop_map(|(addr, cap, dep)| Ev::Load {
            addr,
            cap,
            dep
        }),
        (any::<u32>(), any::<bool>()).prop_map(|(addr, cap)| Ev::Store { addr, cap }),
        (any::<u16>(), any::<bool>()).prop_map(|(pc, taken)| Ev::Cond { pc, taken }),
        any::<bool>().prop_map(|pcc| Ev::CallRet { pcc }),
    ]
}

fn feed(core: &mut TimingCore, evs: &[Ev]) {
    let mut pc = 0x1_0000u64;
    for e in evs {
        pc += 4;
        let info = match e {
            Ev::Dp => RetiredInfo::Simple(InstClass::Dp),
            Ev::Vfp => RetiredInfo::Simple(InstClass::Vfp),
            Ev::Mul => RetiredInfo::LongLatency {
                class: InstClass::Dp,
                extra: 1,
            },
            Ev::CapManip => RetiredInfo::CapManip,
            Ev::Load { addr, cap, dep } => RetiredInfo::Load {
                // 16-byte alignment for capability accesses.
                addr: (*addr as u64) & if *cap { !15 } else { !7 },
                size: if *cap { 16 } else { 8 },
                is_cap: *cap,
                dep_load: *dep,
            },
            Ev::Store { addr, cap } => RetiredInfo::Store {
                addr: (*addr as u64) & if *cap { !15 } else { !7 },
                size: if *cap { 16 } else { 8 },
                is_cap: *cap,
            },
            Ev::Cond { pc: t, taken } => RetiredInfo::Branch {
                kind: BranchKind::Immediate,
                taken: *taken,
                target: 0x1_0000 + (*t as u64) * 4,
                pcc_change: false,
            },
            Ev::CallRet { pcc } => RetiredInfo::Branch {
                kind: BranchKind::Call,
                taken: true,
                target: 0x2_0000,
                pcc_change: *pcc,
            },
        };
        core.retire(RetiredEvent { pc, info });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Accounting identities over arbitrary streams.
    #[test]
    fn accounting_identities(evs in proptest::collection::vec(ev_strategy(), 1..600)) {
        let mut core = TimingCore::new(UarchConfig::neoverse_n1_morello());
        feed(&mut core, &evs);
        let s = core.finish();

        prop_assert_eq!(s.inst_retired, evs.len() as u64);
        prop_assert_eq!(s.inst_spec, s.inst_retired);
        // Class counters partition the stream.
        let classes = s.dp_spec + s.vfp_spec + s.ase_spec + s.ld_spec + s.st_spec
            + s.br_immed_spec + s.br_indirect_spec + s.br_return_spec;
        prop_assert_eq!(classes, s.inst_retired);
        // Cycles cover at least the retire bandwidth and all stalls.
        let width = 4;
        prop_assert!(s.cpu_cycles * width >= s.inst_retired);
        prop_assert!(s.cpu_cycles >= s.stall_frontend + s.stall_backend + s.badspec_cycles,
            "cycles {} stalls {}/{}/{}", s.cpu_cycles, s.stall_frontend, s.stall_backend, s.badspec_cycles);
        // Backend split is consistent (rounding slack of a few cycles).
        let split = s.bound_mem_l1 + s.bound_mem_l2 + s.bound_mem_ext + s.bound_core;
        prop_assert!((split as i64 - s.stall_backend as i64).abs() <= 4);
        // Subset counters.
        prop_assert!(s.cap_manip_spec <= s.dp_spec);
        prop_assert!(s.br_mis_pred_retired <= s.br_retired);
        prop_assert!(s.pcc_stall_cycles <= s.stall_frontend);
        prop_assert!(s.cap_mem_access_rd <= s.mem_access_rd);
        prop_assert!(s.cap_mem_access_wr <= s.mem_access_wr);
        prop_assert_eq!(s.mem_access_rd, s.ld_spec);
        prop_assert_eq!(s.mem_access_wr, s.st_spec);
        // Cache hierarchy sanity.
        prop_assert!(s.l1d_cache_refill <= s.l1d_cache);
        prop_assert!(s.l2d_cache_refill <= s.l2d_cache);
        prop_assert!(s.ll_cache_miss_rd <= s.ll_cache_rd);
        prop_assert!(s.l1d_tlb_refill <= s.l1d_tlb);
        prop_assert!(s.dtlb_walk <= s.l1d_tlb_refill.max(1));
    }

    /// A PCC-aware predictor never makes a stream slower, and removes all
    /// PCC stall cycles.
    #[test]
    fn pcc_aware_monotone(evs in proptest::collection::vec(ev_strategy(), 1..400)) {
        let base = UarchConfig::neoverse_n1_morello();
        let mut blind = TimingCore::new(base);
        feed(&mut blind, &evs);
        let blind = blind.finish();
        let mut aware = TimingCore::new(base.with_pcc_aware_bp(true));
        feed(&mut aware, &evs);
        let aware = aware.finish();
        prop_assert_eq!(aware.pcc_stall_cycles, 0);
        prop_assert!(aware.cpu_cycles <= blind.cpu_cycles);
        prop_assert_eq!(aware.cpu_cycles + blind.pcc_stall_cycles, blind.cpu_cycles);
    }

    /// The wide capability store buffer never hurts.
    #[test]
    fn wide_store_buffer_monotone(evs in proptest::collection::vec(ev_strategy(), 1..400)) {
        let base = UarchConfig::neoverse_n1_morello();
        let mut narrow = TimingCore::new(base);
        feed(&mut narrow, &evs);
        let narrow = narrow.finish();
        let mut wide = TimingCore::new(base.with_wide_cap_store_buffer(true));
        feed(&mut wide, &evs);
        let wide = wide.finish();
        prop_assert!(wide.store_buffer_stalls <= narrow.store_buffer_stalls);
        prop_assert!(wide.cpu_cycles <= narrow.cpu_cycles);
    }

    /// Determinism: feeding the same stream twice gives identical stats.
    #[test]
    fn timing_is_deterministic(evs in proptest::collection::vec(ev_strategy(), 1..300)) {
        let cfg = UarchConfig::neoverse_n1_morello();
        let mut a = TimingCore::new(cfg);
        feed(&mut a, &evs);
        let mut b = TimingCore::new(cfg);
        feed(&mut b, &evs);
        prop_assert_eq!(a.finish(), b.finish());
    }
}
