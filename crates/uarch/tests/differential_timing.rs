//! Cross-engine timing differential: the pre-decoded fast engine and
//! the reference executor must drive the [`TimingCore`] to *identical*
//! [`UarchStats`] — every counter, not just totals — and the per-class
//! attribution must partition the run on both engines
//! (`Σ opc_*_retired == inst_retired`, `Σ opc_*_cycles == cpu_cycles`).
//!
//! This complements `cheri-isa`'s `tests/differential.rs` (which locks
//! the raw event streams): here the full microarchitectural model
//! consumes the streams, so any divergence in event payloads, class
//! hints, or ordering shows up as a counter mismatch.

use cheri_isa::{lower, Abi, Interp, InterpConfig};
use cheri_workloads::{by_key, Scale};
use morello_uarch::{TimingCore, UarchConfig, UarchStats};

const KEYS: [&str; 5] = [
    "lbm_519",
    "omnetpp_520",
    "xz_557",
    "quickjs",
    "alloc_stress",
];

fn partition_checks(s: &UarchStats, ctx: &str) {
    let retired = s.opc_int_alu_retired
        + s.opc_cap_manip_retired
        + s.opc_mem_scalar_retired
        + s.opc_mem_cap_retired
        + s.opc_branch_retired
        + s.opc_cap_branch_retired
        + s.opc_runtime_retired
        + s.opc_meta_retired;
    assert_eq!(retired, s.inst_retired, "{ctx}: class retired partition");
    let cycles = s.opc_int_alu_cycles
        + s.opc_cap_manip_cycles
        + s.opc_mem_scalar_cycles
        + s.opc_mem_cap_cycles
        + s.opc_branch_cycles
        + s.opc_cap_branch_cycles
        + s.opc_runtime_cycles
        + s.opc_meta_cycles;
    assert_eq!(cycles, s.cpu_cycles, "{ctx}: class cycle partition");
}

#[test]
fn both_engines_produce_identical_uarch_stats() {
    for key in KEYS {
        let w = by_key(key).expect("registry workload");
        for abi in Abi::ALL {
            if !w.supports(abi) {
                continue;
            }
            let prog = lower(&w.build(abi, Scale::Test));
            let interp = Interp::new(InterpConfig::default());

            let mut fast_core = TimingCore::new(UarchConfig::neoverse_n1_morello());
            let fast_res = interp.run(&prog, &mut fast_core).expect("fast run");
            let fast = fast_core.finish();

            let mut ref_core = TimingCore::new(UarchConfig::neoverse_n1_morello());
            let ref_res = interp
                .run_reference(&prog, &mut ref_core)
                .expect("reference run");
            let reference = ref_core.finish();

            let ctx = format!("{key}/{abi}");
            assert_eq!(fast_res.retired, ref_res.retired, "{ctx}: retired");
            assert_eq!(
                fast, reference,
                "{ctx}: UarchStats must be identical across engines"
            );
            assert_eq!(
                fast.inst_retired, fast_res.retired,
                "{ctx}: timing core saw every retirement"
            );
            partition_checks(&fast, &ctx);
        }
    }
}
