//! # morello-sim
//!
//! The top of the reproduction stack: configure a [`Platform`], pick a
//! workload from [`cheri_workloads::registry`], and run it under any of the
//! three CHERI ABIs to get a full [`RunReport`] — PMU event counts, the
//! derived metrics of the paper's Table 1, top-down bucket shares,
//! simulated execution time, heap/footprint statistics, and the modelled
//! binary layout.
//!
//! ```no_run
//! use morello_sim::{Platform, Runner};
//! use cheri_isa::Abi;
//! use cheri_workloads::{by_key, Scale};
//!
//! let runner = Runner::new(Platform::morello().with_scale(Scale::Small));
//! let w = by_key("omnetpp_520").unwrap();
//! let hybrid = runner.run(&w, Abi::Hybrid)?;
//! let purecap = runner.run(&w, Abi::Purecap)?;
//! let slowdown = purecap.seconds / hybrid.seconds;
//! println!("purecap slowdown: {slowdown:.2}x");
//! # Ok::<(), morello_sim::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod engine;
mod observe;
mod projection;
mod report;
mod runner;
mod span;
pub mod suite;
mod watchdog;

pub use cache::ProgramCache;
pub use observe::{uarch_config_hash, RunObserver, RunRecord, VecObserver};
pub use projection::{project, project_with, ProjectionRow};
pub use report::{HeapSummary, RunReport, TopDown};
pub use runner::{fold_heap_stats, Platform, RunError, Runner};
pub use span::{span, NullSpanSink, SpanGuard, SpanSink};
pub use watchdog::Watchdog;

// Re-exported so experiment drivers can select allocator strategies
// without depending on `cheri-revoke` directly.
pub use cheri_revoke::StrategyKind;
