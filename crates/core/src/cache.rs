//! The lowered-program cache shared by the parallel suite engine.
//!
//! Building a workload's generic program and lowering it for an ABI is
//! pure — it depends only on the workload, the ABI, and the problem
//! scale, never on the microarchitecture — so the suite engine lowers
//! each (workload, abi, scale) cell shape exactly once and shares the
//! [`Program`] across every run that needs it: repeated suite sweeps,
//! uarch ablation ladders, and all worker threads of one sweep.

use cheri_isa::{lower, Abi, Program};
use cheri_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A cell shape: everything lowering depends on.
type CacheKey = (&'static str, Abi, Scale);

/// A thread-safe cache of lowered programs keyed by
/// (workload key, ABI, scale).
///
/// Each entry is initialised at most once even under concurrent misses:
/// the map lock is held only to look up the entry's [`OnceLock`], so one
/// cell's lowering never blocks a different cell's.
#[derive(Debug, Default)]
pub struct ProgramCache {
    slots: Mutex<HashMap<CacheKey, Arc<OnceLock<Arc<Program>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the lowered program for the cell, building and lowering it
    /// on first use. Concurrent callers for the same cell block until the
    /// single lowering finishes; callers for different cells proceed
    /// independently.
    ///
    /// The cache is keyed by [`Workload::key`], which is assumed to
    /// identify the builder (true for the registry and any well-formed
    /// custom workload set).
    pub fn get_or_lower(&self, workload: &Workload, abi: Abi, scale: Scale) -> Arc<Program> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock never poisoned");
            slots.entry((workload.key, abi, scale)).or_default().clone()
        };
        let mut lowered_here = false;
        let prog = slot
            .get_or_init(|| {
                lowered_here = true;
                Arc::new(lower(&workload.build(abi, scale)))
            })
            .clone();
        if lowered_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        prog
    }

    /// How many lookups found an already-lowered program.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many lookups had to lower (once per distinct cell shape).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The number of distinct cell shapes seen so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache lock never poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_workloads::by_key;

    #[test]
    fn second_lookup_hits_and_shares_the_program() {
        let cache = ProgramCache::new();
        let w = by_key("lbm_519").unwrap();
        let a = cache.get_or_lower(&w, Abi::Hybrid, Scale::Test);
        let b = cache.get_or_lower(&w, Abi::Hybrid, Scale::Test);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same program");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_cells_get_distinct_entries() {
        let cache = ProgramCache::new();
        let w = by_key("lbm_519").unwrap();
        cache.get_or_lower(&w, Abi::Hybrid, Scale::Test);
        cache.get_or_lower(&w, Abi::Purecap, Scale::Test);
        cache.get_or_lower(&w, Abi::Hybrid, Scale::Small);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn concurrent_misses_lower_once() {
        let cache = ProgramCache::new();
        let w = by_key("xz_557").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cache.get_or_lower(&w, Abi::Purecap, Scale::Test));
            }
        });
        assert_eq!(cache.misses(), 1, "exactly one thread lowers");
        assert_eq!(cache.hits(), 3);
    }
}
