//! Phase-span instrumentation hooks.
//!
//! The engine and runner mark the phases of every experiment — lowering
//! a program, executing a cell, sweeping the matrix — by calling into a
//! [`SpanSink`]. The sink is a trait (with a zero-cost [`NullSpanSink`]
//! default) so this crate stays free of any tracing dependency; the
//! concrete exporter (`morello_obs::Tracer`, which writes JSONL and
//! Chrome `trace_event` JSON) lives in the observability layer, which
//! depends on this crate and not vice versa.
//!
//! Sinks are `Sync` and take `&self`: the suite engine calls them from
//! its worker threads concurrently. Spans on one thread nest strictly
//! (begin/end bracket the work), which is exactly the contract Chrome's
//! duration events need.

/// A consumer of phase spans.
///
/// `begin` returns an opaque token that must be passed back to `end`;
/// implementations use it to pair the two calls without thread-local
/// state.
pub trait SpanSink: Sync {
    /// Starts a span. `name` identifies the work (e.g.
    /// `"run lbm_519 purecap"`), `cat` its phase category (`"lower"`,
    /// `"run"`, `"sweep"`, `"fault-campaign"`, `"report"`).
    fn begin(&self, name: &str, cat: &str) -> u64;
    /// Ends the span started by the `begin` that returned `token`.
    fn end(&self, token: u64);
}

/// The do-nothing sink: every untraced run goes through this.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSpanSink;

impl SpanSink for NullSpanSink {
    fn begin(&self, _name: &str, _cat: &str) -> u64 {
        0
    }
    fn end(&self, _token: u64) {}
}

/// An RAII span: ends when dropped, so early returns and `?` cannot
/// leak an open span.
pub struct SpanGuard<'a> {
    sink: &'a dyn SpanSink,
    token: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.sink.end(self.token);
    }
}

/// Opens a span on `sink`, closed when the returned guard drops.
pub fn span<'a>(sink: &'a dyn SpanSink, name: &str, cat: &str) -> SpanGuard<'a> {
    SpanGuard {
        sink,
        token: sink.begin(name, cat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        log: Mutex<Vec<String>>,
        next: Mutex<u64>,
    }

    impl SpanSink for Recorder {
        fn begin(&self, name: &str, cat: &str) -> u64 {
            let mut next = self.next.lock().unwrap();
            *next += 1;
            self.log
                .lock()
                .unwrap()
                .push(format!("B{next} {cat}:{name}"));
            *next
        }
        fn end(&self, token: u64) {
            self.log.lock().unwrap().push(format!("E{token}"));
        }
    }

    #[test]
    fn guard_pairs_begin_and_end_in_nesting_order() {
        let rec = Recorder::default();
        {
            let _outer = span(&rec, "outer", "sweep");
            let _inner = span(&rec, "inner", "run");
        }
        let log = rec.log.lock().unwrap().clone();
        assert_eq!(log, vec!["B1 sweep:outer", "B2 run:inner", "E2", "E1"]);
    }

    #[test]
    fn null_sink_is_inert() {
        let _ = span(&NullSpanSink, "x", "y");
        assert_eq!(NullSpanSink.begin("a", "b"), 0);
        NullSpanSink.end(7);
    }
}
