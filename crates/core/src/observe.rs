//! Structured run journals: the [`RunObserver`] hook the [`Runner`]
//! notifies after every completed run, and the [`RunRecord`] it passes —
//! one line of a machine-readable lab notebook (workload, ABI, scale,
//! configuration hash, event counts, derived metrics, wall-time).
//!
//! The JSONL writer itself lives in `morello-obs`; this module only
//! defines the interface so the core stays free of I/O policy.
//!
//! [`Runner`]: crate::Runner

use crate::report::RunReport;
use cheri_isa::Abi;
use cheri_workloads::Scale;
use morello_pmu::{DerivedMetrics, EventCounts};
use morello_uarch::UarchConfig;
use serde::{Deserialize, Serialize};

/// One journal record per completed run — everything needed to audit or
/// re-plot a result without re-running the simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// The paper's workload name (e.g. `520.omnetpp_r`).
    pub workload: String,
    /// Stable workload key (e.g. `omnetpp_520`).
    pub key: String,
    /// The ABI the binary was lowered for.
    pub abi: Abi,
    /// The problem scale the workload was built at.
    pub scale: Scale,
    /// FNV-1a hash of the microarchitecture configuration (hex), so
    /// journal lines from different configs never get conflated.
    pub uarch_hash: String,
    /// The full Table 1 event counts.
    pub counts: EventCounts,
    /// Derived metrics (Table 1 formulas).
    pub derived: DerivedMetrics,
    /// Simulated execution time in seconds at the platform clock.
    pub seconds: f64,
    /// Retired instruction count.
    pub retired: u64,
    /// The program's exit code (architectural checksum).
    pub exit_code: u64,
    /// Heap summary, including quarantine occupancy and revocation
    /// epochs (`default` keeps pre-revocation journals loadable).
    #[serde(default)]
    pub heap: crate::HeapSummary,
    /// Host wall-clock seconds the simulation itself took.
    pub wall_seconds: f64,
}

impl RunRecord {
    /// Builds a record from a finished report plus the run context the
    /// report does not carry.
    pub fn from_report(
        report: &RunReport,
        scale: Scale,
        uarch: &UarchConfig,
        wall_seconds: f64,
    ) -> RunRecord {
        RunRecord {
            workload: report.workload.clone(),
            key: report.key.clone(),
            abi: report.abi,
            scale,
            uarch_hash: format!("{:016x}", uarch_config_hash(uarch)),
            counts: report.counts.clone(),
            derived: report.derived,
            seconds: report.seconds,
            retired: report.retired,
            exit_code: report.exit_code,
            heap: report.heap,
            wall_seconds,
        }
    }
}

/// A sink for completed-run records (a structured run journal).
///
/// Implementations decide the storage policy — `morello-obs` ships a
/// JSONL file writer; tests use in-memory vectors.
pub trait RunObserver {
    /// Called once per completed run, after the report is assembled.
    fn observe(&mut self, record: &RunRecord);
}

impl<T: RunObserver + ?Sized> RunObserver for &mut T {
    fn observe(&mut self, record: &RunRecord) {
        (**self).observe(record);
    }
}

/// An observer that keeps records in memory (useful in tests and for
/// post-hoc aggregation inside one process).
#[derive(Debug, Default)]
pub struct VecObserver {
    /// The records observed so far, in run order.
    pub records: Vec<RunRecord>,
}

impl RunObserver for VecObserver {
    fn observe(&mut self, record: &RunRecord) {
        self.records.push(record.clone());
    }
}

/// A stable FNV-1a hash of a microarchitecture configuration, computed
/// over its canonical JSON serialisation. Two platforms share a hash iff
/// every modelled parameter matches.
pub fn uarch_config_hash(cfg: &UarchConfig) -> u64 {
    let json = serde_json::to_string(cfg).expect("UarchConfig serialises infallibly");
    fnv1a(json.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let base = UarchConfig::neoverse_n1_morello();
        let other = base.with_tag_table_model(true);
        assert_eq!(uarch_config_hash(&base), uarch_config_hash(&base));
        assert_ne!(uarch_config_hash(&base), uarch_config_hash(&other));
    }
}
