//! The shared fuel watchdog: one bounded-budget, doubling-retry helper
//! behind every engine that must survive a runaway cell.
//!
//! Three subsystems used to carry near-identical copies of this logic —
//! the resilient suite engine ([`crate::suite::run_suite_resilient`]),
//! the fault-coverage campaign (`morello_fault::run_coverage`), and the
//! serving profiler (`morello_serve`'s shape profiling) — each clamping
//! `interp.max_insts` to an attempt budget and, where retries apply,
//! doubling that budget per attempt. This module is the single
//! implementation they now share: a [`Watchdog`] is a fuel budget plus
//! a bounded retry count, the budget doubling per attempt
//! (deterministic backoff — the simulator has no wall-clock jitter to
//! wait out, only budgets to widen).

use crate::runner::Platform;

/// A per-cell fuel watchdog: an optional instruction budget for the
/// first attempt and a bounded number of retries, the budget doubling
/// (saturating) on every retry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Watchdog {
    fuel: Option<u64>,
    max_retries: u32,
}

impl Watchdog {
    /// No budget, no retries: every attempt runs under the platform's
    /// own `max_insts` limit only.
    pub fn unbounded() -> Watchdog {
        Watchdog::default()
    }

    /// A watchdog whose first attempt must finish within `fuel`
    /// retired instructions.
    pub fn budgeted(fuel: u64) -> Watchdog {
        Watchdog {
            fuel: Some(fuel),
            max_retries: 0,
        }
    }

    /// A watchdog with an optional first-attempt budget (`None` =
    /// platform limit only).
    pub fn new(fuel: Option<u64>, max_retries: u32) -> Watchdog {
        Watchdog { fuel, max_retries }
    }

    /// Sets the bounded retry count (budget doubles per retry).
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Watchdog {
        self.max_retries = max_retries;
        self
    }

    /// The first-attempt fuel budget, when one is set.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Retries allowed beyond the first attempt.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The fuel budget for a given attempt (1-based): the watchdog
    /// deadline doubled per retry, saturating. `None` when the watchdog
    /// carries no budget.
    pub fn budget_for_attempt(&self, attempt: u32) -> Option<u64> {
        let fuel = self.fuel?;
        let mult = 1_u64
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        Some(fuel.saturating_mul(mult))
    }

    /// `platform` with `interp.max_insts` clamped to the attempt's
    /// budget (never *raised* above the platform's own limit).
    pub fn cap_platform(&self, platform: &Platform, attempt: u32) -> Platform {
        let mut capped = *platform;
        if let Some(budget) = self.budget_for_attempt(attempt) {
            capped.interp.max_insts = capped.interp.max_insts.min(budget);
        }
        capped
    }

    /// Drives the retry ladder: runs `attempt_fn(attempt, capped)` with
    /// the attempt number (1-based) and the budget-capped platform,
    /// retrying on `Err` up to [`Watchdog::max_retries`] times. Returns
    /// the final result and the attempts consumed.
    pub fn run<T, E>(
        &self,
        platform: &Platform,
        mut attempt_fn: impl FnMut(u32, &Platform) -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        let mut attempt = 1_u32;
        loop {
            let capped = self.cap_platform(platform, attempt);
            match attempt_fn(attempt, &capped) {
                Ok(v) => return (Ok(v), attempt),
                Err(e) if attempt > self.max_retries => return (Err(e), attempt),
                Err(_) => attempt += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_doubles_per_attempt_and_saturates() {
        let wd = Watchdog::budgeted(1000).with_retries(3);
        assert_eq!(wd.budget_for_attempt(1), Some(1000));
        assert_eq!(wd.budget_for_attempt(2), Some(2000));
        assert_eq!(wd.budget_for_attempt(3), Some(4000));
        // Far past any shift width the multiplier saturates instead of
        // wrapping.
        assert_eq!(wd.budget_for_attempt(100), Some(u64::MAX));
        let near_max = Watchdog::budgeted(u64::MAX / 2);
        assert_eq!(near_max.budget_for_attempt(3), Some(u64::MAX));
    }

    #[test]
    fn unbounded_watchdog_has_no_budget() {
        let wd = Watchdog::unbounded();
        assert_eq!(wd.budget_for_attempt(1), None);
        assert_eq!(wd.budget_for_attempt(7), None);
        let platform = Platform::morello();
        let capped = wd.cap_platform(&platform, 1);
        assert_eq!(capped.interp.max_insts, platform.interp.max_insts);
    }

    #[test]
    fn cap_platform_clamps_but_never_raises() {
        let platform = Platform::morello();
        let small = Watchdog::budgeted(42);
        assert_eq!(small.cap_platform(&platform, 1).interp.max_insts, 42);
        // A budget above the platform limit leaves the limit alone.
        let huge = Watchdog::budgeted(u64::MAX);
        assert_eq!(
            huge.cap_platform(&platform, 1).interp.max_insts,
            platform.interp.max_insts
        );
    }

    #[test]
    fn run_retries_until_success_and_counts_attempts() {
        let wd = Watchdog::budgeted(100).with_retries(5);
        let platform = Platform::morello();
        // Succeeds once the doubled budget reaches 400.
        let (result, attempts) = wd.run(&platform, |_, p| {
            if p.interp.max_insts >= 400 {
                Ok(p.interp.max_insts)
            } else {
                Err("budget exhausted")
            }
        });
        assert_eq!(result, Ok(400));
        assert_eq!(attempts, 3);
    }

    #[test]
    fn run_gives_up_after_bounded_retries() {
        let wd = Watchdog::budgeted(1).with_retries(2);
        let platform = Platform::morello();
        let mut calls = 0;
        let (result, attempts) = wd.run(&platform, |_, _| -> Result<(), &str> {
            calls += 1;
            Err("always fails")
        });
        assert_eq!(result, Err("always fails"));
        assert_eq!(attempts, 3, "first attempt plus two retries");
        assert_eq!(calls, 3);
    }
}
