//! Platform configuration and the experiment runner.

use crate::report::{HeapSummary, RunReport, TopDown};
use cheri_isa::{lower, Abi, BinaryLayout, Interp, InterpConfig, InterpError};
use cheri_mem::HeapStats;
use cheri_revoke::StrategyKind;
use cheri_workloads::{Scale, Workload};
use core::fmt;
use morello_pmu::{DerivedMetrics, EventCounts, MultiplexedSession};
use morello_uarch::{TimingCore, UarchConfig, UarchStats};
use serde::{Deserialize, Serialize};

/// A simulated evaluation platform: microarchitecture + interpreter limits
/// + workload scale.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// The timing-model configuration.
    pub uarch: UarchConfig,
    /// Interpreter limits (fuel, call depth, dependence window).
    /// `default` keeps journals written before this field serialised
    /// loadable.
    #[serde(default)]
    pub interp: InterpConfig,
    /// Problem scale for workload builders.
    pub scale: Scale,
}

impl Platform {
    /// The paper's platform: Morello (Neoverse N1 + prototype CHERI
    /// artefacts) at the default harness scale.
    pub fn morello() -> Platform {
        Platform {
            uarch: UarchConfig::neoverse_n1_morello(),
            interp: InterpConfig::default(),
            scale: Scale::Default,
        }
    }

    /// The §5 projection: CHERI-native microarchitecture.
    pub fn projected() -> Platform {
        Platform {
            uarch: UarchConfig::projected_cheri_native(),
            ..Platform::morello()
        }
    }

    /// Returns a copy at a different workload scale.
    #[must_use]
    pub fn with_scale(mut self, scale: Scale) -> Platform {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different microarchitecture.
    #[must_use]
    pub fn with_uarch(mut self, uarch: UarchConfig) -> Platform {
        self.uarch = uarch;
        self
    }

    /// Returns a copy with a different capability-heap allocator
    /// strategy (ignored by non-capability ABIs, which always run the
    /// classic allocator).
    #[must_use]
    pub fn with_cap_alloc(mut self, kind: StrategyKind) -> Platform {
        self.interp.cap_alloc = kind;
        self
    }
}

impl Default for Platform {
    fn default() -> Platform {
        Platform::morello()
    }
}

/// Why a run could not produce a report.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The workload does not support the requested ABI (the paper's NA
    /// cells, e.g. QuickJS under the benchmark ABI).
    UnsupportedAbi {
        /// Workload name.
        workload: String,
        /// The ABI that is not supported.
        abi: Abi,
    },
    /// The architectural execution failed.
    Interp(InterpError),
    /// A worker thread running one ABI cell panicked (a bug in the
    /// workload or the model, surfaced as an error instead of tearing
    /// down the caller).
    WorkerPanicked {
        /// The ABI whose worker died.
        abi: Abi,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnsupportedAbi { workload, abi } => {
                write!(f, "{workload} does not run under the {abi} ABI (NA)")
            }
            RunError::Interp(e) => write!(f, "execution failed: {e}"),
            RunError::WorkerPanicked { abi, message } => {
                write!(f, "worker thread for the {abi} ABI panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Interp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InterpError> for RunError {
    fn from(e: InterpError) -> RunError {
        RunError::Interp(e)
    }
}

/// Runs workloads on a platform and assembles [`RunReport`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Runner {
    platform: Platform,
}

impl Runner {
    /// Creates a runner for the platform.
    pub fn new(platform: Platform) -> Runner {
        Runner { platform }
    }

    /// The platform in force.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs one workload under one ABI and reports everything.
    ///
    /// # Errors
    ///
    /// [`RunError::UnsupportedAbi`] for the paper's NA cells;
    /// [`RunError::Interp`] if execution faults (which, for the shipped
    /// workloads, indicates a bug — capability faults are tested for
    /// separately).
    pub fn run(&self, workload: &Workload, abi: Abi) -> Result<RunReport, RunError> {
        if !workload.supports(abi) {
            return Err(RunError::UnsupportedAbi {
                workload: workload.name.to_owned(),
                abi,
            });
        }
        let generic = workload.build(abi, self.platform.scale);
        let prog = lower(&generic);
        self.run_lowered(workload, abi, &prog)
    }

    /// As [`run`](Runner::run), but fetches the lowered program from
    /// `cache` (lowering it on first use) instead of re-lowering per
    /// call. Lowering depends only on (workload, ABI, scale), so the
    /// cache can safely be shared across platforms that differ in
    /// microarchitecture or interpreter limits — the suite engine and
    /// the ablation ladders exploit exactly that.
    ///
    /// # Errors
    ///
    /// As [`run`](Runner::run).
    pub fn run_with_cache(
        &self,
        workload: &Workload,
        abi: Abi,
        cache: &crate::ProgramCache,
    ) -> Result<RunReport, RunError> {
        if !workload.supports(abi) {
            return Err(RunError::UnsupportedAbi {
                workload: workload.name.to_owned(),
                abi,
            });
        }
        let prog = cache.get_or_lower(workload, abi, self.platform.scale);
        self.run_lowered(workload, abi, &prog)
    }

    /// As [`run_with_cache`](Runner::run_with_cache), with the lowering
    /// and execution phases bracketed by spans on `spans` — the traced
    /// per-cell path of the suite engine. A cache hit shows up as a
    /// near-zero `lower` span, which is exactly what the trace should
    /// say.
    ///
    /// # Errors
    ///
    /// As [`run`](Runner::run).
    pub fn run_with_cache_spanned(
        &self,
        workload: &Workload,
        abi: Abi,
        cache: &crate::ProgramCache,
        spans: &dyn crate::SpanSink,
    ) -> Result<RunReport, RunError> {
        if !workload.supports(abi) {
            return Err(RunError::UnsupportedAbi {
                workload: workload.name.to_owned(),
                abi,
            });
        }
        let prog = {
            let _s = crate::span(spans, &format!("lower {} {abi}", workload.key), "lower");
            cache.get_or_lower(workload, abi, self.platform.scale)
        };
        let _s = crate::span(spans, &format!("run {} {abi}", workload.key), "run");
        self.run_lowered(workload, abi, &prog)
    }

    /// Executes an already-lowered program and assembles the report.
    /// Public so traced drivers can split lowering from execution; the
    /// program must come from [`lower`] or a [`ProgramCache`](crate::ProgramCache)
    /// for the same (workload, ABI, scale), or the report will describe
    /// a mismatched binary.
    ///
    /// # Errors
    ///
    /// [`RunError::Interp`] if execution faults.
    pub fn run_lowered(
        &self,
        workload: &Workload,
        abi: Abi,
        prog: &cheri_isa::Program,
    ) -> Result<RunReport, RunError> {
        let mut core = TimingCore::new(self.platform.uarch);
        let result = Interp::new(self.platform.interp).run(prog, &mut core)?;
        let stats = core.finish();
        Ok(self.assemble(workload, abi, stats, prog, result))
    }

    /// Executes an already-lowered program on the architectural fast
    /// path alone: no timing model is attached, so the engine's batched
    /// per-class accumulation is the only per-instruction bookkeeping.
    /// This is the engine-throughput mode behind `bench_speed`'s
    /// per-ABI `host_insts_per_sec` rate; architectural results
    /// (retired count, class counts, exit code, heap statistics) are
    /// identical to a timed run's.
    ///
    /// # Errors
    ///
    /// [`RunError::Interp`] if execution faults.
    pub fn run_lowered_arch(
        &self,
        prog: &cheri_isa::Program,
    ) -> Result<cheri_isa::RunResult, RunError> {
        Ok(Interp::new(self.platform.interp).run(prog, &mut cheri_isa::NullSink)?)
    }

    /// Runs one workload under one ABI and, on success, appends a
    /// [`RunRecord`](crate::RunRecord) — counts, derived metrics,
    /// configuration hash, and the host wall-time of the simulation —
    /// to the given observer (a structured run journal).
    ///
    /// # Errors
    ///
    /// As [`run`](Runner::run); failed runs are not journalled.
    pub fn run_observed(
        &self,
        workload: &Workload,
        abi: Abi,
        observer: &mut dyn crate::RunObserver,
    ) -> Result<RunReport, RunError> {
        let started = std::time::Instant::now();
        let report = self.run(workload, abi)?;
        let record = crate::RunRecord::from_report(
            &report,
            self.platform.scale,
            &self.platform.uarch,
            started.elapsed().as_secs_f64(),
        );
        observer.observe(&record);
        Ok(report)
    }

    /// Runs one workload the way the paper measured it: a
    /// [`MultiplexedSession`] over the full Table 1 event set, re-running
    /// the (deterministic) workload once per six-counter group. Returns
    /// the merged counts and the number of runs used.
    ///
    /// # Errors
    ///
    /// As [`run`](Runner::run).
    pub fn run_multiplexed(
        &self,
        workload: &Workload,
        abi: Abi,
    ) -> Result<(EventCounts, usize), RunError> {
        if !workload.supports(abi) {
            return Err(RunError::UnsupportedAbi {
                workload: workload.name.to_owned(),
                abi,
            });
        }
        let generic = workload.build(abi, self.platform.scale);
        let prog = lower(&generic);
        let session = MultiplexedSession::plan_full();
        let counts = session.collect(|_group| {
            let mut core = TimingCore::new(self.platform.uarch);
            let result = Interp::new(self.platform.interp).run(&prog, &mut core)?;
            let mut stats = core.finish();
            fold_heap_stats(&mut stats, &result.heap_stats);
            Ok::<_, InterpError>(stats)
        })?;
        Ok((counts, session.required_runs()))
    }

    /// Runs a workload under every ABI it supports, in parallel threads.
    /// Unsupported cells come back as `None` (the paper's NA).
    ///
    /// # Errors
    ///
    /// Fails if any supported cell fails.
    pub fn run_all_abis(&self, workload: &Workload) -> Result<[Option<RunReport>; 3], RunError> {
        let mut out = [None, None, None];
        std::thread::scope(|scope| -> Result<(), RunError> {
            let mut handles = Vec::new();
            for (i, abi) in Abi::ALL.iter().enumerate() {
                if !workload.supports(*abi) {
                    continue;
                }
                let w = workload.clone();
                handles.push((i, scope.spawn(move || self.run(&w, *abi))));
            }
            for (i, h) in handles {
                match h.join() {
                    Ok(res) => out[i] = Some(res?),
                    Err(payload) => {
                        return Err(RunError::WorkerPanicked {
                            abi: Abi::ALL[i],
                            message: crate::engine::panic_message(payload),
                        });
                    }
                }
            }
            Ok(())
        })?;
        Ok(out)
    }

    fn assemble(
        &self,
        workload: &Workload,
        abi: Abi,
        mut stats: UarchStats,
        prog: &cheri_isa::Program,
        result: cheri_isa::RunResult,
    ) -> RunReport {
        fold_heap_stats(&mut stats, &result.heap_stats);
        let counts = EventCounts::from_uarch(&stats);
        let derived = DerivedMetrics::from_counts(&counts);
        let topdown = TopDown::from_stats(&stats, &derived);
        RunReport {
            workload: workload.name.to_owned(),
            key: workload.key.to_owned(),
            abi,
            seconds: self.platform.uarch.cycles_to_seconds(stats.cpu_cycles),
            retired: stats.inst_retired,
            exit_code: result.exit_code,
            heap: HeapSummary {
                allocs: result.heap_stats.total_allocs,
                frees: result.heap_stats.total_frees,
                peak_live_bytes: result.heap_stats.peak_live_bytes,
                padding_bytes: result.heap_stats.padding_bytes,
                pages_touched: result.pages_touched,
                quarantine_bytes_hwm: result.heap_stats.quarantine_bytes_hwm,
                quarantine_blocks_hwm: result.heap_stats.quarantine_blocks_hwm,
                revocation_epochs: result.heap_stats.revocation_epochs,
            },
            binary: BinaryLayout::of(prog),
            stats,
            counts,
            derived,
            topdown,
        }
    }
}

/// Copies the allocator's revocation counters into the microarchitectural
/// stats so they surface as PMU events. Called on every execution path
/// (direct runs, each leg of a multiplexed session, and observability
/// front-ends like `morello-obs`) so the synthetic counters stay
/// consistent with the hardware-modelled ones.
pub fn fold_heap_stats(stats: &mut UarchStats, heap: &HeapStats) {
    stats.sweep_granules_visited = heap.sweep_granules_visited;
    stats.sweep_tags_cleared = heap.sweep_tags_cleared;
    stats.revocation_epochs = heap.revocation_epochs;
    stats.quarantine_bytes_hwm = heap.quarantine_bytes_hwm;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_workloads::by_key;
    use morello_pmu::PmuEvent;

    fn test_runner() -> Runner {
        Runner::new(Platform::morello().with_scale(Scale::Test))
    }

    #[test]
    fn run_produces_consistent_report() {
        let r = test_runner();
        let w = by_key("lbm_519").unwrap();
        let rep = r.run(&w, Abi::Hybrid).unwrap();
        assert!(rep.seconds > 0.0);
        assert!(rep.retired > 0);
        assert_eq!(rep.stats.inst_retired, rep.retired);
        assert!(rep.ipc() > 0.0 && rep.ipc() <= 4.0);
        // Top-down shares are sane.
        let t = rep.topdown;
        assert!(t.frontend_bound >= 0.0 && t.frontend_bound < 1.0);
        assert!(t.backend_bound >= 0.0 && t.backend_bound < 1.0);
        assert!((t.l1_bound + t.l2_bound + t.ext_mem_bound - t.memory_bound).abs() < 1e-6);
    }

    #[test]
    fn cached_run_matches_direct_run() {
        let r = test_runner();
        let w = by_key("xz_557").unwrap();
        let cache = crate::ProgramCache::new();
        let direct = r.run(&w, Abi::Purecap).unwrap();
        let first = r.run_with_cache(&w, Abi::Purecap, &cache).unwrap();
        let second = r.run_with_cache(&w, Abi::Purecap, &cache).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        for rep in [&first, &second] {
            assert_eq!(rep.counts, direct.counts);
            assert_eq!(rep.stats, direct.stats);
            assert_eq!(rep.exit_code, direct.exit_code);
            assert!((rep.seconds - direct.seconds).abs() < 1e-15);
        }
    }

    #[test]
    fn na_cell_is_reported() {
        let r = test_runner();
        let q = by_key("quickjs").unwrap();
        assert!(matches!(
            r.run(&q, Abi::Benchmark),
            Err(RunError::UnsupportedAbi { .. })
        ));
    }

    #[test]
    fn multiplexed_session_matches_single_run() {
        let r = test_runner();
        let w = by_key("deepsjeng_531").unwrap();
        let single = r.run(&w, Abi::Purecap).unwrap();
        let (multi, runs) = r.run_multiplexed(&w, Abi::Purecap).unwrap();
        assert!(runs >= 7, "full event set needs several runs, got {runs}");
        for (e, v) in single.counts.iter() {
            assert_eq!(multi.get(e), v, "mismatch on {e}");
        }
        assert!(multi.get(PmuEvent::CapMemAccessRd) > 0);
    }

    #[test]
    fn swept_strategy_surfaces_revocation_events() {
        let w = by_key("alloc_stress").unwrap();
        let swept = Runner::new(
            Platform::morello()
                .with_scale(Scale::Test)
                .with_cap_alloc(StrategyKind::swept_bytes(16 * 1024)),
        );
        let p = swept.run(&w, Abi::Purecap).unwrap();
        assert!(p.counts.get(PmuEvent::RevocationEpochs) > 0);
        assert!(p.counts.get(PmuEvent::SweepGranulesVisited) > 0);
        assert!(p.counts.get(PmuEvent::QuarantineBytesHighWater) > 0);
        assert!(p.heap.quarantine_bytes_hwm > 0);
        assert!(p.heap.revocation_epochs > 0);
        // The sweep's memory traffic must be visible to the cache model.
        let d = test_runner().run(&w, Abi::Purecap).unwrap();
        assert!(p.stats.mem_access_rd > d.stats.mem_access_rd);
        // Hybrid runs the classic allocator: no sweeps, whatever the knob.
        let h = swept.run(&w, Abi::Hybrid).unwrap();
        assert_eq!(h.counts.get(PmuEvent::SweepGranulesVisited), 0);
        assert_eq!(h.heap.revocation_epochs, 0);
        assert_eq!(h.heap.quarantine_bytes_hwm, 0);
        // The default padded strategy quarantines but never tag-sweeps.
        assert_eq!(d.counts.get(PmuEvent::SweepTagsCleared), 0);
        assert!(d.heap.quarantine_blocks_hwm > 0);
    }

    #[test]
    fn run_all_abis_handles_na() {
        let r = test_runner();
        let q = by_key("quickjs").unwrap();
        let cells = r.run_all_abis(&q).unwrap();
        assert!(cells[0].is_some()); // hybrid
        assert!(cells[1].is_none()); // benchmark: NA
        assert!(cells[2].is_some()); // purecap
    }

    #[test]
    fn purecap_is_slower_for_pointer_heavy_workload() {
        let r = test_runner();
        let w = by_key("omnetpp_520").unwrap();
        let h = r.run(&w, Abi::Hybrid).unwrap();
        let p = r.run(&w, Abi::Purecap).unwrap();
        assert!(
            p.seconds > h.seconds,
            "omnetpp purecap ({}) must be slower than hybrid ({})",
            p.seconds,
            h.seconds
        );
        assert!(p.derived.cap_traffic_share > 0.2);
        assert!(h.derived.cap_traffic_share < 0.05);
    }
}
