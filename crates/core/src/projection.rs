//! The paper's §5 projection: how much of the purecap overhead would a
//! CHERI-native microarchitecture remove?

use crate::cache::ProgramCache;
use crate::runner::{Platform, RunError, Runner};
use cheri_isa::Abi;
use cheri_workloads::Workload;
use morello_uarch::UarchConfig;
use serde::{Deserialize, Serialize};

/// Per-workload projection comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProjectionRow {
    /// Workload name.
    pub name: String,
    /// Purecap slowdown on the Morello prototype (paper's measurement).
    pub morello_slowdown: f64,
    /// Purecap slowdown with only a PCC-aware branch predictor.
    pub pcc_aware_slowdown: f64,
    /// Purecap slowdown with only a capability-wide store buffer.
    pub wide_sb_slowdown: f64,
    /// Purecap slowdown with only capability-MADD fusion.
    pub cap_madd_slowdown: f64,
    /// Purecap slowdown with all three improvements (the projected
    /// CHERI-native design).
    pub projected_slowdown: f64,
}

impl ProjectionRow {
    /// Fraction of the prototype's overhead removed by the full
    /// projection (0 when the prototype shows no overhead).
    pub fn overhead_removed(&self) -> f64 {
        let base = self.morello_slowdown - 1.0;
        if base <= 0.0 {
            return 0.0;
        }
        ((self.morello_slowdown - self.projected_slowdown) / base).clamp(0.0, 1.0)
    }
}

fn slowdown(platform: Platform, w: &Workload, cache: &ProgramCache) -> Result<f64, RunError> {
    let runner = Runner::new(platform);
    let h = runner.run_with_cache(w, Abi::Hybrid, cache)?;
    let p = runner.run_with_cache(w, Abi::Purecap, cache)?;
    Ok(p.seconds / h.seconds)
}

/// Runs the ablation ladder for one workload: prototype, each single
/// improvement, and the combined projection. The hybrid baseline is
/// re-measured per configuration so each slowdown is internally
/// consistent.
///
/// Lowering is shared across the whole ladder through a private
/// [`ProgramCache`] — the ten runs use two lowered programs. Pass your
/// own cache via [`project_with`] to share across workloads too.
///
/// # Errors
///
/// Fails if any run fails.
pub fn project(base: Platform, w: &Workload) -> Result<ProjectionRow, RunError> {
    project_with(base, w, &ProgramCache::new())
}

/// As [`project`], sharing an external lowered-program cache.
///
/// # Errors
///
/// Fails if any run fails.
pub fn project_with(
    base: Platform,
    w: &Workload,
    cache: &ProgramCache,
) -> Result<ProjectionRow, RunError> {
    let morello = UarchConfig {
        pcc_aware_branch_predictor: false,
        wide_cap_store_buffer: false,
        cap_madd_fusion: false,
        ..base.uarch
    };
    Ok(ProjectionRow {
        name: w.name.to_owned(),
        morello_slowdown: slowdown(base.with_uarch(morello), w, cache)?,
        pcc_aware_slowdown: slowdown(base.with_uarch(morello.with_pcc_aware_bp(true)), w, cache)?,
        wide_sb_slowdown: slowdown(
            base.with_uarch(morello.with_wide_cap_store_buffer(true)),
            w,
            cache,
        )?,
        cap_madd_slowdown: slowdown(
            base.with_uarch(morello.with_cap_madd_fusion(true)),
            w,
            cache,
        )?,
        projected_slowdown: slowdown(
            base.with_uarch(UarchConfig {
                pcc_aware_branch_predictor: true,
                wide_cap_store_buffer: true,
                cap_madd_fusion: true,
                cap_manip_core_cost: 0.10,
                ..morello
            }),
            w,
            cache,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_workloads::{by_key, Scale};

    #[test]
    fn projection_reduces_pcc_heavy_overhead() {
        let base = Platform::morello().with_scale(Scale::Test);
        let w = by_key("xalancbmk_523").unwrap();
        let row = project(base, &w).unwrap();
        assert!(
            row.pcc_aware_slowdown < row.morello_slowdown,
            "PCC-aware predictor must help xalancbmk ({} vs {})",
            row.pcc_aware_slowdown,
            row.morello_slowdown
        );
        assert!(row.projected_slowdown <= row.pcc_aware_slowdown + 0.02);
        assert!(row.overhead_removed() > 0.0);
    }

    #[test]
    fn overhead_removed_handles_speedups() {
        let row = ProjectionRow {
            name: "x".into(),
            morello_slowdown: 0.95,
            pcc_aware_slowdown: 0.95,
            wide_sb_slowdown: 0.95,
            cap_madd_slowdown: 0.95,
            projected_slowdown: 0.94,
        };
        assert_eq!(row.overhead_removed(), 0.0);
    }
}
