//! Whole-suite execution helpers for the experiment harness.

use crate::report::RunReport;
use crate::runner::{RunError, Runner};
use cheri_isa::Abi;
use cheri_workloads::{registry, Workload};
use serde::{Deserialize, Serialize};

/// One workload's results across the three ABIs (`None` = NA).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteRow {
    /// The workload name.
    pub name: String,
    /// Stable key.
    pub key: String,
    /// Reports indexed as `[hybrid, benchmark, purecap]` (the order of
    /// [`Abi::ALL`]).
    pub reports: [Option<RunReport>; 3],
}

impl SuiteRow {
    /// The report for an ABI, if the cell ran.
    pub fn get(&self, abi: Abi) -> Option<&RunReport> {
        let idx = Abi::ALL.iter().position(|a| *a == abi).expect("known abi");
        self.reports[idx].as_ref()
    }

    /// Execution time normalised to hybrid (`None` when NA). This is the
    /// paper's Figure 1 quantity.
    pub fn normalized_time(&self, abi: Abi) -> Option<f64> {
        let h = self.get(Abi::Hybrid)?.seconds;
        Some(self.get(abi)?.seconds / h)
    }

    /// The purecap slowdown factor.
    pub fn purecap_slowdown(&self) -> Option<f64> {
        self.normalized_time(Abi::Purecap)
    }
}

/// Runs a set of workloads across all ABIs.
///
/// Workloads run sequentially; within each workload the ABIs run in
/// parallel (see [`Runner::run_all_abis`]).
///
/// # Errors
///
/// Fails on the first workload whose supported cell fails.
pub fn run_suite(runner: &Runner, workloads: &[Workload]) -> Result<Vec<SuiteRow>, RunError> {
    workloads
        .iter()
        .map(|w| {
            let reports = runner.run_all_abis(w)?;
            Ok(SuiteRow {
                name: w.name.to_owned(),
                key: w.key.to_owned(),
                reports,
            })
        })
        .collect()
}

/// Runs the full 21-workload registry.
///
/// # Errors
///
/// As [`run_suite`].
pub fn run_full_suite(runner: &Runner) -> Result<Vec<SuiteRow>, RunError> {
    run_suite(runner, &registry())
}

/// The 12 representative workloads of the paper's Table 3/4, in column
/// order.
pub const TABLE3_KEYS: [&str; 12] = [
    "parest_510",
    "lbm_519",
    "omnetpp_520",
    "xalancbmk_523",
    "deepsjeng_531",
    "leela_541",
    "nab_544",
    "xz_557",
    "llama_inference",
    "llama_matmul",
    "sqlite",
    "quickjs",
];

/// The 6 workloads of the paper's Table 4 top-down breakdown.
pub const TABLE4_KEYS: [&str; 6] = [
    "lbm_519",
    "omnetpp_520",
    "leela_541",
    "llama_inference",
    "sqlite",
    "quickjs",
];

/// Selects registry workloads by key, preserving order.
///
/// # Panics
///
/// Panics on an unknown key (the constants above are tested).
pub fn select(keys: &[&str]) -> Vec<Workload> {
    keys.iter()
        .map(|k| cheri_workloads::by_key(k).unwrap_or_else(|| panic!("unknown workload {k}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Platform;
    use cheri_workloads::Scale;

    #[test]
    fn table_keys_resolve() {
        assert_eq!(select(&TABLE3_KEYS).len(), 12);
        assert_eq!(select(&TABLE4_KEYS).len(), 6);
    }

    #[test]
    fn small_suite_runs_and_normalizes() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let rows = run_suite(&runner, &select(&["lbm_519", "quickjs"])).unwrap();
        assert_eq!(rows.len(), 2);
        let lbm = &rows[0];
        assert!((lbm.normalized_time(Abi::Hybrid).unwrap() - 1.0).abs() < 1e-12);
        assert!(lbm.purecap_slowdown().unwrap() > 0.5);
        let quickjs = &rows[1];
        assert!(quickjs.normalized_time(Abi::Benchmark).is_none(), "NA cell");
        assert!(quickjs.purecap_slowdown().is_some());
    }
}
