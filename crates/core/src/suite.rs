//! Whole-suite execution: the parallel suite engine.
//!
//! The paper's evaluation is a workload × ABI matrix (× scale, across
//! harness invocations). Every cell is an independent pure simulation,
//! so the engine schedules all cells over a bounded work-stealing pool
//! ([`SuiteConfig::jobs`] std threads), shares lowered programs through
//! a [`ProgramCache`] so each cell shape is lowered exactly once, and
//! reduces the results deterministically: rows come back in workload
//! order with ABI cells in [`Abi::ALL`] order, byte-identical no matter
//! how many workers ran or which finished first. The golden-report and
//! determinism tests under `tests/` lock that contract.

use crate::cache::ProgramCache;
use crate::engine::{run_cells, CellOutcome};
use crate::observe::{RunObserver, RunRecord};
use crate::report::RunReport;
use crate::runner::{RunError, Runner};
use crate::span::{span, NullSpanSink, SpanSink};
use crate::watchdog::Watchdog;
use cheri_isa::Abi;
use cheri_workloads::{registry, Workload};
use serde::{Deserialize, Serialize};

/// One workload's results across the three ABIs (`None` = NA).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteRow {
    /// The workload name.
    pub name: String,
    /// Stable key.
    pub key: String,
    /// Reports indexed as `[hybrid, benchmark, purecap]` (the order of
    /// [`Abi::ALL`]).
    pub reports: [Option<RunReport>; 3],
}

impl SuiteRow {
    /// The report for an ABI, if the cell ran.
    pub fn get(&self, abi: Abi) -> Option<&RunReport> {
        let idx = Abi::ALL.iter().position(|a| *a == abi).expect("known abi");
        self.reports[idx].as_ref()
    }

    /// Execution time normalised to hybrid (`None` when NA). This is the
    /// paper's Figure 1 quantity.
    pub fn normalized_time(&self, abi: Abi) -> Option<f64> {
        let h = self.get(Abi::Hybrid)?.seconds;
        Some(self.get(abi)?.seconds / h)
    }

    /// The purecap slowdown factor.
    pub fn purecap_slowdown(&self) -> Option<f64> {
        self.normalized_time(Abi::Purecap)
    }
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// How the suite engine schedules the cell matrix.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteConfig {
    /// Worker threads for the cell matrix. `0` means "use
    /// [`default_jobs`]"; `1` is the sequential reference the
    /// determinism tests compare the parallel schedules against.
    pub jobs: usize,
    /// Per-cell fuel watchdog for [`run_suite_resilient`]: an
    /// instruction budget each cell must finish within on its first
    /// attempt. `None` (the default) runs cells under the platform's
    /// own `max_insts` limit only. Ignored by [`run_suite_with`].
    pub cell_fuel: Option<u64>,
    /// Bounded retries for [`run_suite_resilient`]: how many times a
    /// failing cell is re-attempted before quarantine. Each retry
    /// doubles the fuel budget (deterministic backoff — the simulator
    /// has no wall-clock jitter to wait out, only budgets to widen).
    /// Ignored by [`run_suite_with`].
    pub max_retries: u32,
}

impl SuiteConfig {
    /// A config running `jobs` workers (`0` = available parallelism).
    pub fn with_jobs(jobs: usize) -> SuiteConfig {
        SuiteConfig {
            jobs,
            ..SuiteConfig::default()
        }
    }

    /// Adds a per-cell fuel watchdog (see [`SuiteConfig::cell_fuel`]).
    pub fn with_watchdog(mut self, cell_fuel: u64) -> SuiteConfig {
        self.cell_fuel = Some(cell_fuel);
        self
    }

    /// Sets the bounded retry count (see [`SuiteConfig::max_retries`]).
    pub fn with_retries(mut self, max_retries: u32) -> SuiteConfig {
        self.max_retries = max_retries;
        self
    }

    /// The worker count actually used.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            default_jobs()
        } else {
            self.jobs
        }
    }

    /// The shared [`Watchdog`] this config describes: the per-cell fuel
    /// budget plus the bounded retry ladder (budget doubling per
    /// attempt).
    pub fn watchdog(&self) -> Watchdog {
        Watchdog::new(self.cell_fuel, self.max_retries)
    }
}

/// One schedulable cell of the suite matrix.
#[derive(Clone, Copy)]
struct Cell {
    workload: usize,
    abi_idx: usize,
}

/// A finished cell: the run result plus the host wall-time the cell's
/// simulation took (journalled so speedups are observable).
struct CellResult {
    result: Result<RunReport, RunError>,
    wall_seconds: f64,
}

/// Runs a set of workloads across all ABIs on the parallel suite engine,
/// sharing `cache` and scheduling over `config.effective_jobs()` workers.
///
/// Rows are returned in workload order with ABI cells in [`Abi::ALL`]
/// order regardless of completion order, so results are bit-identical
/// across worker counts. If several cells fail, the error of the first
/// failing cell **in canonical order** (not completion order) is
/// returned, again independent of scheduling. A panicking cell surfaces
/// as [`RunError::WorkerPanicked`] without tearing down sibling cells.
///
/// # Errors
///
/// The canonically-first failing supported cell's error.
pub fn run_suite_with(
    runner: &Runner,
    workloads: &[Workload],
    cache: &ProgramCache,
    config: &SuiteConfig,
) -> Result<Vec<SuiteRow>, RunError> {
    let (rows, _) = run_suite_cells(runner, workloads, cache, config, &NullSpanSink)?;
    Ok(rows)
}

/// As [`run_suite_with`], additionally appending one [`RunRecord`] per
/// completed cell — including the cell's host wall-time — to `observer`,
/// in canonical cell order (so journals, too, are deterministic).
///
/// # Errors
///
/// As [`run_suite_with`]; on error nothing is journalled.
pub fn run_suite_observed(
    runner: &Runner,
    workloads: &[Workload],
    cache: &ProgramCache,
    config: &SuiteConfig,
    observer: &mut dyn RunObserver,
) -> Result<Vec<SuiteRow>, RunError> {
    run_suite_traced(
        runner,
        workloads,
        cache,
        config,
        Some(observer),
        &NullSpanSink,
    )
}

/// The fully-instrumented suite entry point: as [`run_suite_with`], with
/// per-cell `lower`/`run` spans (thread-tagged by the [`SpanSink`]
/// implementation) plus an enclosing `sweep` span emitted on `spans`,
/// and — when `observer` is given — one [`RunRecord`] per completed
/// cell, in canonical order.
///
/// # Errors
///
/// As [`run_suite_with`]; on error nothing is journalled.
pub fn run_suite_traced(
    runner: &Runner,
    workloads: &[Workload],
    cache: &ProgramCache,
    config: &SuiteConfig,
    observer: Option<&mut dyn RunObserver>,
    spans: &dyn SpanSink,
) -> Result<Vec<SuiteRow>, RunError> {
    let (rows, walls) = run_suite_cells(runner, workloads, cache, config, spans)?;
    if let Some(observer) = observer {
        let platform = runner.platform();
        for (row, row_walls) in rows.iter().zip(&walls) {
            for (report, wall) in row.reports.iter().zip(row_walls) {
                if let (Some(report), Some(wall)) = (report, wall) {
                    let record =
                        RunRecord::from_report(report, platform.scale, &platform.uarch, *wall);
                    observer.observe(&record);
                }
            }
        }
    }
    Ok(rows)
}

/// The engine proper: schedule, execute, reduce.
#[allow(clippy::type_complexity)]
fn run_suite_cells(
    runner: &Runner,
    workloads: &[Workload],
    cache: &ProgramCache,
    config: &SuiteConfig,
    spans: &dyn SpanSink,
) -> Result<(Vec<SuiteRow>, Vec<[Option<f64>; 3]>), RunError> {
    let mut cells = Vec::new();
    for (workload, w) in workloads.iter().enumerate() {
        for (abi_idx, abi) in Abi::ALL.iter().enumerate() {
            if w.supports(*abi) {
                cells.push(Cell { workload, abi_idx });
            }
        }
    }

    let _sweep = span(
        spans,
        &format!("sweep {} workloads, {} cells", workloads.len(), cells.len()),
        "sweep",
    );
    let outcomes = run_cells(cells.len(), config.effective_jobs(), |i| {
        let cell = cells[i];
        let started = std::time::Instant::now();
        let result = runner.run_with_cache_spanned(
            &workloads[cell.workload],
            Abi::ALL[cell.abi_idx],
            cache,
            spans,
        );
        CellResult {
            result,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    });

    let mut rows: Vec<SuiteRow> = workloads
        .iter()
        .map(|w| SuiteRow {
            name: w.name.to_owned(),
            key: w.key.to_owned(),
            reports: [None, None, None],
        })
        .collect();
    let mut walls: Vec<[Option<f64>; 3]> = vec![[None, None, None]; workloads.len()];
    for (cell, outcome) in cells.iter().zip(outcomes) {
        match outcome {
            CellOutcome::Panicked(message) => {
                return Err(RunError::WorkerPanicked {
                    abi: Abi::ALL[cell.abi_idx],
                    message,
                });
            }
            CellOutcome::Done(CellResult { result, .. }) if result.is_err() => {
                return Err(result.expect_err("checked"));
            }
            CellOutcome::Done(CellResult {
                result,
                wall_seconds,
            }) => {
                rows[cell.workload].reports[cell.abi_idx] = Some(result.expect("checked"));
                walls[cell.workload][cell.abi_idx] = Some(wall_seconds);
            }
        }
    }
    Ok((rows, walls))
}

/// One cell the resilient engine gave up on after exhausting its
/// retries: the suite still completes, with this cell's report slot
/// left empty and the final error recorded here.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedCell {
    /// The workload name.
    pub workload: String,
    /// Stable workload key.
    pub key: String,
    /// The ABI of the failing cell.
    pub abi: Abi,
    /// Attempts made (1 + retries), 0 when the cell's worker panicked
    /// before the retry loop could count.
    pub attempts: u32,
    /// The final error, formatted.
    pub error: String,
}

/// What the resilient suite engine survived: scheduled/completed cell
/// counts, every quarantined cell, and the retries spent. Serialised
/// into reports so degraded runs are visible, not silent.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Cells scheduled (supported workload × ABI pairs).
    pub cells: usize,
    /// Cells that produced a report.
    pub completed: usize,
    /// Cells abandoned after bounded retry, in canonical cell order.
    pub quarantined: Vec<QuarantinedCell>,
    /// Total retry attempts across all cells (beyond first attempts).
    pub retries: u64,
}

impl FaultSummary {
    /// True when every scheduled cell completed without retries.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.retries == 0
    }
}

/// The outcome of one resilient cell: a report or a formatted error,
/// plus how many attempts it took.
struct ResilientCell {
    result: Result<RunReport, RunError>,
    attempts: u32,
}

/// Runs the suite with graceful degradation: failing cells are retried
/// under a doubling fuel budget ([`SuiteConfig::max_retries`] times) and
/// then *quarantined* instead of failing the suite — the engine always
/// returns every row it could compute plus a [`FaultSummary`] naming
/// what it could not. With [`SuiteConfig::cell_fuel`] set, each attempt
/// additionally runs under a fuel watchdog deadline, so a runaway cell
/// (a livelocked workload, a corrupted-but-not-trapping run) cannot
/// stall the suite: it exhausts its budget, gets retried with double,
/// and is eventually quarantined.
///
/// Unlike [`run_suite_with`], this never returns an error: a suite with
/// an always-faulting cell completes with that cell quarantined.
pub fn run_suite_resilient(
    runner: &Runner,
    workloads: &[Workload],
    cache: &ProgramCache,
    config: &SuiteConfig,
) -> (Vec<SuiteRow>, FaultSummary) {
    let mut cells = Vec::new();
    for (workload, w) in workloads.iter().enumerate() {
        for (abi_idx, abi) in Abi::ALL.iter().enumerate() {
            if w.supports(*abi) {
                cells.push(Cell { workload, abi_idx });
            }
        }
    }

    let watchdog = config.watchdog();
    let outcomes = run_cells(cells.len(), config.effective_jobs(), |i| {
        let cell = cells[i];
        let w = &workloads[cell.workload];
        let abi = Abi::ALL[cell.abi_idx];
        let (result, attempts) = watchdog.run(runner.platform(), |_, capped| {
            if watchdog.fuel().is_some() {
                Runner::new(*capped).run_with_cache(w, abi, cache)
            } else {
                runner.run_with_cache(w, abi, cache)
            }
        });
        ResilientCell { result, attempts }
    });

    let mut rows: Vec<SuiteRow> = workloads
        .iter()
        .map(|w| SuiteRow {
            name: w.name.to_owned(),
            key: w.key.to_owned(),
            reports: [None, None, None],
        })
        .collect();
    let mut summary = FaultSummary {
        cells: cells.len(),
        ..FaultSummary::default()
    };
    for (cell, outcome) in cells.iter().zip(outcomes) {
        let w = &workloads[cell.workload];
        let abi = Abi::ALL[cell.abi_idx];
        match outcome {
            CellOutcome::Panicked(message) => summary.quarantined.push(QuarantinedCell {
                workload: w.name.to_owned(),
                key: w.key.to_owned(),
                abi,
                attempts: 0,
                error: format!("worker panicked: {message}"),
            }),
            CellOutcome::Done(ResilientCell { result, attempts }) => {
                summary.retries += u64::from(attempts.saturating_sub(1));
                match result {
                    Ok(report) => {
                        rows[cell.workload].reports[cell.abi_idx] = Some(report);
                        summary.completed += 1;
                    }
                    Err(e) => summary.quarantined.push(QuarantinedCell {
                        workload: w.name.to_owned(),
                        key: w.key.to_owned(),
                        abi,
                        attempts,
                        error: e.to_string(),
                    }),
                }
            }
        }
    }
    (rows, summary)
}

/// Runs a set of workloads across all ABIs with a fresh private
/// [`ProgramCache`] and the default worker count.
///
/// # Errors
///
/// As [`run_suite_with`].
pub fn run_suite(runner: &Runner, workloads: &[Workload]) -> Result<Vec<SuiteRow>, RunError> {
    run_suite_with(
        runner,
        workloads,
        &ProgramCache::new(),
        &SuiteConfig::default(),
    )
}

/// Runs the full 21-workload registry.
///
/// # Errors
///
/// As [`run_suite`].
pub fn run_full_suite(runner: &Runner) -> Result<Vec<SuiteRow>, RunError> {
    run_suite(runner, &registry())
}

/// Runs the full registry on an explicit cache and engine config.
///
/// # Errors
///
/// As [`run_suite_with`].
pub fn run_full_suite_with(
    runner: &Runner,
    cache: &ProgramCache,
    config: &SuiteConfig,
) -> Result<Vec<SuiteRow>, RunError> {
    run_suite_with(runner, &registry(), cache, config)
}

/// The 12 representative workloads of the paper's Table 3/4, in column
/// order.
pub const TABLE3_KEYS: [&str; 12] = [
    "parest_510",
    "lbm_519",
    "omnetpp_520",
    "xalancbmk_523",
    "deepsjeng_531",
    "leela_541",
    "nab_544",
    "xz_557",
    "llama_inference",
    "llama_matmul",
    "sqlite",
    "quickjs",
];

/// The 6 workloads of the paper's Table 4 top-down breakdown.
pub const TABLE4_KEYS: [&str; 6] = [
    "lbm_519",
    "omnetpp_520",
    "leela_541",
    "llama_inference",
    "sqlite",
    "quickjs",
];

/// Selects registry workloads by key, preserving order.
///
/// # Panics
///
/// Panics on an unknown key (the constants above are tested).
pub fn select(keys: &[&str]) -> Vec<Workload> {
    keys.iter()
        .map(|k| cheri_workloads::by_key(k).unwrap_or_else(|| panic!("unknown workload {k}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Platform;
    use crate::VecObserver;
    use cheri_workloads::Scale;

    #[test]
    fn table_keys_resolve() {
        assert_eq!(select(&TABLE3_KEYS).len(), 12);
        assert_eq!(select(&TABLE4_KEYS).len(), 6);
    }

    #[test]
    fn small_suite_runs_and_normalizes() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let rows = run_suite(&runner, &select(&["lbm_519", "quickjs"])).unwrap();
        assert_eq!(rows.len(), 2);
        let lbm = &rows[0];
        assert!((lbm.normalized_time(Abi::Hybrid).unwrap() - 1.0).abs() < 1e-12);
        assert!(lbm.purecap_slowdown().unwrap() > 0.5);
        let quickjs = &rows[1];
        assert!(quickjs.normalized_time(Abi::Benchmark).is_none(), "NA cell");
        assert!(quickjs.purecap_slowdown().is_some());
    }

    #[test]
    fn suite_lowers_each_cell_once() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let cache = ProgramCache::new();
        let workloads = select(&["lbm_519", "quickjs"]);
        let cfg = SuiteConfig::with_jobs(2);
        run_suite_with(&runner, &workloads, &cache, &cfg).unwrap();
        // lbm: 3 ABIs; quickjs: 2 (benchmark is NA).
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 0);
        // A second sweep is all hits.
        run_suite_with(&runner, &workloads, &cache, &cfg).unwrap();
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 5);
    }

    #[test]
    fn observed_suite_journals_cells_in_canonical_order() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let mut obs = VecObserver::default();
        let rows = run_suite_observed(
            &runner,
            &select(&["quickjs", "lbm_519"]),
            &ProgramCache::new(),
            &SuiteConfig::with_jobs(3),
            &mut obs,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        // quickjs hybrid, quickjs purecap, then lbm's three cells.
        let seen: Vec<(String, Abi)> = obs.records.iter().map(|r| (r.key.clone(), r.abi)).collect();
        assert_eq!(
            seen,
            vec![
                ("quickjs".to_owned(), Abi::Hybrid),
                ("quickjs".to_owned(), Abi::Purecap),
                ("lbm_519".to_owned(), Abi::Hybrid),
                ("lbm_519".to_owned(), Abi::Benchmark),
                ("lbm_519".to_owned(), Abi::Purecap),
            ]
        );
        assert!(obs.records.iter().all(|r| r.wall_seconds > 0.0));
    }

    /// Unbounded self-recursion: dies with `InterpError::CallDepth`
    /// under every ABI — the deterministic always-faulting cell.
    fn always_faulting(abi: cheri_isa::Abi, _scale: Scale) -> cheri_isa::GenericProgram {
        let mut b = cheri_isa::ProgramBuilder::new("boom", abi);
        let main = b.declare("main", 0);
        b.define(main, |f| {
            let r = f.vreg();
            f.call(main, &[], Some(r));
            f.ret(Some(r));
        });
        b.set_entry(main);
        b.build()
    }

    /// A straight-line spin needing a few hundred thousand instructions:
    /// exhausts a small fuel watchdog but completes once retry doubling
    /// has widened the budget.
    fn needs_fuel(abi: cheri_isa::Abi, _scale: Scale) -> cheri_isa::GenericProgram {
        let mut b = cheri_isa::ProgramBuilder::new("spin", abi);
        let main = b.function("main", 0, |f| {
            let acc = f.vreg();
            f.mov_imm(acc, 0);
            let n = f.vreg();
            f.mov_imm(n, 100_000);
            f.for_loop(0, n, 1, |f, i| {
                f.add(acc, acc, i);
            });
            f.ret(Some(acc));
        });
        b.set_entry(main);
        b.build()
    }

    #[test]
    fn resilient_suite_quarantines_an_always_faulting_cell() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let workloads = vec![
            select(&["lbm_519"]).remove(0),
            Workload::custom("boom", "boom", always_faulting),
        ];
        for jobs in [1, 4] {
            let cfg = SuiteConfig::with_jobs(jobs).with_retries(1);
            let (rows, summary) =
                run_suite_resilient(&runner, &workloads, &ProgramCache::new(), &cfg);
            assert_eq!(rows.len(), 2, "suite completes despite the faulting cell");
            assert!(rows[0].reports.iter().all(Option::is_some));
            assert!(rows[1].reports.iter().all(Option::is_none));
            assert_eq!(summary.cells, 6);
            assert_eq!(summary.completed, 3);
            assert_eq!(
                summary.quarantined.len(),
                3,
                "all three boom ABIs quarantined"
            );
            for (q, abi) in summary.quarantined.iter().zip(Abi::ALL) {
                assert_eq!(q.key, "boom");
                assert_eq!(q.abi, abi);
                assert_eq!(q.attempts, 2, "one retry before quarantine");
                assert!(q.error.contains("call depth"), "got: {}", q.error);
            }
            assert!(!summary.is_clean());
        }
    }

    #[test]
    fn fuel_watchdog_retry_doubling_rescues_a_slow_cell() {
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let workloads = vec![Workload::custom("spin", "spin", needs_fuel)];
        // 4096 instructions is far below the spin's need; doubling per
        // retry reaches ~67M by attempt 15, plenty.
        let cfg = SuiteConfig::with_jobs(1)
            .with_watchdog(4096)
            .with_retries(14);
        let (rows, summary) = run_suite_resilient(&runner, &workloads, &ProgramCache::new(), &cfg);
        assert!(summary.quarantined.is_empty(), "{:?}", summary.quarantined);
        assert_eq!(summary.completed, 3);
        assert!(summary.retries > 0, "the watchdog must have tripped");
        assert!(rows[0].reports.iter().all(Option::is_some));
        // And without retries the same watchdog quarantines the cell as
        // a fuel exhaustion.
        let cfg = SuiteConfig::with_jobs(1).with_watchdog(4096);
        let (_, summary) = run_suite_resilient(&runner, &workloads, &ProgramCache::new(), &cfg);
        assert_eq!(summary.quarantined.len(), 3);
        assert!(summary.quarantined[0].error.contains("budget exhausted"));
    }

    #[test]
    fn canonically_first_error_wins_regardless_of_jobs() {
        // quickjs under the benchmark ABI is NA; forcing the cell in
        // directly through run() is the error path, but through the
        // suite NA cells are skipped — so build an error another way:
        // a workload list where a later workload panics must still
        // report the earlier workload's error first. Here every cell
        // succeeds, so just lock the jobs-independence of the rows.
        let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
        let workloads = select(&["xz_557", "sqlite"]);
        let reference = run_suite_with(
            &runner,
            &workloads,
            &ProgramCache::new(),
            &SuiteConfig::with_jobs(1),
        )
        .unwrap();
        for jobs in [2, 4] {
            let rows = run_suite_with(
                &runner,
                &workloads,
                &ProgramCache::new(),
                &SuiteConfig::with_jobs(jobs),
            )
            .unwrap();
            let a = serde_json::to_string(&reference).unwrap();
            let b = serde_json::to_string(&rows).unwrap();
            assert_eq!(a, b, "jobs={jobs} must match the sequential reference");
        }
    }
}
