//! A bounded work-stealing pool for independent experiment cells.
//!
//! The suite's workload × ABI matrix is embarrassingly parallel: every
//! cell is a pure simulation. The engine deals the cells round-robin
//! over `jobs` worker queues; a worker drains its own queue from the
//! front and, when empty, steals from the back of its neighbours', so
//! long-running cells (one slow workload) do not leave the other
//! workers idle. Results land in per-cell slots, which makes the
//! reduction deterministic: callers always read outcomes in cell-index
//! order, regardless of which worker finished which cell when.
//!
//! A panicking cell is isolated: it poisons neither the pool nor its
//! siblings, and surfaces as [`CellOutcome::Panicked`] with the payload
//! message so the caller can turn it into a typed error
//! ([`RunError::WorkerPanicked`](crate::RunError::WorkerPanicked)).
//! Lock poisoning is likewise recovered rather than propagated: a cell
//! that panics between a sibling's lock and unlock must never cascade
//! into a pool-wide panic, so every acquisition strips the poison and
//! proceeds with the (still consistent — all critical sections are
//! single assignments or pops) protected data.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What became of one scheduled cell.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell ran to completion (which may still be a domain error).
    Done(T),
    /// The cell's closure panicked; the payload message is attached.
    Panicked(String),
}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Locks a pool mutex, recovering from poison: the pool's critical
/// sections never leave the data mid-mutation, so the inner value is
/// valid even when a panicking thread left the lock poisoned.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `run(cell)` for every cell index in `0..n_cells` on a pool of at
/// most `jobs` std threads and returns the outcomes **in cell order**.
///
/// `jobs` is clamped to `[1, n_cells]`; `jobs == 1` degenerates to a
/// single worker draining the cells in order (the sequential reference
/// the determinism tests compare against).
pub fn run_cells<T, F>(n_cells: usize, jobs: usize, run: F) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n_cells.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((0..n_cells).filter(|c| c % jobs == w).collect()))
        .collect();
    let slots: Vec<Mutex<Option<CellOutcome<T>>>> =
        (0..n_cells).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for me in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let run = &run;
            scope.spawn(move || {
                while let Some(cell) = next_cell(queues, me) {
                    let outcome = match catch_unwind(AssertUnwindSafe(|| run(cell))) {
                        Ok(v) => CellOutcome::Done(v),
                        Err(payload) => CellOutcome::Panicked(panic_message(payload)),
                    };
                    *lock_unpoisoned(&slots[cell]) = Some(outcome);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every scheduled cell ran")
        })
        .collect()
}

/// Pops the next cell for worker `me`: own queue front first, then steal
/// from the back of the other workers' queues. Cells never enqueue new
/// cells, so one full scan finding nothing means the matrix is drained.
fn next_cell(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(c) = lock_unpoisoned(&queues[me]).pop_front() {
        return Some(c);
    }
    let n = queues.len();
    for d in 1..n {
        if let Some(c) = lock_unpoisoned(&queues[(me + d) % n]).pop_back() {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outcomes_come_back_in_cell_order() {
        for jobs in [1, 2, 4, 7] {
            let out = run_cells(13, jobs, |i| i * i);
            let values: Vec<usize> = out
                .into_iter()
                .map(|o| match o {
                    CellOutcome::Done(v) => v,
                    CellOutcome::Panicked(m) => panic!("unexpected panic: {m}"),
                })
                .collect();
            assert_eq!(values, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_cells(100, 4, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 100);
        assert_eq!(ran.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn a_panicking_cell_is_isolated() {
        let out = run_cells(5, 2, |i| {
            assert!(i != 3, "cell 3 exploded");
            i
        });
        for (i, o) in out.iter().enumerate() {
            match o {
                CellOutcome::Done(v) => {
                    assert_eq!(*v, i);
                    assert!(i != 3);
                }
                CellOutcome::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("cell 3 exploded"), "got: {msg}");
                }
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let out = run_cells(0, 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn poisoned_locks_are_recovered() {
        // A mutex poisoned by a panicking holder still yields its data.
        let m = Mutex::new(7_u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        // And the pool keeps delivering every outcome even when many
        // cells panic concurrently (each panic can poison slot locks).
        let out = run_cells(64, 8, |i| {
            assert!(i % 3 != 0, "cell {i} exploded");
            i
        });
        assert_eq!(out.len(), 64);
        for (i, o) in out.iter().enumerate() {
            match o {
                CellOutcome::Done(v) => assert_eq!(*v, i),
                CellOutcome::Panicked(_) => assert_eq!(i % 3, 0),
            }
        }
    }
}
