//! The per-run report.

use cheri_isa::{Abi, SectionSizes};
use morello_pmu::{DerivedMetrics, EventCounts};
use morello_uarch::UarchStats;
use serde::{Deserialize, Serialize};

/// Top-down pipeline-slot shares (the paper's Figure 3 / Table 4 rows).
///
/// `retiring`, `bad_speculation`, `frontend_bound` and `backend_bound`
/// follow the paper's Table 1 formulas; the backend is further split into
/// the memory levels and core-bound shares of total cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TopDown {
    /// `INST_SPEC / SUM(*_SPEC)`.
    pub retiring: f64,
    /// `1 - retiring - frontend - backend` (clamped at zero).
    pub bad_speculation: f64,
    /// `STALL_FRONTEND / CPU_CYCLES`.
    pub frontend_bound: f64,
    /// `STALL_BACKEND / CPU_CYCLES`.
    pub backend_bound: f64,
    /// Memory-bound share of cycles.
    pub memory_bound: f64,
    /// ... of which L1.
    pub l1_bound: f64,
    /// ... of which L2.
    pub l2_bound: f64,
    /// ... of which external memory (LLC + DRAM + TLB walks).
    pub ext_mem_bound: f64,
    /// Core-bound share of cycles (execution resources, store buffer).
    pub core_bound: f64,
    /// Share of cycles lost to PCC-bounds resteers (subset of frontend).
    pub pcc_stall: f64,
}

impl TopDown {
    /// Derives the breakdown from raw statistics.
    pub fn from_stats(s: &UarchStats, derived: &DerivedMetrics) -> TopDown {
        let cyc = s.cpu_cycles.max(1) as f64;
        TopDown {
            retiring: derived.retiring,
            bad_speculation: derived.bad_speculation,
            frontend_bound: derived.frontend_bound,
            backend_bound: derived.backend_bound,
            memory_bound: (s.bound_mem_l1 + s.bound_mem_l2 + s.bound_mem_ext) as f64 / cyc,
            l1_bound: s.bound_mem_l1 as f64 / cyc,
            l2_bound: s.bound_mem_l2 as f64 / cyc,
            ext_mem_bound: s.bound_mem_ext as f64 / cyc,
            core_bound: s.bound_core as f64 / cyc,
            pcc_stall: s.pcc_stall_cycles as f64 / cyc,
        }
    }
}

/// Heap and footprint accounting for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapSummary {
    /// `malloc` calls.
    pub allocs: u64,
    /// `free` calls.
    pub frees: u64,
    /// Peak live heap bytes ("utilized memory").
    pub peak_live_bytes: u64,
    /// Bytes reserved purely for capability representability.
    pub padding_bytes: u64,
    /// Distinct 4 KiB pages touched ("memory footprint").
    pub pages_touched: u64,
    /// High-water mark of bytes held in the revocation quarantine
    /// (`default` keeps journals from before the revocation subsystem
    /// loadable).
    #[serde(default)]
    pub quarantine_bytes_hwm: u64,
    /// High-water mark of blocks held in the revocation quarantine.
    #[serde(default)]
    pub quarantine_blocks_hwm: u64,
    /// Revocation epochs (quarantine drains / tag sweeps) triggered.
    #[serde(default)]
    pub revocation_epochs: u64,
}

/// Everything measured about one (workload, ABI) execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// The paper's workload name (e.g. `520.omnetpp_r`).
    pub workload: String,
    /// Stable workload key (e.g. `omnetpp_520`).
    pub key: String,
    /// The ABI the binary was lowered for.
    pub abi: Abi,
    /// Raw simulator statistics (superset of the PMU events).
    pub stats: UarchStats,
    /// The PMU event counts (full Table 1 set).
    pub counts: EventCounts,
    /// Derived metrics (Table 1 formulas).
    pub derived: DerivedMetrics,
    /// Top-down breakdown (Figure 3 / Table 4).
    pub topdown: TopDown,
    /// Simulated execution time in seconds at the platform clock.
    pub seconds: f64,
    /// Retired instruction count.
    pub retired: u64,
    /// The program's exit code (architectural checksum).
    pub exit_code: u64,
    /// Heap and footprint summary.
    pub heap: HeapSummary,
    /// Modelled on-disk binary sections (Figure 2).
    pub binary: SectionSizes,
}

impl RunReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.derived.ipc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topdown_from_stats_shares() {
        let s = UarchStats {
            cpu_cycles: 1000,
            bound_mem_l1: 10,
            bound_mem_l2: 40,
            bound_mem_ext: 250,
            bound_core: 100,
            pcc_stall_cycles: 30,
            ..UarchStats::default()
        };
        let d = DerivedMetrics {
            retiring: 0.5,
            frontend_bound: 0.1,
            backend_bound: 0.4,
            bad_speculation: 0.0,
            ..DerivedMetrics::default()
        };
        let t = TopDown::from_stats(&s, &d);
        assert!((t.memory_bound - 0.3).abs() < 1e-12);
        assert!((t.ext_mem_bound - 0.25).abs() < 1e-12);
        assert!((t.core_bound - 0.1).abs() < 1e-12);
        assert!((t.pcc_stall - 0.03).abs() < 1e-12);
    }
}
