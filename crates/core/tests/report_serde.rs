//! Reports are the harness's machine-readable artefacts: they must
//! serialise to JSON and survive a round-trip, and the platform
//! configuration must be storable alongside (the paper publishes its data
//! as an artefact; so do we).

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_sim::{Platform, RunReport, Runner};

fn sample_report() -> RunReport {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    runner
        .run(&by_key("xz_557").unwrap(), Abi::Purecap)
        .expect("runs")
}

#[test]
fn run_report_json_roundtrip() {
    let rep = sample_report();
    let json = serde_json::to_string_pretty(&rep).expect("serialises");
    assert!(json.contains("\"abi\""));
    assert!(json.contains("cap_mem_access_rd"));
    let back: RunReport = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.workload, rep.workload);
    assert_eq!(back.abi, rep.abi);
    assert_eq!(back.stats, rep.stats);
    assert_eq!(back.counts, rep.counts);
    assert_eq!(back.binary, rep.binary);
    assert!((back.seconds - rep.seconds).abs() < 1e-15);
}

#[test]
fn platform_json_roundtrip() {
    let p = Platform::projected().with_scale(Scale::Small);
    let json = serde_json::to_string(&p).expect("serialises");
    let back: Platform = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.uarch, p.uarch);
    assert_eq!(back.scale, p.scale);
    assert_eq!(back.interp, p.interp);
}

#[test]
fn platform_interp_limits_serialise_faithfully() {
    let mut p = Platform::morello();
    p.interp.max_insts = 123_456_789;
    p.interp.dep_window = 7;
    p.interp.max_call_depth = 42;
    let json = serde_json::to_string(&p).expect("serialises");
    // Journals must record the interpreter budget a run was taken
    // under, not silently drop it.
    assert!(json.contains("\"max_insts\":123456789"), "json: {json}");
    assert!(json.contains("\"dep_window\":7"));
    assert!(json.contains("\"max_call_depth\":42"));
    let back: Platform = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.interp, p.interp);
}

#[test]
fn platform_json_without_interp_field_still_loads() {
    // Journals written while `interp` was `#[serde(skip)]` have no such
    // field; they must keep deserialising, falling back to the default
    // interpreter configuration.
    let p = Platform::morello().with_scale(Scale::Test);
    let json = serde_json::to_string(&p).expect("serialises");
    let mut v: serde::Value = serde_json::from_str(&json).expect("parses");
    match &mut v {
        serde::Value::Map(fields) => {
            let before = fields.len();
            fields.retain(|(name, _)| name != "interp");
            assert_eq!(fields.len(), before - 1, "interp field was present");
        }
        _ => panic!("platform serialises as an object"),
    }
    let legacy = serde_json::to_string(&v).expect("re-serialises");
    let back: Platform = serde_json::from_str(&legacy).expect("legacy json loads");
    assert_eq!(back.uarch, p.uarch);
    assert_eq!(back.scale, p.scale);
    assert_eq!(back.interp, cheri_isa::InterpConfig::default());
}

#[test]
fn event_counts_survive_json() {
    let rep = sample_report();
    let json = serde_json::to_string(&rep.counts).expect("serialises");
    let back: morello_pmu::EventCounts = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back, rep.counts);
    assert_eq!(back.len(), morello_pmu::PmuEvent::ALL.len());
}
