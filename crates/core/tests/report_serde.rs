//! Reports are the harness's machine-readable artefacts: they must
//! serialise to JSON and survive a round-trip, and the platform
//! configuration must be storable alongside (the paper publishes its data
//! as an artefact; so do we).

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_sim::{Platform, RunReport, Runner};

fn sample_report() -> RunReport {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    runner
        .run(&by_key("xz_557").unwrap(), Abi::Purecap)
        .expect("runs")
}

#[test]
fn run_report_json_roundtrip() {
    let rep = sample_report();
    let json = serde_json::to_string_pretty(&rep).expect("serialises");
    assert!(json.contains("\"abi\""));
    assert!(json.contains("cap_mem_access_rd"));
    let back: RunReport = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.workload, rep.workload);
    assert_eq!(back.abi, rep.abi);
    assert_eq!(back.stats, rep.stats);
    assert_eq!(back.counts, rep.counts);
    assert_eq!(back.binary, rep.binary);
    assert!((back.seconds - rep.seconds).abs() < 1e-15);
}

#[test]
fn platform_json_roundtrip() {
    let p = Platform::projected().with_scale(Scale::Small);
    let json = serde_json::to_string(&p).expect("serialises");
    let back: Platform = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back.uarch, p.uarch);
    assert_eq!(back.scale, p.scale);
}

#[test]
fn event_counts_survive_json() {
    let rep = sample_report();
    let json = serde_json::to_string(&rep.counts).expect("serialises");
    let back: morello_pmu::EventCounts = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(back, rep.counts);
    assert_eq!(back.len(), morello_pmu::PmuEvent::ALL.len());
}
