//! Golden-report snapshot test: the canonical JSON for a 5-workload ×
//! 3-ABI mini-suite is committed under `tests/golden/` and the suite
//! engine must reproduce it **byte for byte**. This is the conformance
//! lock for the whole measurement pipeline — workload builders, ABI
//! lowering, the interpreter, the timing model, derived metrics, and
//! report serialisation. Any intentional model change must regenerate
//! the snapshot:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p morello-sim --test golden_report
//! ```
//!
//! and the diff of `tests/golden/mini_suite.json` becomes part of the
//! review.

use cheri_workloads::Scale;
use morello_sim::suite::{run_suite_with, select, SuiteConfig, SuiteRow};
use morello_sim::{Platform, ProgramCache, Runner};

/// Streaming FP, pointer-chasing C++, integer/dictionary compression,
/// the NA-bearing interpreter, and the allocation-churn stressor: a
/// small slice that still exercises every report shape (including an
/// absent benchmark-ABI cell and the revocation quarantine counters).
const GOLDEN_KEYS: [&str; 5] = [
    "lbm_519",
    "omnetpp_520",
    "xz_557",
    "quickjs",
    "alloc_stress",
];

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mini_suite.json");

fn mini_suite() -> Vec<SuiteRow> {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    run_suite_with(
        &runner,
        &select(&GOLDEN_KEYS),
        &ProgramCache::new(),
        &SuiteConfig::default(),
    )
    .expect("mini suite runs")
}

fn canonical_json(rows: &[SuiteRow]) -> String {
    let mut json = serde_json::to_string_pretty(rows).expect("suite rows serialise");
    json.push('\n');
    json
}

#[test]
fn mini_suite_matches_golden_byte_for_byte() {
    let json = canonical_json(&mini_suite());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("golden snapshot written");
        eprintln!("golden snapshot updated: {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "could not read golden snapshot {GOLDEN_PATH}: {e}\n\
             (generate it with `UPDATE_GOLDEN=1 cargo test -p morello-sim \
             --test golden_report`)"
        )
    });
    if json != golden {
        let mismatch = json
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (got, want))) => panic!(
                "suite report drifted from the golden snapshot at line {}:\n  \
                 got:  {got}\n  want: {want}\n\
                 (intentional model changes: re-run with UPDATE_GOLDEN=1 and \
                 commit the diff)",
                i + 1
            ),
            None => panic!(
                "suite report drifted from the golden snapshot: lengths differ \
                 ({} vs {} bytes) with a common prefix\n\
                 (intentional model changes: re-run with UPDATE_GOLDEN=1 and \
                 commit the diff)",
                json.len(),
                golden.len()
            ),
        }
    }
}

#[test]
fn golden_snapshot_deserialises_back_to_the_same_rows() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden snapshot present");
    let rows: Vec<SuiteRow> = serde_json::from_str(&golden).expect("golden parses");
    assert_eq!(rows.len(), GOLDEN_KEYS.len());
    // The NA cell survives the round trip as a genuine absence.
    let quickjs = rows
        .iter()
        .find(|r| r.key == "quickjs")
        .expect("quickjs row");
    assert!(quickjs.reports[1].is_none(), "benchmark ABI is NA");
    // Re-serialising the parsed rows reproduces the snapshot exactly:
    // the serialisation itself is canonical, not just this process run.
    assert_eq!(canonical_json(&rows), golden);
}
