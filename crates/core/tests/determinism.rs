//! Determinism tests: the parallel suite engine's deterministic-
//! reduction contract. A sweep's results — the `Vec<SuiteRow>` and its
//! JSON serialisation — must be identical whatever the worker count and
//! across repeated runs, or no two measurement campaigns are
//! comparable (the bit-identical-re-runs bar the MTE / CHERI-allocator
//! measurement studies set).

use cheri_workloads::Scale;
use morello_sim::suite::{run_suite_observed, run_suite_with, select, SuiteConfig, SuiteRow};
use morello_sim::{Platform, ProgramCache, Runner, VecObserver};

const KEYS: [&str; 5] = ["lbm_519", "omnetpp_520", "xz_557", "sqlite", "quickjs"];

fn sweep(jobs: usize) -> Vec<SuiteRow> {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    run_suite_with(
        &runner,
        &select(&KEYS),
        &ProgramCache::new(),
        &SuiteConfig::with_jobs(jobs),
    )
    .expect("suite runs")
}

fn as_json(rows: &[SuiteRow]) -> String {
    serde_json::to_string(rows).expect("rows serialise")
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_rows_and_json() {
    let sequential = sweep(1);
    let parallel = sweep(4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.key, p.key, "row order must be canonical");
        for (a, b) in s.reports.iter().zip(&p.reports) {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.counts, b.counts, "{}: event counts differ", s.key);
                    assert_eq!(a.stats, b.stats, "{}: uarch stats differ", s.key);
                    assert_eq!(a.exit_code, b.exit_code);
                    assert_eq!(
                        a.seconds.to_bits(),
                        b.seconds.to_bits(),
                        "{}: simulated seconds must be bit-identical",
                        s.key
                    );
                }
                _ => panic!("{}: NA cells differ between schedules", s.key),
            }
        }
    }
    assert_eq!(
        as_json(&sequential),
        as_json(&parallel),
        "serialised sweeps must be byte-identical across worker counts"
    );
}

#[test]
fn repeated_sweeps_are_byte_identical() {
    assert_eq!(as_json(&sweep(4)), as_json(&sweep(4)));
}

#[test]
fn shared_cache_does_not_change_results() {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let cache = ProgramCache::new();
    let cfg = SuiteConfig::with_jobs(4);
    let cold = run_suite_with(&runner, &select(&KEYS), &cache, &cfg).expect("suite runs");
    assert_eq!(cache.hits(), 0);
    let warm = run_suite_with(&runner, &select(&KEYS), &cache, &cfg).expect("suite runs");
    assert!(cache.hits() > 0, "second sweep must hit the cache");
    assert_eq!(as_json(&cold), as_json(&warm));
}

#[test]
fn journals_are_canonically_ordered_for_any_worker_count() {
    let runner = Runner::new(Platform::morello().with_scale(Scale::Test));
    let order = |jobs: usize| {
        let mut obs = VecObserver::default();
        run_suite_observed(
            &runner,
            &select(&KEYS),
            &ProgramCache::new(),
            &SuiteConfig::with_jobs(jobs),
            &mut obs,
        )
        .expect("suite runs");
        obs.records
            .iter()
            .map(|r| format!("{}/{}", r.key, r.abi))
            .collect::<Vec<_>>()
    };
    let reference = order(1);
    assert_eq!(reference.len(), 14, "5 workloads, one NA cell");
    assert_eq!(order(4), reference);
}
