//! Property tests for the lowered-program cache: for an arbitrary
//! (workload, ABI, scale) cell, running through the cache — cold or
//! warm — must be observationally identical to lowering fresh. The
//! cache is a pure memoisation of `lower`, so event counts, modelled
//! cycles, simulated seconds, and exit codes may not move by a single
//! bit.

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_sim::{Platform, ProgramCache, Runner};
use proptest::prelude::*;

const KEYS: [&str; 8] = [
    "lbm_519",
    "omnetpp_520",
    "xalancbmk_523",
    "xz_557",
    "deepsjeng_531",
    "leela_541",
    "sqlite",
    "quickjs",
];

fn cell_strategy() -> impl Strategy<Value = (usize, usize, Scale)> {
    // Scale::Small cells cost seconds each; keep most cases at
    // Scale::Test so the property still crosses scales without
    // dominating the test wall-time.
    (
        0usize..KEYS.len(),
        0usize..Abi::ALL.len(),
        (0usize..4).prop_map(|i| if i == 0 { Scale::Small } else { Scale::Test }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached and freshly-lowered programs are indistinguishable to the
    /// whole modelling pipeline, and a warm hit is as good as a miss.
    #[test]
    fn cached_cell_matches_fresh_cell(cell in cell_strategy()) {
        let (wi, ai, scale) = cell;
        let w = by_key(KEYS[wi]).expect("known workload");
        let abi = Abi::ALL[ai];
        prop_assume!(w.supports(abi));

        let runner = Runner::new(Platform::morello().with_scale(scale));
        let fresh = runner.run(&w, abi).expect("fresh run succeeds");

        let cache = ProgramCache::new();
        let cold = runner.run_with_cache(&w, abi, &cache).expect("cold cached run");
        let warm = runner.run_with_cache(&w, abi, &cache).expect("warm cached run");
        prop_assert_eq!(cache.misses(), 1, "one cell shape lowers once");
        prop_assert_eq!(cache.hits(), 1, "second run must reuse the program");

        for cached in [&cold, &warm] {
            prop_assert_eq!(&fresh.counts, &cached.counts, "event counts drifted");
            prop_assert_eq!(&fresh.stats, &cached.stats, "uarch stats drifted");
            prop_assert_eq!(fresh.exit_code, cached.exit_code);
            prop_assert_eq!(
                fresh.seconds.to_bits(),
                cached.seconds.to_bits(),
                "simulated time must be bit-identical"
            );
        }
    }
}
