//! The workload registry: every workload of the paper's evaluation.

use crate::kernels;
use cheri_isa::{Abi, GenericProgram};
use serde::{Deserialize, Serialize};

/// Workload category, following the paper's §3.3 grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// SPEC CPU2017 rate benchmark proxy (`5xx.*_r`).
    SpecRate,
    /// SPEC CPU2017 speed benchmark proxy (`6xx.*_s`).
    SpecSpeed,
    /// Real-world application proxy (QuickJS, SQLite, LLaMA.cpp).
    Application,
    /// Synthetic microbenchmark targeting one subsystem (not a paper
    /// workload; e.g. `alloc_stress` for the revocation allocator lab).
    Microbench,
}

/// Problem scale. `Test` keeps unit tests fast; `Small` suits interactive
/// experimentation; `Default` is the size the experiment harness uses for
/// the paper's tables (the paper itself used SPEC *train* inputs for the
/// same reason).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny: sub-second under the debug-build interpreter.
    Test,
    /// Reduced: around a million retired instructions.
    Small,
    /// Full harness size.
    Default,
}

impl Scale {
    /// A coarse multiplier kernels can use for iteration counts.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
            Scale::Default => 32,
        }
    }
}

/// A registered workload.
#[derive(Clone)]
pub struct Workload {
    /// The paper's name for the workload (e.g. `520.omnetpp_r`).
    pub name: &'static str,
    /// Stable identifier (e.g. `omnetpp_520`).
    pub key: &'static str,
    /// Category.
    pub category: Category,
    /// The paper's Table 2 memory-intensity value, where reported.
    pub table2_mi: Option<f64>,
    /// Whether the benchmark ABI binary runs (QuickJS's crashed with an
    /// in-address-space security fault; the paper reports NA).
    pub supports_benchmark_abi: bool,
    /// The paper's measured purecap slowdown factor (execution time
    /// purecap / hybrid from Table 3/4), where reported — used by
    /// EXPERIMENTS.md comparisons, never by the model itself.
    pub paper_purecap_slowdown: Option<f64>,
    builder: fn(Abi, Scale) -> GenericProgram,
}

impl core::fmt::Debug for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Builds the portable program for `abi` at `scale`.
    ///
    /// # Panics
    ///
    /// Panics when the ABI is unsupported (check
    /// [`supports`](Workload::supports) first); mirrors the paper's NA
    /// cells.
    pub fn build(&self, abi: Abi, scale: Scale) -> GenericProgram {
        assert!(
            self.supports(abi),
            "{} does not run under the {abi} ABI (reported NA in the paper)",
            self.name
        );
        (self.builder)(abi, scale)
    }

    /// Whether this workload runs under `abi`.
    pub fn supports(&self, abi: Abi) -> bool {
        self.supports_benchmark_abi || abi != Abi::Benchmark
    }

    /// Registers an out-of-registry workload around a builder function —
    /// the hook for harness-local programs (fault-injection targets,
    /// engine stress cells) that should flow through the suite and
    /// campaign machinery like any Table 2 workload. Supports every ABI
    /// and carries no paper-reported figures.
    pub fn custom(
        name: &'static str,
        key: &'static str,
        builder: fn(Abi, Scale) -> GenericProgram,
    ) -> Workload {
        Workload {
            name,
            key,
            category: Category::Microbench,
            table2_mi: None,
            supports_benchmark_abi: true,
            paper_purecap_slowdown: None,
            builder,
        }
    }
}

macro_rules! workload {
    ($name:literal, $key:literal, $cat:ident, $mi:expr, $bm:expr, $slow:expr, $builder:path) => {
        Workload {
            name: $name,
            key: $key,
            category: Category::$cat,
            table2_mi: $mi,
            supports_benchmark_abi: $bm,
            paper_purecap_slowdown: $slow,
            builder: $builder,
        }
    };
}

/// Every workload of the paper's evaluation, in Table 2 order.
pub fn registry() -> Vec<Workload> {
    vec![
        workload!(
            "510.parest_r",
            "parest_510",
            SpecRate,
            Some(0.922),
            true,
            Some(1.138),
            kernels::parest::build_rate
        ),
        workload!(
            "519.lbm_r",
            "lbm_519",
            SpecRate,
            Some(0.438),
            true,
            Some(0.921),
            kernels::lbm::build_rate
        ),
        workload!(
            "520.omnetpp_r",
            "omnetpp_520",
            SpecRate,
            Some(1.164),
            true,
            Some(1.875),
            kernels::omnetpp::build_rate
        ),
        workload!(
            "523.xalancbmk_r",
            "xalancbmk_523",
            SpecRate,
            Some(0.860),
            true,
            Some(2.035),
            kernels::xalancbmk::build_rate
        ),
        workload!(
            "525.x264_r",
            "x264_525",
            SpecRate,
            None,
            true,
            None,
            kernels::x264::build_rate
        ),
        workload!(
            "531.deepsjeng_r",
            "deepsjeng_531",
            SpecRate,
            Some(0.489),
            true,
            Some(1.170),
            kernels::deepsjeng::build_rate
        ),
        workload!(
            "541.leela_r",
            "leela_541",
            SpecRate,
            Some(0.565),
            true,
            Some(1.231),
            kernels::leela::build_rate
        ),
        workload!(
            "544.nab_r",
            "nab_544",
            SpecRate,
            Some(0.420),
            true,
            Some(1.049),
            kernels::nab::build_rate
        ),
        workload!(
            "557.xz_r",
            "xz_557",
            SpecRate,
            Some(0.514),
            true,
            Some(1.065),
            kernels::xz::build_rate
        ),
        workload!(
            "619.lbm_s",
            "lbm_619",
            SpecSpeed,
            None,
            true,
            None,
            kernels::lbm::build_speed
        ),
        workload!(
            "620.omnetpp_s",
            "omnetpp_620",
            SpecSpeed,
            Some(1.165),
            true,
            None,
            kernels::omnetpp::build_speed
        ),
        workload!(
            "623.xalancbmk_s",
            "xalancbmk_623",
            SpecSpeed,
            Some(0.860),
            true,
            None,
            kernels::xalancbmk::build_speed
        ),
        workload!(
            "625.x264_s",
            "x264_625",
            SpecSpeed,
            None,
            true,
            None,
            kernels::x264::build_speed
        ),
        workload!(
            "631.deepsjeng_s",
            "deepsjeng_631",
            SpecSpeed,
            Some(0.496),
            true,
            None,
            kernels::deepsjeng::build_speed
        ),
        workload!(
            "641.leela_s",
            "leela_641",
            SpecSpeed,
            Some(0.565),
            true,
            None,
            kernels::leela::build_speed
        ),
        workload!(
            "644.nab_s",
            "nab_644",
            SpecSpeed,
            Some(0.424),
            true,
            None,
            kernels::nab::build_speed
        ),
        workload!(
            "657.xz_s",
            "xz_657",
            SpecSpeed,
            Some(0.504),
            true,
            None,
            kernels::xz::build_speed
        ),
        workload!(
            "QuickJS",
            "quickjs",
            Application,
            Some(0.680),
            false,
            Some(2.660),
            kernels::quickjs::build
        ),
        workload!(
            "SQLite",
            "sqlite",
            Application,
            Some(0.816),
            true,
            Some(1.612),
            kernels::sqlite::build
        ),
        workload!(
            "LLaMA.cpp (inference)",
            "llama_inference",
            Application,
            Some(0.309),
            true,
            Some(1.013),
            kernels::llama::build_inference
        ),
        workload!(
            "LLaMA.cpp (matmult)",
            "llama_matmul",
            Application,
            Some(0.432),
            true,
            Some(0.987),
            kernels::llama::build_matmul
        ),
        workload!(
            "alloc_stress",
            "alloc_stress",
            Microbench,
            None,
            true,
            None,
            kernels::alloc_stress::build
        ),
    ]
}

/// Looks a workload up by its stable key (e.g. `"omnetpp_520"`).
pub fn by_key(key: &str) -> Option<Workload> {
    registry().into_iter().find(|w| w.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_22_unique_workloads() {
        let r = registry();
        assert_eq!(r.len(), 22);
        let keys: std::collections::BTreeSet<_> = r.iter().map(|w| w.key).collect();
        assert_eq!(keys.len(), 22);
    }

    #[test]
    fn category_counts_match_paper() {
        let r = registry();
        let rate = r
            .iter()
            .filter(|w| w.category == Category::SpecRate)
            .count();
        let speed = r
            .iter()
            .filter(|w| w.category == Category::SpecSpeed)
            .count();
        let apps = r
            .iter()
            .filter(|w| w.category == Category::Application)
            .count();
        let micro = r
            .iter()
            .filter(|w| w.category == Category::Microbench)
            .count();
        assert_eq!(rate, 9);
        assert_eq!(speed, 8);
        assert_eq!(rate + speed, 17, "17 SPEC workloads as in the paper");
        assert_eq!(apps, 4, "QuickJS, SQLite, LLaMA inference + matmul");
        assert_eq!(micro, 1, "alloc_stress");
    }

    #[test]
    fn quickjs_benchmark_abi_is_na() {
        let q = by_key("quickjs").unwrap();
        assert!(!q.supports(Abi::Benchmark));
        assert!(q.supports(Abi::Purecap));
        assert!(q.supports(Abi::Hybrid));
    }

    #[test]
    #[should_panic(expected = "NA in the paper")]
    fn building_quickjs_benchmark_panics() {
        by_key("quickjs")
            .unwrap()
            .build(Abi::Benchmark, Scale::Test);
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(by_key("no_such_bench").is_none());
    }

    #[test]
    fn table2_values_recorded() {
        let o = by_key("omnetpp_520").unwrap();
        assert!((o.table2_mi.unwrap() - 1.164).abs() < 1e-9);
        assert!(by_key("x264_525").unwrap().table2_mi.is_none());
    }
}
