//! Shared building blocks for workload kernels.

use cheri_isa::{Abi, FunctionBuilder, MemSize, VReg};

/// A field of a C-like struct whose layout depends on the ABI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Field {
    /// A one-byte integer.
    I8,
    /// A two-byte integer.
    I16,
    /// A four-byte integer.
    I32,
    /// An eight-byte integer.
    I64,
    /// A double.
    F64,
    /// A pointer (8 bytes hybrid, 16 bytes + 16-alignment capability).
    Ptr,
    /// An opaque byte blob (8-byte aligned).
    Bytes(u64),
}

impl Field {
    fn size_align(self, abi: Abi) -> (u64, u64) {
        match self {
            Field::I8 => (1, 1),
            Field::I16 => (2, 2),
            Field::I32 => (4, 4),
            Field::I64 | Field::F64 => (8, 8),
            Field::Ptr => (abi.pointer_size(), abi.pointer_align()),
            Field::Bytes(n) => (n, 8),
        }
    }
}

/// An ABI-specific struct layout, computed with C alignment rules —
/// exactly how CHERI C doubles pointer-bearing structures.
///
/// ```
/// use cheri_workloads::common::{Field, Layout};
/// use cheri_isa::Abi;
/// let node = [Field::I64, Field::Ptr, Field::Ptr];
/// assert_eq!(Layout::new(Abi::Hybrid, &node).size(), 24);
/// assert_eq!(Layout::new(Abi::Purecap, &node).size(), 48);
/// ```
#[derive(Clone, Debug)]
pub struct Layout {
    offsets: Vec<i64>,
    size: u64,
    align: u64,
}

impl Layout {
    /// Computes the layout of `fields` under `abi`.
    pub fn new(abi: Abi, fields: &[Field]) -> Layout {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut off = 0u64;
        let mut max_align = 1u64;
        for f in fields {
            let (size, align) = f.size_align(abi);
            off = (off + align - 1) & !(align - 1);
            offsets.push(off as i64);
            off += size;
            max_align = max_align.max(align);
        }
        Layout {
            offsets,
            size: (off + max_align - 1) & !(max_align - 1),
            align: max_align,
        }
    }

    /// Byte offset of field `i`.
    pub fn off(&self, i: usize) -> i64 {
        self.offsets[i]
    }

    /// Total (padded) struct size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Struct alignment.
    pub fn align(&self) -> u64 {
        self.align
    }
}

/// An in-simulation xorshift64 PRNG: deterministic, cheap (5 DP
/// instructions per draw), and unpredictable to the branch predictor —
/// the tool for modelling data-dependent branches (leela's playouts,
/// xz's match probing).
#[derive(Clone, Copy, Debug)]
pub struct SimRng {
    state: VReg,
}

impl SimRng {
    /// Seeds a PRNG into a fresh register.
    pub fn init(f: &mut FunctionBuilder, seed: u64) -> SimRng {
        let state = f.vreg();
        f.mov_imm(state, if seed == 0 { 0x9E3779B97F4A7C15 } else { seed });
        SimRng { state }
    }

    /// Draws the next value into a fresh register (xorshift64).
    pub fn next(&self, f: &mut FunctionBuilder) -> VReg {
        let t = f.vreg();
        f.lsl(t, self.state, 13);
        f.eor(self.state, self.state, t);
        f.lsr(t, self.state, 7);
        f.eor(self.state, self.state, t);
        f.lsl(t, self.state, 17);
        f.eor(self.state, self.state, t);
        let out = f.vreg();
        f.mov(out, self.state);
        out
    }

    /// The register holding the PRNG state (for mixing in extra entropy).
    pub fn state_reg(&self) -> VReg {
        self.state
    }

    /// Draws a value masked to `bits` low bits.
    pub fn next_bits(&self, f: &mut FunctionBuilder, bits: u32) -> VReg {
        let v = self.next(f);
        let m = f.vreg();
        f.mov_imm(m, (1u64 << bits) - 1);
        f.and(v, v, m);
        v
    }
}

/// Emits `count` dependent integer ALU ops on `acc` (compute filler used
/// to tune a kernel's memory intensity without touching its access
/// pattern).
pub fn dp_burst(f: &mut FunctionBuilder, acc: VReg, count: u32) {
    for i in 0..count {
        match i % 3 {
            0 => f.eor(acc, acc, 0x5bd1e995i64),
            1 => f.add(acc, acc, 12345),
            _ => f.lsr(acc, acc, 1),
        }
    }
}

/// Emits `count` dependent FP ops on `facc` (FLOP filler).
pub fn vfp_burst(f: &mut FunctionBuilder, facc: VReg, tmp: VReg, count: u32) {
    for i in 0..count {
        if i % 2 == 0 {
            f.fadd(facc, facc, tmp);
        } else {
            f.fmul(facc, facc, tmp);
        }
    }
}

/// The shift that converts a pointer-array index into a byte offset
/// (3 under hybrid, 4 under the capability ABIs).
pub fn ptr_shift(abi: Abi) -> i64 {
    if abi.is_capability() {
        4
    } else {
        3
    }
}

/// Computes `&base[idx]` for a pointer array into a fresh register
/// (register-offset addressing through an explicit pointer add).
pub fn ptr_elem(f: &mut FunctionBuilder, abi: Abi, base: VReg, idx: VReg) -> VReg {
    let off = f.vreg();
    f.lsl(off, idx, ptr_shift(abi));
    let p = f.vreg();
    f.ptr_add(p, base, off);
    p
}

/// Loads `base[idx]` from a pointer array into a fresh register
/// (single scaled-addressing instruction).
pub fn load_ptr_idx(f: &mut FunctionBuilder, _abi: Abi, base: VReg, idx: VReg) -> VReg {
    let out = f.vreg();
    f.load_ptr_idx(out, base, idx);
    out
}

/// Stores `value` to `base[idx]` of a pointer array.
pub fn store_ptr_idx(f: &mut FunctionBuilder, _abi: Abi, base: VReg, idx: VReg, value: VReg) {
    f.store_ptr_idx(value, base, idx);
}

/// Loads a 64-bit integer from `base + off` and folds it into `acc`
/// (common "touch memory, keep it live" idiom).
pub fn load_fold(f: &mut FunctionBuilder, acc: VReg, base: VReg, off: i64) {
    let v = f.vreg();
    f.load_int(v, base, off, MemSize::S8);
    f.add(acc, acc, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{Abi, Interp, InterpConfig, NullSink, ProgramBuilder};

    #[test]
    fn layout_pointer_doubling() {
        let fields = [Field::I32, Field::Ptr, Field::I64, Field::Ptr];
        let h = Layout::new(Abi::Hybrid, &fields);
        // i32@0, ptr@8, i64@16, ptr@24 -> 32
        assert_eq!(h.off(0), 0);
        assert_eq!(h.off(1), 8);
        assert_eq!(h.off(2), 16);
        assert_eq!(h.off(3), 24);
        assert_eq!(h.size(), 32);
        let p = Layout::new(Abi::Purecap, &fields);
        // i32@0, ptr@16, i64@32, ptr@48 -> 64
        assert_eq!(p.off(1), 16);
        assert_eq!(p.off(2), 32);
        assert_eq!(p.off(3), 48);
        assert_eq!(p.size(), 64);
        assert_eq!(p.align(), 16);
    }

    #[test]
    fn layout_packing_small_fields() {
        let l = Layout::new(Abi::Hybrid, &[Field::I8, Field::I8, Field::I16, Field::I32]);
        assert_eq!(l.off(0), 0);
        assert_eq!(l.off(1), 1);
        assert_eq!(l.off(2), 2);
        assert_eq!(l.off(3), 4);
        assert_eq!(l.size(), 8);
    }

    #[test]
    fn sim_rng_produces_varied_values() {
        // Run the emitted PRNG and check it doesn't cycle trivially.
        let mut b = ProgramBuilder::new("rng", Abi::Hybrid);
        let main = b.function("main", 0, |f| {
            let rng = SimRng::init(f, 42);
            let distinct = f.vreg();
            f.mov_imm(distinct, 0);
            let prev = f.vreg();
            f.mov_imm(prev, 0);
            let n = f.vreg();
            f.mov_imm(n, 64);
            f.for_loop(0, n, 1, |f, _| {
                let v = rng.next_bits(f, 8);
                let same = f.label();
                f.br(cheri_isa::Cond::Eq, v, prev, same);
                f.add(distinct, distinct, 1);
                f.bind(same);
                f.mov(prev, v);
            });
            f.halt_code(distinct);
        });
        b.set_entry(main);
        let res = Interp::new(InterpConfig::default())
            .run(&b.lower(), &mut NullSink)
            .unwrap();
        assert!(res.exit_code > 48, "PRNG too repetitive: {}", res.exit_code);
    }
}
