//! # cheri-workloads
//!
//! Synthetic proxies for the paper's 20 workloads — 17 SPEC CPU2017
//! benchmarks plus QuickJS, SQLite, and LLaMA.cpp (inference and matmul) —
//! written once against `cheri-isa`'s pointer-aware program builder and
//! compiled three ways (hybrid / purecap / benchmark) like the paper's
//! binaries. One extra microbenchmark (`alloc_stress`) stresses the
//! revocation allocator lab beyond what the paper's suite exercises.
//!
//! Each kernel is engineered to match its original along the axes the
//! paper characterises workloads by: **memory intensity** (Table 2),
//! working-set size relative to the 64 KiB L1 / 1 MiB L2 / 1 MiB LLC
//! hierarchy, **pointer density** (what fraction of traffic moves
//! pointers, which purecap doubles and tags), **access pattern**
//! (pointer-chasing vs streaming vs indexed-gather), **call structure**
//! (cross-module and virtual calls, which change PCC bounds under
//! purecap), branch predictability, and allocation churn.
//!
//! ```
//! use cheri_workloads::{registry, Scale};
//! use cheri_isa::Abi;
//!
//! let all = registry();
//! assert_eq!(all.len(), 22);
//! let omnetpp = cheri_workloads::by_key("omnetpp_520").unwrap();
//! let prog = omnetpp.build(Abi::Purecap, Scale::Test);
//! assert_eq!(prog.abi, Abi::Purecap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
mod registry;

pub mod kernels {
    //! One module per workload family.
    pub mod alloc_stress;
    pub mod deepsjeng;
    pub mod lbm;
    pub mod leela;
    pub mod llama;
    pub mod nab;
    pub mod omnetpp;
    pub mod parest;
    pub mod quickjs;
    pub mod sqlite;
    pub mod x264;
    pub mod xalancbmk;
    pub mod xz;
}

pub use registry::{by_key, registry, Category, Scale, Workload};
