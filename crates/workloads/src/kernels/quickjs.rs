//! QuickJS proxy — a boxed-value bytecode interpreter running thousands of
//! small scripts.
//!
//! The paper's QuickJS run executes 18,612 test262 programs sequentially:
//! parse, allocate, execute, tear down — over and over. Its purecap
//! profile is extreme: 166% slowdown, capability *store* density of 91%
//! (JS values are pointer-sized boxes, and the VM moves them constantly),
//! a 36% memory-footprint increase, rising L1I and TLB pressure — and the
//! benchmark-ABI binary doesn't run at all (in-address-space security
//! fault), reported NA.
//!
//! The proxy: a stack VM whose *values are heap-boxed* (every stack slot
//! is a pointer, so push/pop traffic becomes tagged 16-byte capability
//! stores under purecap), opcode handlers dispatched through a function-
//! pointer table, per-script contexts with fresh allocations and full
//! teardown, and many distinct synthetic scripts.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OP_PUSH: u8 = 0;
const OP_ADD: u8 = 1;
const OP_DUP: u8 = 2;
const OP_STORE: u8 = 3;
const OP_LOAD: u8 = 4;
const OP_MUL: u8 = 5;
const OP_SWAPDROP: u8 = 6;
const OP_PROP: u8 = 7;
const N_OPS: u64 = 8;

/// Generates one synthetic script: a short random opcode pattern repeated
/// several times (real test262 programs spend their time in loops, which
/// is what keeps QuickJS's branch misprediction rate low), then drained.
fn gen_script(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let body = gen_ops(rng, len / 8, 0);
    let mut code = Vec::with_capacity(len * 2);
    // Repeat the pattern; its stack effect is net-zero by construction of
    // gen_ops (it drains back to depth 0 internally each round).
    for _ in 0..8 {
        code.extend_from_slice(&body);
    }
    // Leave one value for teardown.
    code.push(OP_PUSH);
    code.push(1);
    code
}

/// Generates `len` stack-valid ops starting and ending at `depth0`.
fn gen_ops(rng: &mut StdRng, len: usize, depth0: usize) -> Vec<u8> {
    let mut code = Vec::with_capacity(len * 2);
    let mut depth = depth0;
    for _ in 0..len {
        let (op, arg) = loop {
            let op = rng.gen_range(0..N_OPS as u8);
            match op {
                OP_PUSH if depth < 14 => break (op, rng.gen::<u8>() & 63),
                OP_LOAD if depth < 14 => break (op, rng.gen_range(0..8u8)),
                OP_STORE if depth >= 1 => break (op, rng.gen_range(0..8u8)),
                OP_DUP if (1..14).contains(&depth) => break (op, 0),
                OP_PROP if depth < 14 => break (op, rng.gen_range(0..4u8)),
                OP_ADD | OP_MUL if depth >= 2 => break (op, 0),
                OP_SWAPDROP if depth >= 2 => break (op, 0),
                _ => continue,
            }
        };
        match op {
            OP_PUSH | OP_DUP | OP_LOAD | OP_PROP => depth += 1,
            OP_ADD | OP_MUL | OP_STORE | OP_SWAPDROP => depth -= 1,
            _ => {}
        }
        // Encode the handler-variant in the high bits of the opcode byte
        // (the engine's different fast paths for the same operation).
        code.push(op.wrapping_add(8 * rng.gen_range(0..32u8)));
        code.push(arg);
    }
    // Drain back to the starting depth so the pattern can repeat
    // (OP_STORE pops exactly one and is valid at any depth >= 1).
    while depth > depth0 {
        code.push(OP_STORE);
        code.push((depth % 8) as u8);
        depth -= 1;
    }
    code
}

/// Builds the QuickJS proxy (no speed variant; QuickJS is an application).
pub fn build(abi: Abi, scale: Scale) -> GenericProgram {
    let f_scale = scale.factor();
    let scripts: u64 = (16 * f_scale).min(512);
    let script_len: usize = 96;
    let mut host_rng = StdRng::seed_from_u64(0x9A5C_41B7);

    let mut b = ProgramBuilder::new("QuickJS", abi);

    // Boxed value: { kind, payload } — pointer-sized slots everywhere.
    let boxv = Layout::new(abi, &[Field::I64, Field::I64]);
    let (bv_kind, bv_val) = (boxv.off(0), boxv.off(1));
    let ps = abi.pointer_size();

    // VM context: { stack*, locals*, obj_cursor*, sp }
    let g_ctx = b.global_zero("vm_ctx", 96);
    let ctx = Layout::new(abi, &[Field::Ptr, Field::Ptr, Field::Ptr, Field::I64]);
    let (cx_stack, cx_locals, cx_objs, cx_sp) = (ctx.off(0), ctx.off(1), ctx.off(2), ctx.off(3));
    assert!(ctx.size() <= 96);

    // JS object: { next*, shape*, val } — two pointers and a payload, the
    // property-map structure whose size doubles under purecap.
    let obj = Layout::new(abi, &[Field::Ptr, Field::Ptr, Field::I64]);
    let (ob_next, ob_shape, ob_val) = (obj.off(0), obj.off(1), obj.off(2));
    const OBJS_PER_SCRIPT: u64 = 48;
    let g_ring = b.global_zero("realm_objects", 16);

    // --- opcode handlers (dispatched indirectly, QuickJS-style) ------------
    // Each handler: fn(arg) -> 0, operating on the global context. The
    // real engine is hundreds of kilobytes of C; different bytecodes walk
    // different parts of it, pressuring the L1I cache (the paper's rising
    // L1I miss rate). We model that code footprint with VARIANTS
    // semantically identical copies of each handler, selected by the high
    // bits of the opcode byte.
    const VARIANTS: usize = 32;
    let mut handler_ids = Vec::new();
    for variant in 0..VARIANTS {
        // Helper fragments are generated per handler to keep them realistic.
        let h_push = b.function(format!("op_push_v{variant}"), 1, |f| {
            let arg = f.arg(0);
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            // Box the value (the allocation churn of JS semantics).
            let bx = f.vreg();
            f.malloc(bx, boxv.size());
            let one = f.vreg();
            f.mov_imm(one, 1);
            f.store_int(one, bx, bv_kind, MemSize::S8);
            f.store_int(arg, bx, bv_val, MemSize::S8);
            store_ptr_idx(f, abi, stack, sp, bx);
            f.add(sp, sp, 1);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_push);

        let box_size = boxv.size();
        let binop = |b: &mut ProgramBuilder, name: &str, is_mul: bool| {
            b.function(name, 1, move |f| {
                let c = f.vreg();
                f.lea_global(c, g_ctx, 0);
                let stack = f.vreg();
                f.load_ptr(stack, c, cx_stack);
                let sp = f.vreg();
                f.load_int(sp, c, cx_sp, MemSize::S8);
                f.sub(sp, sp, 1);
                let top = load_ptr_idx(f, abi, stack, sp);
                let sp2 = f.vreg();
                f.sub(sp2, sp, 1);
                let under = load_ptr_idx(f, abi, stack, sp2);
                let a = f.vreg();
                f.load_int(a, top, bv_val, MemSize::S8);
                let bval = f.vreg();
                f.load_int(bval, under, bv_val, MemSize::S8);
                let r = f.vreg();
                if is_mul {
                    f.mul(r, a, bval);
                    f.and(r, r, 0xFFFF_FFFFi64);
                } else {
                    f.add(r, a, bval);
                }
                // Result goes into a *fresh* box; operand boxes are freed
                // (QuickJS refcount death).
                f.free(top);
                f.free(under);
                let bx = f.vreg();
                f.malloc(bx, box_size);
                let one = f.vreg();
                f.mov_imm(one, 1);
                f.store_int(one, bx, bv_kind, MemSize::S8);
                f.store_int(r, bx, bv_val, MemSize::S8);
                store_ptr_idx(f, abi, stack, sp2, bx);
                f.store_int(sp, c, cx_sp, MemSize::S8);
                f.ret(None);
            })
        };
        let h_add = binop(&mut b, &format!("op_add_v{variant}"), false);
        handler_ids.push(h_add);

        let h_dup = b.function(format!("op_dup_v{variant}"), 1, |f| {
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            let spm = f.vreg();
            f.sub(spm, sp, 1);
            let top = load_ptr_idx(f, abi, stack, spm);
            let v = f.vreg();
            f.load_int(v, top, bv_val, MemSize::S8);
            let bx = f.vreg();
            f.malloc(bx, boxv.size());
            let one = f.vreg();
            f.mov_imm(one, 1);
            f.store_int(one, bx, bv_kind, MemSize::S8);
            f.store_int(v, bx, bv_val, MemSize::S8);
            store_ptr_idx(f, abi, stack, sp, bx);
            f.add(sp, sp, 1);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_dup);

        let h_store = b.function(format!("op_store_v{variant}"), 1, |f| {
            let arg = f.arg(0);
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let locals = f.vreg();
            f.load_ptr(locals, c, cx_locals);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            f.sub(sp, sp, 1);
            let top = load_ptr_idx(f, abi, stack, sp);
            // Free the local's old box if present, then install the new one.
            let old = load_ptr_idx(f, abi, locals, arg);
            let oi = f.vreg();
            f.ptr_to_int(oi, old);
            let empty = f.label();
            f.br(Cond::Eq, oi, 0, empty);
            f.free(old);
            f.bind(empty);
            store_ptr_idx(f, abi, locals, arg, top);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_store);

        let h_load = b.function(format!("op_load_v{variant}"), 1, |f| {
            let arg = f.arg(0);
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let locals = f.vreg();
            f.load_ptr(locals, c, cx_locals);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            let lv = load_ptr_idx(f, abi, locals, arg);
            let li = f.vreg();
            f.ptr_to_int(li, lv);
            let v = f.vreg();
            f.mov_imm(v, 7);
            let undef = f.label();
            f.br(Cond::Eq, li, 0, undef);
            f.load_int(v, lv, bv_val, MemSize::S8);
            f.bind(undef);
            let bx = f.vreg();
            f.malloc(bx, boxv.size());
            let one = f.vreg();
            f.mov_imm(one, 1);
            f.store_int(one, bx, bv_kind, MemSize::S8);
            f.store_int(v, bx, bv_val, MemSize::S8);
            store_ptr_idx(f, abi, stack, sp, bx);
            f.add(sp, sp, 1);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_load);

        let h_mul = binop(&mut b, &format!("op_mul_v{variant}"), true);
        handler_ids.push(h_mul);

        let h_swapdrop = b.function(format!("op_swapdrop_v{variant}"), 1, |f| {
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            f.sub(sp, sp, 1);
            let top = load_ptr_idx(f, abi, stack, sp);
            let sp2 = f.vreg();
            f.sub(sp2, sp, 1);
            let under = load_ptr_idx(f, abi, stack, sp2);
            f.free(under);
            store_ptr_idx(f, abi, stack, sp2, top);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_swapdrop);

        let h_prop = b.function(format!("op_prop_v{variant}"), 1, |f| {
            let arg = f.arg(0);
            let c = f.vreg();
            f.lea_global(c, g_ctx, 0);
            let stack = f.vreg();
            f.load_ptr(stack, c, cx_stack);
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            // Property access: chase `arg + 1` links of the object chain from
            // the context's cursor, read the property, advance the cursor.
            let cur = f.vreg();
            f.load_ptr(cur, c, cx_objs);
            let hops = f.vreg();
            f.add(hops, arg, 1);
            let i = f.vreg();
            f.mov_imm(i, 0);
            let done = f.label();
            let head = f.here();
            f.br(Cond::Geu, i, hops, done);
            f.load_ptr(cur, cur, ob_next);
            f.add(i, i, 1);
            f.jump(head);
            f.bind(done);
            let shape = f.vreg();
            f.load_ptr(shape, cur, ob_shape);
            let v = f.vreg();
            f.load_int(v, shape, ob_val, MemSize::S8);
            let v2 = f.vreg();
            f.load_int(v2, cur, ob_val, MemSize::S8);
            f.add(v, v, v2);
            f.store_ptr(cur, c, cx_objs);
            // Box the property value.
            let bx = f.vreg();
            f.malloc(bx, box_size);
            let one = f.vreg();
            f.mov_imm(one, 1);
            f.store_int(one, bx, bv_kind, MemSize::S8);
            f.store_int(v, bx, bv_val, MemSize::S8);
            store_ptr_idx(f, abi, stack, sp, bx);
            f.add(sp, sp, 1);
            f.store_int(sp, c, cx_sp, MemSize::S8);
            f.ret(None);
        });
        handler_ids.push(h_prop);
    } // end variant loop

    assert_eq!(handler_ids.len() as u64, N_OPS * VARIANTS as u64);
    let dispatch_table = b.func_table("op_handlers", &handler_ids);

    // --- scripts as constant bytecode globals -------------------------------
    let mut lens_bytes: Vec<u8> = Vec::with_capacity(scripts as usize * 8);
    let script_ids: Vec<_> = (0..scripts)
        .map(|i| {
            let code = gen_script(&mut host_rng, script_len);
            lens_bytes.extend_from_slice(&(code.len() as u64).to_le_bytes());
            b.global_const(format!("script_{i}"), code)
        })
        .collect();
    let script_lens = b.global_const("script_lens", lens_bytes);
    // A table of pointers to every script (so the run loop indexes it).
    let script_table = {
        let ptr_inits = script_ids
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u64 * ps, cheri_isa::PtrInit::Global(*g, 0)))
            .collect();
        b.add_global(cheri_isa::GlobalDef {
            name: "script_table".into(),
            size: scripts * ps,
            init: Vec::new(),
            ptr_inits,
            is_const: true,
            align: 16,
        })
    };

    // --- the parser: a branchy byte-scan over the source/bytecode, as the
    // real engine tokenises each program before running it ----------------
    let parse = b.function("parse_script", 2, |f| {
        let code = f.arg(0);
        let len = f.arg(1);
        let hash = f.vreg();
        f.mov_imm(hash, 0xcbf29ce484222325);
        let pc = f.vreg();
        f.mov_imm(pc, 0);
        let done = f.label();
        let head = f.here();
        f.br(Cond::Geu, pc, len, done);
        let byte = f.vreg();
        f.load_int(byte, code, pc, MemSize::S1);
        f.eor(hash, hash, byte);
        f.mul(hash, hash, 0x100000001b3u64 as i64);
        // Token classification branch (data-dependent, like a lexer).
        let is_op = f.label();
        f.br(Cond::Ltu, byte, 3, is_op);
        f.lsr(hash, hash, 1);
        f.bind(is_op);
        f.add(pc, pc, 1);
        f.jump(head);
        f.bind(done);
        f.ret(Some(hash));
    });

    // --- the VM run loop -----------------------------------------------------
    let run_script = b.function("run_script", 2, |f| {
        let code = f.arg(0);
        let len = f.arg(1);
        let tbl = f.vreg();
        f.lea_global(tbl, dispatch_table, 0);
        let c = f.vreg();
        f.lea_global(c, g_ctx, 0);
        let pc = f.vreg();
        f.mov_imm(pc, 0);
        let done = f.label();
        let head = f.here();
        f.br(Cond::Geu, pc, len, done);
        let op = f.vreg();
        f.load_int(op, code, pc, MemSize::S1);
        let argp = f.vreg();
        f.add(argp, pc, 1);
        let arg = f.vreg();
        f.load_int(arg, code, argp, MemSize::S1);
        // Indirect dispatch through the handler table.
        let h = load_ptr_idx(f, abi, tbl, op);
        f.call_indirect(h, &[arg], None);
        f.add(pc, pc, 2);
        f.jump(head);
        f.bind(done);
        // Result: the remaining stack slot.
        let stack = f.vreg();
        f.load_ptr(stack, c, cx_stack);
        let sp = f.vreg();
        f.load_int(sp, c, cx_sp, MemSize::S8);
        let spm = f.vreg();
        f.sub(spm, sp, 1);
        let top = load_ptr_idx(f, abi, stack, spm);
        let v = f.vreg();
        f.load_int(v, top, bv_val, MemSize::S8);
        f.ret(Some(v));
    });

    let main = b.function("main", 0, |f| {
        let tbl = f.vreg();
        f.lea_global(tbl, script_table, 0);
        let total = f.vreg();
        f.mov_imm(total, 0);
        let ns = f.vreg();
        f.mov_imm(ns, scripts);
        let c = f.vreg();
        f.lea_global(c, g_ctx, 0);
        f.for_loop(0, ns, 1, |f, s| {
            // Fresh context per script: stack of 16 value slots + 8 locals
            // + a ring of property-bearing objects (the script's heap).
            let stack = f.vreg();
            f.malloc(stack, 16 * ps);
            let locals = f.vreg();
            f.malloc(locals, 8 * ps);
            f.store_ptr(stack, c, cx_stack);
            f.store_ptr(locals, c, cx_locals);
            // Build this script's object chain and splice it into the
            // realm-wide ring (the persistent globals/shapes of the real
            // engine): property walks wander the accumulated object heap.
            let first = f.vreg();
            f.malloc(first, obj.size());
            f.store_int(s, first, ob_val, MemSize::S8);
            f.store_ptr(first, first, ob_shape);
            let prev = f.vreg();
            f.mov(prev, first);
            let nobj = f.vreg();
            f.mov_imm(nobj, OBJS_PER_SCRIPT - 1);
            f.for_loop(0, nobj, 1, |f, k| {
                let o = f.vreg();
                f.malloc(o, obj.size());
                f.store_int(k, o, ob_val, MemSize::S8);
                f.store_ptr(prev, o, ob_shape);
                f.store_ptr(o, prev, ob_next);
                f.mov(prev, o);
            });
            let ringp = f.vreg();
            f.lea_global(ringp, g_ring, 0);
            let head = f.vreg();
            f.load_ptr(head, ringp, 0);
            let hi = f.vreg();
            f.ptr_to_int(hi, head);
            let empty = f.label();
            let spliced = f.label();
            f.br(Cond::Eq, hi, 0, empty);
            // tail(prev).next = head.next; head.next = first. The walk
            // cursor persists across scripts, orbiting the ever-growing
            // ring — old (cold) objects get revisited, as the real
            // engine's shapes/globals are.
            let old_next = f.vreg();
            f.load_ptr(old_next, head, ob_next);
            f.store_ptr(old_next, prev, ob_next);
            f.store_ptr(first, head, ob_next);
            f.jump(spliced);
            f.bind(empty);
            f.store_ptr(first, prev, ob_next); // first script: close a ring
            f.store_ptr(first, c, cx_objs); // seed the persistent cursor
            f.bind(spliced);
            f.store_ptr(first, ringp, 0);
            // malloc recycles blocks without zeroing: null the locals.
            let nullp = f.vreg();
            f.mov_null_ptr(nullp);
            let eight0 = f.vreg();
            f.mov_imm(eight0, 8);
            f.for_loop(0, eight0, 1, |f, l| {
                store_ptr_idx(f, abi, locals, l, nullp);
            });
            let zero = f.vreg();
            f.mov_imm(zero, 0);
            f.store_int(zero, c, cx_sp, MemSize::S8);
            // Run.
            let code = load_ptr_idx(f, abi, tbl, s);
            let lens = f.vreg();
            f.lea_global(lens, script_lens, 0);
            let loff = f.vreg();
            f.lsl(loff, s, 3);
            let len = f.vreg();
            f.load_int(len, lens, loff, MemSize::S8);
            let ph = f.vreg();
            f.call(parse, &[code, len], Some(ph));
            f.eor(total, total, ph);
            f.and(total, total, 0xFFFF_FFFFi64);
            let r = f.vreg();
            f.call(run_script, &[code, len], Some(r));
            f.add(total, total, r);
            // Teardown: free the remaining stack box, locals' boxes, then
            // the context arrays.
            let sp = f.vreg();
            f.load_int(sp, c, cx_sp, MemSize::S8);
            let spm = f.vreg();
            f.sub(spm, sp, 1);
            let top = load_ptr_idx(f, abi, stack, spm);
            f.free(top);
            f.free(stack);
            // The locals array and its boxes leak into the per-run arena
            // (the harness keeps per-test state): the paper's 36%/55%
            // footprint and utilized-memory growth.
        });
        f.and(total, total, 0xFFFF_FFFFi64);
        f.halt_code(total);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_hybrid_vs_purecap() {
        // (Benchmark ABI is NA for QuickJS, as in the paper.)
        let h = Interp::new(InterpConfig::default())
            .run(&lower(&build(Abi::Hybrid, Scale::Test)), &mut NullSink)
            .unwrap();
        let p = Interp::new(InterpConfig::default())
            .run(&lower(&build(Abi::Purecap, Scale::Test)), &mut NullSink)
            .unwrap();
        assert_eq!(h.exit_code, p.exit_code);
        assert!(h.heap_stats.total_allocs > 100, "JS boxing must churn");
        assert!(
            p.heap_stats.live_bytes >= h.heap_stats.live_bytes,
            "purecap footprint must not shrink"
        );
    }
}
