//! `544.nab_r` / `644.nab_s` proxy — molecular dynamics force field
//! (Nucleic Acid Builder).
//!
//! The original computes nonbonded forces over neighbour lists: gathers of
//! particle coordinates, distance math with square roots, and force
//! accumulation. The paper classifies it compute-intensive (MI ≈ 0.42)
//! with a small purecap slowdown (≈5%) — but one of the larger DTLB-walk
//! increases (+62%), since coordinate arrays are scattered.
//!
//! The proxy: structure-of-arrays particle coordinates, a precomputed
//! neighbour index list, and an O(N·K) force loop of gathers +
//! `sqrt`/`fmadd` chains.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, FloatOp, GenericProgram, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    let particles: u64 = (512 * f_scale * if speed { 2 } else { 1 }).min(32768);
    let neighbours: u64 = 12;
    let steps: u64 = if speed { 3 } else { 2 };

    let mut b = ProgramBuilder::new(if speed { "644.nab_s" } else { "544.nab_r" }, abi);
    // Atom: { x, y, z, fx } — heap-allocated, referenced through pointer
    // neighbour lists (NAB's atom-graph structure; the source of its ~24%
    // capability load density).
    let atom = Layout::new(abi, &[Field::F64, Field::F64, Field::F64, Field::F64]);
    let (a_x, a_y, a_z, a_fx) = (atom.off(0), atom.off(1), atom.off(2), atom.off(3));
    let g_atoms = b.global_zero("atom_table", 16);
    let g_nbr = b.global_zero("nbr_table", 16);

    let main = b.function("main", 0, |f| {
        let rng = SimRng::init(f, 0xAB5C_D41E);
        let n = f.vreg();
        f.mov_imm(n, particles);
        let atoms = f.vreg();
        f.malloc(atoms, particles * abi.pointer_size());
        let ap = f.vreg();
        f.lea_global(ap, g_atoms, 0);
        f.store_ptr(atoms, ap, 0);
        let nbr = f.vreg();
        f.malloc(nbr, particles * neighbours * abi.pointer_size());
        let np = f.vreg();
        f.lea_global(np, g_nbr, 0);
        f.store_ptr(nbr, np, 0);

        // Allocate atoms with random coordinates.
        f.for_loop(0, n, 1, |f, i| {
            let a = f.vreg();
            f.malloc(a, atom.size());
            for (c, off) in [a_x, a_y, a_z].iter().enumerate() {
                let v = rng.next_bits(f, 10);
                let vf = f.vreg();
                f.int_to_f64(vf, v);
                f.store_f64(vf, a, *off);
                let _ = c;
            }
            store_ptr_idx(f, abi, atoms, i, a);
        });
        // Neighbour lists: pointers to other atoms.
        f.for_loop(0, n, 1, |f, i| {
            let base = f.vreg();
            f.mov_imm(base, neighbours);
            f.mul(base, base, i);
            for k in 0..neighbours {
                // Neighbour lists are spatially local: nearby indices.
                let jit = rng.next_bits(f, 6);
                let j = f.vreg();
                f.add(j, i, jit);
                let m = f.vreg();
                f.mov_imm(m, particles - 1);
                f.and(j, j, m);
                let aj = load_ptr_idx(f, abi, atoms, j);
                let slot = f.vreg();
                f.add(slot, base, k as i64);
                store_ptr_idx(f, abi, nbr, slot, aj);
            }
        });

        // Force loop.
        let steps_r = f.vreg();
        f.mov_imm(steps_r, steps);
        let check = f.vreg();
        f.mov_f64(check, 0.0);
        f.for_loop(0, steps_r, 1, |f, _| {
            f.for_loop(0, n, 1, |f, i| {
                let ai = load_ptr_idx(f, abi, atoms, i);
                let xi = f.vreg();
                f.load_f64(xi, ai, a_x);
                let yi = f.vreg();
                f.load_f64(yi, ai, a_y);
                let zi = f.vreg();
                f.load_f64(zi, ai, a_z);
                let fx = f.vreg();
                f.mov_f64(fx, 0.0);
                let base = f.vreg();
                f.mov_imm(base, neighbours);
                f.mul(base, base, i);
                for k in 0..neighbours {
                    let slot = f.vreg();
                    f.add(slot, base, k as i64);
                    let aj = load_ptr_idx(f, abi, nbr, slot);
                    let xj = f.vreg();
                    f.load_f64(xj, aj, a_x);
                    let yj = f.vreg();
                    f.load_f64(yj, aj, a_y);
                    let zj = f.vreg();
                    f.load_f64(zj, aj, a_z);
                    let fj = f.vreg();
                    f.load_f64(fj, aj, a_fx);
                    let dx = f.vreg();
                    f.fsub(dx, xi, xj);
                    let dy = f.vreg();
                    f.fsub(dy, yi, yj);
                    let dz = f.vreg();
                    f.fsub(dz, zi, zj);
                    let r2 = f.vreg();
                    f.fmul(r2, dx, dx);
                    f.fmadd(r2, dy, dy, r2);
                    f.fmadd(r2, dz, dz, r2);
                    f.fadd(r2, r2, fj);
                    let bias = f.vreg();
                    f.mov_f64(bias, 1.0);
                    f.fadd(r2, r2, bias);
                    let r = f.vreg();
                    f.float_op(FloatOp::FSqrt, r, r2, r2);
                    let inv = f.vreg();
                    f.fdiv(inv, bias, r);
                    f.fmadd(fx, dx, inv, fx);
                }
                f.store_f64(fx, ai, a_fx);
                f.fadd(check, check, fx);
            });
        });
        let code = f.vreg();
        f.f64_to_int(code, check);
        f.and(code, code, 0x7FFF_FFFFi64);
        f.halt_code(code);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }
}
