//! `541.leela_r` / `641.leela_s` proxy — Monte-Carlo tree search with
//! playouts.
//!
//! The original is a Go engine: UCT selection over a growing pointer tree
//! (float math with divides/square roots), random playouts (the suite's
//! highest branch misprediction rate, ≈7.3%), node expansion
//! (allocation), and backpropagation. The paper measures a 23% purecap
//! slowdown reduced to 14% by the benchmark ABI — the tree walk's child-
//! pointer loads and cross-module calls into the `gtp` engine module are
//! the capability-sensitive parts.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    let iterations: u64 = 170 * f_scale * if speed { 2 } else { 1 };
    let playout_len: u64 = 48;
    let children: u64 = 8;
    let max_depth: u64 = 5;

    let mut b = ProgramBuilder::new(if speed { "641.leela_s" } else { "541.leela_r" }, abi);
    let engine = b.module("gtp_engine");

    // MCTS node: { visits(i64), wins(f64), expanded(i64), kids* }
    let node = Layout::new(abi, &[Field::I64, Field::F64, Field::I64, Field::Ptr]);
    let (n_visits, n_wins, n_expanded, n_kids) =
        (node.off(0), node.off(1), node.off(2), node.off(3));
    let ps = abi.pointer_size();

    let g_board = b.global_zero("go_board", 368 * 8); // 19x19 + slack
    let g_root = b.global_zero("tree_root", 16);
    let g_path = b.global_zero("select_path", 16 * (max_depth + 2));

    // --- engine module: one random playout --------------------------------
    let playout = b.function_in(engine, "playout", 1, |f| {
        let seed = f.arg(0);
        let board = f.vreg();
        f.lea_global(board, g_board, 0);
        let rng = SimRng::init(f, 0);
        // Mix the per-call seed into the PRNG state.
        f.eor(rng_state(&rng), rng_state(&rng), seed);
        let score = f.vreg();
        f.mov_imm(score, 0);
        let steps = f.vreg();
        f.mov_imm(steps, playout_len);
        f.for_loop(0, steps, 1, |f, _| {
            let mv = rng.next(f);
            let sq = f.vreg();
            f.and(sq, mv, 255);
            f.lsl(sq, sq, 3);
            let v = f.vreg();
            f.load_int(v, board, sq, MemSize::S8);
            // Unpredictable branch: captured or not (the 7% MR source).
            let bit = f.vreg();
            f.and(bit, mv, 256);
            let no_cap = f.label();
            f.br(Cond::Eq, bit, 0, no_cap);
            f.add(v, v, 1);
            f.store_int(v, board, sq, MemSize::S8);
            f.add(score, score, 1);
            f.bind(no_cap);
            f.eor(score, score, v);
            f.and(score, score, 1023);
        });
        f.and(score, score, 1);
        f.ret(Some(score));
    });

    // --- expand: allocate a node's children --------------------------------
    let expand = b.function("expand", 1, |f| {
        let nd = f.arg(0);
        let kids = f.vreg();
        f.malloc(kids, children * ps);
        let cnt = f.vreg();
        f.mov_imm(cnt, children);
        f.for_loop(0, cnt, 1, |f, i| {
            let child = f.vreg();
            f.malloc(child, node.size());
            let one = f.vreg();
            f.mov_imm(one, 1);
            f.store_int(one, child, n_visits, MemSize::S8);
            let half = f.vreg();
            f.mov_f64(half, 0.5);
            f.store_f64(half, child, n_wins);
            store_ptr_idx(f, abi, kids, i, child);
        });
        f.store_ptr(kids, nd, n_kids);
        let one = f.vreg();
        f.mov_imm(one, 1);
        f.store_int(one, nd, n_expanded, MemSize::S8);
        f.ret(None);
    });

    // --- UCT select: best child by wins/visits + sqrt(ln(pv)/v) ------------
    let select = b.function("uct_select", 1, |f| {
        let nd = f.arg(0);
        let kids = f.vreg();
        f.load_ptr(kids, nd, n_kids);
        let pv = f.vreg();
        f.load_int(pv, nd, n_visits, MemSize::S8);
        let pvf = f.vreg();
        f.int_to_f64(pvf, pv);
        let best_score = f.vreg();
        f.mov_f64(best_score, -1.0);
        let best = f.vreg();
        let cnt = f.vreg();
        f.mov_imm(cnt, children);
        // Initialise `best` to child 0.
        let zero = f.vreg();
        f.mov_imm(zero, 0);
        let first = load_ptr_idx(f, abi, kids, zero);
        f.mov(best, first);
        f.for_loop(0, cnt, 1, |f, i| {
            let c = load_ptr_idx(f, abi, kids, i);
            let v = f.vreg();
            f.load_int(v, c, n_visits, MemSize::S8);
            let vf = f.vreg();
            f.int_to_f64(vf, v);
            let w = f.vreg();
            f.load_f64(w, c, n_wins);
            // exploit = w / v; explore = sqrt(pv) / v (cheap UCT flavor)
            let exploit = f.vreg();
            f.fdiv(exploit, w, vf);
            let root = f.vreg();
            f.float_op(cheri_isa::FloatOp::FSqrt, root, pvf, pvf);
            let explore = f.vreg();
            f.fdiv(explore, root, vf);
            let score = f.vreg();
            f.fadd(score, exploit, explore);
            let worse = f.vreg();
            f.fcmp(Cond::Gtu, worse, score, best_score);
            let skip = f.label();
            f.br(Cond::Eq, worse, 0, skip);
            f.mov(best_score, score);
            f.mov(best, c);
            f.bind(skip);
        });
        f.ret(Some(best));
    });

    // --- main loop -----------------------------------------------------------
    let main = b.function("main", 0, |f| {
        let rng = SimRng::init(f, 0x1EE1A);
        // Root node.
        let root = f.vreg();
        f.malloc(root, node.size());
        let one = f.vreg();
        f.mov_imm(one, 1);
        f.store_int(one, root, n_visits, MemSize::S8);
        let half = f.vreg();
        f.mov_f64(half, 0.5);
        f.store_f64(half, root, n_wins);
        f.call(expand, &[root], None);
        let rp = f.vreg();
        f.lea_global(rp, g_root, 0);
        f.store_ptr(root, rp, 0);
        let path = f.vreg();
        f.lea_global(path, g_path, 0);

        let total = f.vreg();
        f.mov_imm(total, 0);
        let iters = f.vreg();
        f.mov_imm(iters, iterations);
        f.for_loop(0, iters, 1, |f, it| {
            // Selection: walk down `max_depth` levels, recording the path.
            let cur = f.vreg();
            f.mov(cur, root);
            let depth = f.vreg();
            f.mov_imm(depth, 0);
            let dmax = f.vreg();
            f.mov_imm(dmax, max_depth);
            let out = f.label();
            let head = f.here();
            f.br(Cond::Geu, depth, dmax, out);
            store_ptr_idx(f, abi, path, depth, cur);
            let exp = f.vreg();
            f.load_int(exp, cur, n_expanded, MemSize::S8);
            let need_expand = f.label();
            f.br(Cond::Eq, exp, 0, need_expand);
            let nxt = f.vreg();
            f.call(select, &[cur], Some(nxt));
            f.mov(cur, nxt);
            f.add(depth, depth, 1);
            f.jump(head);
            f.bind(need_expand);
            f.call(expand, &[cur], None);
            f.bind(out);
            store_ptr_idx(f, abi, path, depth, cur);

            // Playout from the leaf (cross-module call).
            let seed = rng.next(f);
            f.eor(seed, seed, it);
            let won = f.vreg();
            f.call(playout, &[seed], Some(won));
            f.add(total, total, won);
            let wonf = f.vreg();
            f.int_to_f64(wonf, won);

            // Backpropagate along the recorded path.
            let lvl = f.vreg();
            f.mov_imm(lvl, 0);
            let bdone = f.label();
            let bhead = f.here();
            f.br(Cond::Gtu, lvl, depth, bdone);
            let pn = load_ptr_idx(f, abi, path, lvl);
            let v = f.vreg();
            f.load_int(v, pn, n_visits, MemSize::S8);
            f.add(v, v, 1);
            f.store_int(v, pn, n_visits, MemSize::S8);
            let w = f.vreg();
            f.load_f64(w, pn, n_wins);
            f.fadd(w, w, wonf);
            f.store_f64(w, pn, n_wins);
            f.add(lvl, lvl, 1);
            f.jump(bhead);
            f.bind(bdone);
        });
        f.halt_code(total);
    });

    b.set_entry(main);
    b.build()
}

/// Accessor for the PRNG state register (mixing in per-call entropy).
fn rng_state(rng: &SimRng) -> cheri_isa::VReg {
    // SimRng exposes its state through `next`'s final `mov`; for seeding we
    // reach the state register directly.
    rng.state_reg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
        assert!(codes[0] > 0, "some playouts must win");
    }
}
