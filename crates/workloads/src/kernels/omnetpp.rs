//! `520.omnetpp_r` / `620.omnetpp_s` proxy — discrete event simulation of
//! a large network.
//!
//! The original simulates a 10-gigabit Ethernet network: a future-event
//! set (priority queue of event objects), a large graph of module/gate
//! objects linked by pointers, and per-event message hops. What the paper
//! measures on it: the highest memory intensity of the suite (MI ≈ 1.16),
//! a pointer-chasing access pattern over a multi-megabyte object graph,
//! and the largest purecap slowdown among SPEC after xalancbmk (87%),
//! partly recovered by the benchmark ABI (74%).
//!
//! The proxy reproduces those axes: a binary-heap future-event set holding
//! *pointers* to heap-allocated event structs (every heap operation is a
//! dependent capability load under purecap), a node graph with pointer
//! gates wired randomly (chasing), cross-module calls into a `simlib`
//! module for every queue operation (PCC-bound changes under purecap),
//! and moderate allocation churn.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy (larger network, more events).
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

struct Params {
    nodes: u64,
    steps: u64,
    seed_events: u64,
}

fn params(scale: Scale, speed: bool) -> Params {
    let f = scale.factor();
    let s = if speed { 2 } else { 1 };
    Params {
        nodes: (512 * f * s).min(32768),
        steps: 1300 * f * s,
        seed_events: 128,
    }
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let p = params(scale, speed);
    let mut b = ProgramBuilder::new(
        if speed {
            "620.omnetpp_s"
        } else {
            "520.omnetpp_r"
        },
        abi,
    );
    let simlib = b.module("simlib");

    // Event: { time, node*, kind }
    let ev = Layout::new(abi, &[Field::I64, Field::Ptr, Field::I64]);
    let (ev_time, ev_node, ev_kind) = (ev.off(0), ev.off(1), ev.off(2));
    // Node: { stats[6], gates[3] } — a module object with statistics
    // blocks and gate pointers (≈100 B hybrid, ≈160 B purecap: the
    // pointer-rich C++ objects behind omnetpp's footprint blow-up).
    let node = Layout::new(
        abi,
        &[
            Field::I64,
            Field::I64,
            Field::I64,
            Field::I64,
            Field::I64,
            Field::I64,
            Field::Ptr,
            Field::Ptr,
            Field::Ptr,
        ],
    );
    let (n_state0, n_state1, n_gate0) = (node.off(0), node.off(1), node.off(6));
    let n_state2 = node.off(2);
    let n_state3 = node.off(4);

    let ps = abi.pointer_size();
    let g_fes = b.global_zero("fes_array", 16); // holds ptr to the heap array
    let g_count = b.global_zero("fes_count", 8);
    let g_nodes = b.global_zero("node_table", 16);

    // --- simlib: future-event-set push -----------------------------------
    let pq_push = b.function("pq_push", 1, |f| {
        let ev_ptr = f.arg(0);
        let fes_slot = f.vreg();
        f.lea_global(fes_slot, g_fes, 0);
        let fes = f.vreg();
        f.load_ptr(fes, fes_slot, 0);
        let cnt_slot = f.vreg();
        f.lea_global(cnt_slot, g_count, 0);
        let n = f.vreg();
        f.load_int(n, cnt_slot, 0, MemSize::S8);
        // fes[n] = ev
        store_ptr_idx(f, abi, fes, n, ev_ptr);
        let et = f.vreg();
        f.load_int(et, ev_ptr, ev_time, MemSize::S8);
        let i = f.vreg();
        f.mov(i, n);
        let done = f.label();
        let head = f.here();
        f.br(Cond::Eq, i, 0, done);
        let parent = f.vreg();
        f.sub(parent, i, 1);
        f.lsr(parent, parent, 1);
        let pe = load_ptr_idx(f, abi, fes, parent);
        let pt = f.vreg();
        f.load_int(pt, pe, ev_time, MemSize::S8);
        f.br(Cond::Leu, pt, et, done);
        // swap: fes[i] = pe; fes[parent] = ev
        store_ptr_idx(f, abi, fes, i, pe);
        store_ptr_idx(f, abi, fes, parent, ev_ptr);
        f.mov(i, parent);
        f.jump(head);
        f.bind(done);
        f.add(n, n, 1);
        f.store_int(n, cnt_slot, 0, MemSize::S8);
        f.ret(None);
    });

    // --- simlib: future-event-set pop-min ---------------------------------
    let pq_pop = b.function("pq_pop", 0, |f| {
        let fes_slot = f.vreg();
        f.lea_global(fes_slot, g_fes, 0);
        let fes = f.vreg();
        f.load_ptr(fes, fes_slot, 0);
        let cnt_slot = f.vreg();
        f.lea_global(cnt_slot, g_count, 0);
        let n = f.vreg();
        f.load_int(n, cnt_slot, 0, MemSize::S8);
        let root = f.vreg();
        f.load_ptr(root, fes, 0);
        f.sub(n, n, 1);
        f.store_int(n, cnt_slot, 0, MemSize::S8);
        // Move last element to the root and sift down.
        let last = load_ptr_idx(f, abi, fes, n);
        let lt = f.vreg();
        f.load_int(lt, last, ev_time, MemSize::S8);
        let i = f.vreg();
        f.mov_imm(i, 0);
        let done = f.label();
        let head = f.here();
        let left = f.vreg();
        f.lsl(left, i, 1);
        f.add(left, left, 1);
        f.br(Cond::Geu, left, n, done);
        // smallest child
        let child = f.vreg();
        f.mov(child, left);
        let ce = load_ptr_idx(f, abi, fes, left);
        let ct = f.vreg();
        f.load_int(ct, ce, ev_time, MemSize::S8);
        let right = f.vreg();
        f.add(right, left, 1);
        let no_right = f.label();
        f.br(Cond::Geu, right, n, no_right);
        let re = load_ptr_idx(f, abi, fes, right);
        let rt = f.vreg();
        f.load_int(rt, re, ev_time, MemSize::S8);
        f.br(Cond::Geu, rt, ct, no_right);
        f.mov(child, right);
        f.mov(ce, re);
        f.mov(ct, rt);
        f.bind(no_right);
        f.br(Cond::Geu, ct, lt, done);
        store_ptr_idx(f, abi, fes, i, ce);
        f.mov(i, child);
        f.jump(head);
        f.bind(done);
        store_ptr_idx(f, abi, fes, i, last);
        f.ret(Some(root));
    });

    // --- simlib: per-event statistics recording (the cross-DSO surface) ----
    let g_stats = b.global_zero("sim_stats", 256);
    let record = b.function_in(simlib, "record_event", 1, |f| {
        let kind = f.arg(0);
        let st = f.vreg();
        f.lea_global(st, g_stats, 0);
        let off = f.vreg();
        f.and(off, kind, 31);
        f.lsl(off, off, 3);
        let v = f.vreg();
        f.load_int(v, st, off, MemSize::S8);
        f.add(v, v, 1);
        f.store_int(v, st, off, MemSize::S8);
        f.ret(None);
    });

    // --- main ----------------------------------------------------------------
    let r_setup = b.region("setup");
    let r_seed = b.region("seed_fes");
    let r_chase = b.region("pointer_chase");
    let main = b.function("main", 0, |f| {
        f.region(r_setup);
        let rng = SimRng::init(f, 0x5eed_0411_0e77_a001);
        let nodes_n = f.vreg();
        f.mov_imm(nodes_n, p.nodes);

        // Allocate the FES array and node table.
        let fes = f.vreg();
        f.malloc(fes, (p.seed_events + 64) * ps);
        let fes_slot = f.vreg();
        f.lea_global(fes_slot, g_fes, 0);
        f.store_ptr(fes, fes_slot, 0);
        let ntab = f.vreg();
        f.malloc(ntab, p.nodes * ps);
        let ntab_slot = f.vreg();
        f.lea_global(ntab_slot, g_nodes, 0);
        f.store_ptr(ntab, ntab_slot, 0);

        // Allocate nodes.
        f.for_loop(0, nodes_n, 1, |f, i| {
            let nd = f.vreg();
            f.malloc(nd, node.size());
            f.store_int(i, nd, n_state0, MemSize::S8);
            let zero = f.vreg();
            f.mov_imm(zero, 0);
            f.store_int(zero, nd, n_state1, MemSize::S8);
            store_ptr_idx(f, abi, ntab, i, nd);
        });
        // Wire gates randomly (second pass: all nodes exist).
        let node_mask = p.nodes - 1;
        f.for_loop(0, nodes_n, 1, |f, i| {
            let nd = load_ptr_idx(f, abi, ntab, i);
            for g in 0..3 {
                let j = rng.next(f);
                let m = f.vreg();
                f.mov_imm(m, node_mask);
                f.and(j, j, m);
                let tgt = load_ptr_idx(f, abi, ntab, j);
                f.store_ptr(tgt, nd, n_gate0 + g * ps as i64);
            }
        });

        // Seed the future-event set.
        f.region(r_seed);
        let seeds = f.vreg();
        f.mov_imm(seeds, p.seed_events);
        f.for_loop(0, seeds, 1, |f, k| {
            let e = f.vreg();
            f.malloc(e, ev.size());
            let t = rng.next_bits(f, 12);
            f.store_int(t, e, ev_time, MemSize::S8);
            let j = rng.next(f);
            let m = f.vreg();
            f.mov_imm(m, node_mask);
            f.and(j, j, m);
            let nd = load_ptr_idx(f, abi, ntab, j);
            f.store_ptr(nd, e, ev_node);
            f.store_int(k, e, ev_kind, MemSize::S8);
            f.call(pq_push, &[e], None);
        });

        // Main simulation loop: pop-min + three dependent gate hops over
        // the randomly wired node graph — the pointer-chase hot region.
        f.region(r_chase);
        let steps = f.vreg();
        f.mov_imm(steps, p.steps);
        let checksum = f.vreg();
        f.mov_imm(checksum, 0);
        f.for_loop(0, steps, 1, |f, step| {
            let e = f.vreg();
            f.call(pq_pop, &[], Some(e));
            // One random draw per step, sliced into fields.
            let rnd = rng.next(f);
            // Process: follow the node, hop three gates, update state.
            let nd = f.vreg();
            f.load_ptr(nd, e, ev_node);
            let gsel = f.vreg();
            f.and(gsel, rnd, 1); // gate 0 or 1
            let goff = f.vreg();
            f.lsl(goff, gsel, if abi.is_capability() { 4 } else { 3 });
            let gp = f.vreg();
            f.ptr_add(gp, nd, goff);
            let hop1 = f.vreg();
            f.load_ptr(hop1, gp, n_gate0);
            let hop2 = f.vreg();
            f.load_ptr(hop2, hop1, n_gate0);
            let hop3 = f.vreg();
            f.load_ptr(hop3, hop2, n_gate0 + ps as i64);
            // State updates on all four nodes: two counters plus a
            // timestamp, spanning the whole object.
            for &n in &[nd, hop1, hop2, hop3] {
                let s = f.vreg();
                f.load_int(s, n, n_state1, MemSize::S8);
                f.add(s, s, 1);
                f.store_int(s, n, n_state1, MemSize::S8);
                f.add(checksum, checksum, s);
                let s2 = f.vreg();
                f.load_int(s2, n, n_state2, MemSize::S8);
                f.add(s2, s2, s);
                f.store_int(s2, n, n_state3, MemSize::S8);
            }
            // Reschedule: advance time, retarget, push back.
            let t = f.vreg();
            f.load_int(t, e, ev_time, MemSize::S8);
            let dt = f.vreg();
            f.lsr(dt, rnd, 8);
            let m1023 = f.vreg();
            f.mov_imm(m1023, 1023);
            f.and(dt, dt, m1023);
            f.add(t, t, dt);
            f.add(t, t, 1);
            f.store_int(t, e, ev_time, MemSize::S8);
            f.store_ptr(hop3, e, ev_node);
            f.call(record, &[gsel], None);
            // Allocation churn: every event object is recycled (cMessage
            // new/delete per hop).
            let churn = f.vreg();
            f.and(churn, step, 0);
            let keep = f.label();
            f.br(Cond::Ne, churn, 0, keep);
            f.free(e);
            let e2 = f.vreg();
            f.malloc(e2, ev.size());
            f.store_int(t, e2, ev_time, MemSize::S8);
            f.store_ptr(hop3, e2, ev_node);
            f.mov(e, e2);
            f.bind(keep);
            f.call(pq_push, &[e], None);
        });
        f.region_end();
        f.halt_code(checksum);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn runs_to_completion_under_all_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let gp = build_rate(abi, Scale::Test);
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&gp), &mut NullSink)
                .unwrap();
            assert!(
                res.retired > 10_000,
                "suspiciously small run: {}",
                res.retired
            );
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1], "hybrid vs benchmark checksum");
        assert_eq!(codes[0], codes[2], "hybrid vs purecap checksum");
        assert_ne!(codes[0], 0);
    }

    #[test]
    fn speed_variant_is_bigger() {
        let r = build_rate(Abi::Hybrid, Scale::Test);
        let s = build_speed(Abi::Hybrid, Scale::Test);
        assert_eq!(r.abi, s.abi);
        // Same code, larger parameters: detect via a quick run.
        let rr = Interp::new(InterpConfig::default())
            .run(&lower(&r), &mut NullSink)
            .unwrap();
        let rs = Interp::new(InterpConfig::default())
            .run(&lower(&s), &mut NullSink)
            .unwrap();
        assert!(rs.retired > rr.retired);
    }
}
