//! LLaMA.cpp proxies — LLM inference and FP matrix multiplication.
//!
//! The paper's two LLaMA.cpp workloads are its counter-example to "bigger
//! pointers always hurt": both are dominated by *sequential* streaming
//! over large weight tensors, so the purecap overhead is ~1.3%
//! (inference) and slightly *negative* (matmul). Capability density is
//! under 0.5%; the top-down profile is external-memory bound in hybrid
//! and becomes mildly core-bound under purecap.
//!
//! * [`build_matmul`] — blocked FP multiply of pseudo-random matrices
//!   (the paper's `(11008,4096) x (11008,128)` case, scaled), all
//!   `FMADD`/vector traffic.
//! * [`build_inference`] — q8-quantised mat-vec: packed 8-bit weights
//!   streamed once per generated token, unpacked with integer shifts and
//!   scaled by per-block `f64` factors — memory-bandwidth bound with an
//!   integer-heavy instruction mix (MI ≈ 0.31).

use crate::registry::Scale;
use cheri_isa::{Abi, GenericProgram, MemSize, ProgramBuilder, VecKind};

/// Builds the matmul microbenchmark proxy.
pub fn build_matmul(abi: Abi, scale: Scale) -> GenericProgram {
    let f_scale = scale.factor();
    let m: u64 = 16;
    let k: u64 = (64 * f_scale).min(1024); // shared dimension
    let n: u64 = (8 * f_scale).min(192);

    let mut b = ProgramBuilder::new("LLaMA.cpp (matmult)", abi);
    let g_a = b.global_zero("mat_a", m * k * 8);
    let g_bm = b.global_zero("mat_b", k * n * 8);
    let g_c = b.global_zero("mat_c", m * n * 8);

    let r_fill = b.region("fill");
    let r_gemm = b.region("gemm");
    let main = b.function("main", 0, |f| {
        f.region(r_fill);
        let a = f.vreg();
        f.lea_global(a, g_a, 0);
        let bm = f.vreg();
        f.lea_global(bm, g_bm, 0);
        let c = f.vreg();
        f.lea_global(c, g_c, 0);

        // Pseudo-random fill (the paper's matmul generates random FP32).
        let fill = |f: &mut cheri_isa::FunctionBuilder, base: cheri_isa::VReg, count: u64| {
            let n_r = f.vreg();
            f.mov_imm(n_r, count);
            f.for_loop(0, n_r, 1, |f, i| {
                let v = f.vreg();
                f.mul(v, i, 0x9E37_79B9i64);
                f.and(v, v, 1023);
                let vf = f.vreg();
                f.int_to_f64(vf, v);
                let off = f.vreg();
                f.lsl(off, i, 3);
                f.store_f64(vf, base, off);
            });
        };
        fill(f, a, m * k);
        fill(f, bm, k * n);

        // C = A x B, row-major ikj loop (streaming over B).
        f.region(r_gemm);
        let m_r = f.vreg();
        f.mov_imm(m_r, m);
        f.for_loop(0, m_r, 1, |f, i| {
            let k_r = f.vreg();
            f.mov_imm(k_r, k);
            f.for_loop(0, k_r, 1, |f, kk| {
                // a_ik
                let ao = f.vreg();
                f.mov_imm(ao, k);
                f.madd(ao, i, ao, kk);
                f.lsl(ao, ao, 3);
                let av = f.vreg();
                f.load_f64(av, a, ao);
                let n_r = f.vreg();
                f.mov_imm(n_r, n);
                f.for_loop(0, n_r, 1, |f, j| {
                    let bo = f.vreg();
                    f.mov_imm(bo, n);
                    f.madd(bo, kk, bo, j);
                    f.lsl(bo, bo, 3);
                    let bv = f.vreg();
                    f.load_f64(bv, bm, bo);
                    let co = f.vreg();
                    f.mov_imm(co, n);
                    f.madd(co, i, co, j);
                    f.lsl(co, co, 3);
                    let cv = f.vreg();
                    f.load_f64(cv, c, co);
                    // Vector FMA (the ggml inner kernel is SIMD).
                    f.vec_op(VecKind::VFma, cv, av, bv);
                    f.store_f64(cv, c, co);
                });
            });
        });
        // Checksum C[0,0] + C[m-1,n-1].
        f.region_end();
        let v0 = f.vreg();
        f.load_f64(v0, c, 0);
        let vn = f.vreg();
        f.load_f64(vn, c, ((m * n - 1) * 8) as i64);
        f.fadd(v0, v0, vn);
        let code = f.vreg();
        f.f64_to_int(code, v0);
        f.and(code, code, 0xFFFF_FFFFi64);
        f.halt_code(code);
    });

    b.set_entry(main);
    b.build()
}

/// Builds the end-to-end inference proxy (q8 weights, token loop).
pub fn build_inference(abi: Abi, scale: Scale) -> GenericProgram {
    let f_scale = scale.factor();
    let dim: u64 = (256 * f_scale).min(4096); // rows of the weight matrix
    let cols: u64 = 256; // packed q8 columns (bytes per row)
    let tokens: u64 = 4;

    let mut b = ProgramBuilder::new("LLaMA.cpp (inference)", abi);
    // Weights: dim x cols bytes (q8), one f64 scale per 32-byte block.
    let g_w = b.global_zero("weights_q8", dim * cols);
    let g_scales = b.global_zero("scales", dim * (cols / 32) * 8);
    let g_x = b.global_zero("activations", cols * 8);
    let g_y = b.global_zero("output", dim * 8);

    let r_init = b.region("init_weights");
    let r_matvec = b.region("matvec");
    let main = b.function("main", 0, |f| {
        f.region(r_init);
        let w = f.vreg();
        f.lea_global(w, g_w, 0);
        let scales = f.vreg();
        f.lea_global(scales, g_scales, 0);
        let x = f.vreg();
        f.lea_global(x, g_x, 0);
        let y = f.vreg();
        f.lea_global(y, g_y, 0);

        // Initialise weights (striped) and activations.
        let wbytes = f.vreg();
        f.mov_imm(wbytes, dim * cols / 8);
        f.for_loop(0, wbytes, 1, |f, i| {
            let v = f.vreg();
            f.mul(v, i, 0x0101_0101_0101_0101u64 as i64);
            let off = f.vreg();
            f.lsl(off, i, 3);
            f.store_int(v, w, off, MemSize::S8);
        });
        let nx = f.vreg();
        f.mov_imm(nx, cols);
        f.for_loop(0, nx, 1, |f, i| {
            let vf = f.vreg();
            let v = f.vreg();
            f.and(v, i, 15);
            f.int_to_f64(vf, v);
            let off = f.vreg();
            f.lsl(off, i, 3);
            f.store_f64(vf, x, off);
        });
        let nsc = f.vreg();
        f.mov_imm(nsc, dim * (cols / 32));
        f.for_loop(0, nsc, 1, |f, i| {
            let s = f.vreg();
            f.mov_f64(s, 0.0078125); // 1/128
            let off = f.vreg();
            f.lsl(off, i, 3);
            f.store_f64(s, scales, off);
        });

        // Token loop: one full mat-vec sweep per generated token.
        f.region(r_matvec);
        let toks = f.vreg();
        f.mov_imm(toks, tokens);
        let check = f.vreg();
        f.mov_f64(check, 0.0);
        f.for_loop(0, toks, 1, |f, _t| {
            let rows = f.vreg();
            f.mov_imm(rows, dim);
            f.for_loop(0, rows, 1, |f, row| {
                let acc = f.vreg();
                f.mov_f64(acc, 0.0);
                let rowbase = f.vreg();
                f.mov_imm(rowbase, cols);
                f.mul(rowbase, rowbase, row);
                // Stream the row 8 packed weights at a time.
                let groups = f.vreg();
                f.mov_imm(groups, cols / 8);
                f.for_loop(0, groups, 1, |f, g| {
                    let off = f.vreg();
                    f.lsl(off, g, 3);
                    f.add(off, off, rowbase);
                    let packed = f.vreg();
                    f.load_int(packed, w, off, MemSize::S8);
                    // Unpack (integer shift mix — the reason inference's
                    // instruction mix is integer-heavy).
                    let partial = f.vreg();
                    f.lsr(partial, packed, 16);
                    f.eor(partial, partial, packed);
                    f.and(partial, partial, 255);
                    let pf = f.vreg();
                    f.int_to_f64(pf, partial);
                    // x value for this group (g < cols/8, so g*64 stays in
                    // the activation buffer).
                    let xo = f.vreg();
                    f.lsl(xo, g, 6);
                    let xv = f.vreg();
                    f.load_f64(xv, x, xo);
                    f.fmadd(acc, pf, xv, acc);
                });
                // Apply the block scale.
                let so = f.vreg();
                f.mov_imm(so, cols / 32);
                f.mul(so, so, row);
                f.lsl(so, so, 3);
                let sv = f.vreg();
                f.load_f64(sv, scales, so);
                f.fmul(acc, acc, sv);
                let yo = f.vreg();
                f.lsl(yo, row, 3);
                f.store_f64(acc, y, yo);
                f.fadd(check, check, acc);
            });
        });
        f.region_end();
        let code = f.vreg();
        f.f64_to_int(code, check);
        f.and(code, code, 0xFFFF_FFFFi64);
        f.halt_code(code);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn matmul_deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_matmul(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn inference_deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_inference(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn inference_instruction_overhead_is_tiny() {
        let count = |abi| {
            Interp::new(InterpConfig::default())
                .run(&lower(&build_inference(abi, Scale::Test)), &mut NullSink)
                .unwrap()
                .retired as f64
        };
        let ratio = count(Abi::Purecap) / count(Abi::Hybrid);
        assert!(ratio < 1.05, "llama inference purecap ratio {ratio}");
    }
}
