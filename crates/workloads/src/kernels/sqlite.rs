//! SQLite proxy — an embedded SQL engine driven by a speedtest1-style
//! query mix.
//!
//! The original's hot paths are the B-tree (page-structured storage,
//! binary search inside pages, child-pointer descents) and the VDBE
//! bytecode engine (a big dispatch loop over opcode registers). The paper
//! measures MI ≈ 0.82 (balanced), a 61% purecap slowdown with only a
//! small benchmark-ABI recovery (55%) — SQLite is a *single module*, so
//! PCC resteers are rare and the cost is almost entirely the capability
//! data traffic (load density 50%, store density 64%) and 4.3% L1I miss
//! rate from its large dispatch loop.
//!
//! The proxy: a fanout-16 B-tree of 4 KiB-ish pages with capability child
//! pointers, insert + point-lookup + range-scan phases, and a VDBE-like
//! register file of pointer slots updated per operation — all within the
//! main module.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

const FANOUT: u64 = 16;

/// Builds the SQLite proxy.
pub fn build(abi: Abi, scale: Scale) -> GenericProgram {
    let f_scale = scale.factor();
    let inserts: u64 = (500 * f_scale).min(20000);
    let lookups: u64 = inserts * 2;
    let updates: u64 = inserts;
    let scans: u64 = 16 * f_scale;

    let mut b = ProgramBuilder::new("SQLite", abi);

    // Page: { nkeys, is_leaf, keys[16], children[16]* }. In leaves the
    // child slots hold *row pointers* (SQLite cells reference overflow /
    // record blobs), so lookups end with a capability dereference.
    let mut fields = vec![Field::I64, Field::I64];
    fields.extend([Field::I64; FANOUT as usize]);
    fields.extend([Field::Ptr; FANOUT as usize]);
    fields.push(Field::Bytes(64));
    let page = Layout::new(abi, &fields);
    let pg_nkeys = page.off(0);
    let pg_leaf = page.off(1);
    let key_off = |k: u64| page.off(2 + k as usize);
    let child_off = |k: u64| page.off(2 + FANOUT as usize + k as usize);
    let payload_off = page.off(2 + 2 * FANOUT as usize);
    const ROW_SIZE: u64 = 160;

    let g_root = b.global_zero("btree_root", 16);
    // VDBE register file: 32 pointer slots.
    let g_regs = b.global_zero("vdbe_regs", 32 * abi.pointer_size());
    let ps = abi.pointer_size() as i64;

    // btree_update(key): descend to a leaf, free the slot's row and write
    // a fresh one (speedtest1's UPDATE traffic: allocator churn plus
    // capability stores into the page).
    let g_upd_root = g_root;

    // btree_lookup(key) -> payload word (descend through child pointers).
    let lookup = b.function("btree_lookup", 1, |f| {
        let key = f.arg(0);
        let rp = f.vreg();
        f.lea_global(rp, g_root, 0);
        let cur = f.vreg();
        f.load_ptr(cur, rp, 0);
        let found = f.vreg();
        f.mov_imm(found, 0);
        let done = f.label();
        let descend = f.here();
        let nk = f.vreg();
        f.load_int(nk, cur, pg_nkeys, MemSize::S8);
        // Linear-with-early-exit search inside the page (binary search in
        // miniature; data-dependent exits).
        let idx = f.vreg();
        f.mov_imm(idx, 0);
        let search_done = f.label();
        let sh = f.here();
        f.br(Cond::Geu, idx, nk, search_done);
        let ko = f.vreg();
        f.lsl(ko, idx, 3);
        let kp = f.vreg();
        f.ptr_add(kp, cur, ko);
        let kv = f.vreg();
        f.load_int(kv, kp, key_off(0), MemSize::S8);
        f.br(Cond::Geu, kv, key, search_done);
        f.add(idx, idx, 1);
        f.jump(sh);
        f.bind(search_done);
        // Clamp to the last child slot (a key above every separator).
        let in_range = f.label();
        f.br(Cond::Ltu, idx, FANOUT, in_range);
        f.mov_imm(idx, FANOUT - 1);
        f.bind(in_range);
        let leaf = f.vreg();
        f.load_int(leaf, cur, pg_leaf, MemSize::S8);
        let at_leaf = f.label();
        f.br(Cond::Eq, leaf, 1, at_leaf);
        // Interior: follow the child capability.
        let co = f.vreg();
        f.lsl(co, idx, if abi.is_capability() { 4 } else { 3 });
        let cp = f.vreg();
        f.ptr_add(cp, cur, co);
        f.load_ptr(cur, cp, child_off(0));
        f.jump(descend);
        f.bind(at_leaf);
        // Follow the slot's row pointer (a capability dereference) and
        // decode the record.
        let ro = f.vreg();
        f.lsl(ro, idx, if abi.is_capability() { 4 } else { 3 });
        let rp2 = f.vreg();
        f.ptr_add(rp2, cur, ro);
        let rowp = f.vreg();
        f.load_ptr(rowp, rp2, child_off(0));
        let ri = f.vreg();
        f.ptr_to_int(ri, rowp);
        f.br(Cond::Eq, ri, 0, done);
        f.load_int(found, rowp, 0, MemSize::S8);
        for w in [32i64, 64, 96, 128] {
            let v2 = f.vreg();
            f.load_int(v2, rowp, w, MemSize::S8);
            f.add(found, found, v2);
        }
        f.jump(done);
        f.bind(done);
        f.ret(Some(found));
    });

    // btree_insert(key, val): descend to a leaf; if full, "split" by
    // recycling slot 0 (bounded model of page splitting: allocates a
    // sibling and redistributes half the keys).
    let insert = b.function("btree_insert", 2, |f| {
        let key = f.arg(0);
        let val = f.arg(1);
        let rp = f.vreg();
        f.lea_global(rp, g_root, 0);
        let cur = f.vreg();
        f.load_ptr(cur, rp, 0);
        let done = f.label();
        let descend = f.here();
        let leaf = f.vreg();
        f.load_int(leaf, cur, pg_leaf, MemSize::S8);
        let at_leaf = f.label();
        f.br(Cond::Eq, leaf, 1, at_leaf);
        // Interior: pick child by key bits (keeps the tree balanced
        // without full split plumbing); each level consumes four bits.
        let sel = f.vreg();
        f.and(sel, key, FANOUT as i64 - 1);
        f.lsr(key, key, 4);
        let co = f.vreg();
        f.lsl(co, sel, if abi.is_capability() { 4 } else { 3 });
        let cp = f.vreg();
        f.ptr_add(cp, cur, co);
        f.load_ptr(cur, cp, child_off(0));
        f.jump(descend);
        f.bind(at_leaf);
        let nk = f.vreg();
        f.load_int(nk, cur, pg_nkeys, MemSize::S8);
        let room = f.label();
        f.br(Cond::Ltu, nk, FANOUT, room);
        // Page full: emulate a split's memory behaviour — allocate a
        // sibling, copy half the keys/payload, reset count.
        let sib = f.vreg();
        f.malloc(sib, page.size());
        let one = f.vreg();
        f.mov_imm(one, 1);
        f.store_int(one, sib, pg_leaf, MemSize::S8);
        for k in 0..FANOUT / 2 {
            let kv = f.vreg();
            f.load_int(kv, cur, key_off(FANOUT / 2 + k), MemSize::S8);
            f.store_int(kv, sib, key_off(k), MemSize::S8);
        }
        let half = f.vreg();
        f.mov_imm(half, FANOUT / 2);
        f.store_int(half, sib, pg_nkeys, MemSize::S8);
        f.store_int(half, cur, pg_nkeys, MemSize::S8);
        f.mov(nk, half);
        f.bind(room);
        let ko = f.vreg();
        f.lsl(ko, nk, 3);
        let kp = f.vreg();
        f.ptr_add(kp, cur, ko);
        f.store_int(key, kp, key_off(0), MemSize::S8);
        // Allocate and fill the row record; link it from the cell.
        let row_blob = f.vreg();
        f.malloc(row_blob, ROW_SIZE);
        f.store_int(val, row_blob, 0, MemSize::S8);
        f.store_int(key, row_blob, 8, MemSize::S8);
        for w in [32i64, 64, 96, 128] {
            f.store_int(val, row_blob, w, MemSize::S8);
        }
        let so = f.vreg();
        f.lsl(so, nk, if abi.is_capability() { 4 } else { 3 });
        let sp2 = f.vreg();
        f.ptr_add(sp2, cur, so);
        f.store_ptr(row_blob, sp2, child_off(0));
        f.add(nk, nk, 1);
        f.store_int(nk, cur, pg_nkeys, MemSize::S8);
        f.jump(done);
        f.bind(done);
        f.ret(None);
    });

    let update = b.function("btree_update", 2, |f| {
        let key = f.arg(0);
        let val = f.arg(1);
        let rp = f.vreg();
        f.lea_global(rp, g_upd_root, 0);
        let cur = f.vreg();
        f.load_ptr(cur, rp, 0);
        let done = f.label();
        let descend = f.here();
        let leaf = f.vreg();
        f.load_int(leaf, cur, pg_leaf, MemSize::S8);
        let at_leaf = f.label();
        f.br(Cond::Eq, leaf, 1, at_leaf);
        let sel = f.vreg();
        f.and(sel, key, FANOUT as i64 - 1);
        f.lsr(key, key, 4);
        let co = f.vreg();
        f.lsl(co, sel, if abi.is_capability() { 4 } else { 3 });
        let cp = f.vreg();
        f.ptr_add(cp, cur, co);
        f.load_ptr(cur, cp, child_off(0));
        f.jump(descend);
        f.bind(at_leaf);
        let nk = f.vreg();
        f.load_int(nk, cur, pg_nkeys, MemSize::S8);
        f.br(Cond::Eq, nk, 0, done);
        let slot = f.vreg();
        f.urem(slot, val, nk);
        let so = f.vreg();
        f.lsl(so, slot, if abi.is_capability() { 4 } else { 3 });
        let sp2 = f.vreg();
        f.ptr_add(sp2, cur, so);
        let old = f.vreg();
        f.load_ptr(old, sp2, child_off(0));
        let oi = f.vreg();
        f.ptr_to_int(oi, old);
        f.br(Cond::Eq, oi, 0, done);
        f.free(old);
        let fresh = f.vreg();
        f.malloc(fresh, ROW_SIZE);
        f.store_int(val, fresh, 0, MemSize::S8);
        for w in [32i64, 64, 96, 128] {
            f.store_int(val, fresh, w, MemSize::S8);
        }
        f.store_ptr(fresh, sp2, child_off(0));
        f.jump(done);
        f.bind(done);
        f.ret(None);
    });

    let r_build = b.region("build_tree");
    let r_insert = b.region("inserts");
    let r_lookup = b.region("lookups");
    let r_update = b.region("updates");
    let r_scan = b.region("scans");
    let main = b.function("main", 0, |f| {
        f.region(r_build);
        let rng = SimRng::init(f, 0x50_11_7e_57);
        let regs = f.vreg();
        f.lea_global(regs, g_regs, 0);

        // Build a three-level tree skeleton: root -> 16 interior -> 256
        // leaves (plus split siblings later) — a multi-megabyte page set
        // that outgrows the L2, like speedtest1's tables.
        let root = f.vreg();
        f.malloc(root, page.size());
        let zero = f.vreg();
        f.mov_imm(zero, 0);
        f.store_int(zero, root, pg_leaf, MemSize::S8);
        let full = f.vreg();
        f.mov_imm(full, FANOUT);
        f.store_int(full, root, pg_nkeys, MemSize::S8);
        for k in 0..FANOUT {
            let interior = f.vreg();
            f.malloc(interior, page.size());
            f.store_int(zero, interior, pg_leaf, MemSize::S8);
            f.store_int(full, interior, pg_nkeys, MemSize::S8);
            let sep = f.vreg();
            f.mov_imm(sep, k * 4096);
            f.store_int(sep, root, key_off(k), MemSize::S8);
            f.store_ptr(interior, root, child_off(k));
            for j in 0..FANOUT {
                let leafp = f.vreg();
                f.malloc(leafp, page.size());
                let one = f.vreg();
                f.mov_imm(one, 1);
                f.store_int(one, leafp, pg_leaf, MemSize::S8);
                let sep2 = f.vreg();
                f.mov_imm(sep2, k * 4096 + j * 256);
                f.store_int(sep2, interior, key_off(j), MemSize::S8);
                f.store_ptr(leafp, interior, child_off(j));
            }
        }
        let rp = f.vreg();
        f.lea_global(rp, g_root, 0);
        f.store_ptr(root, rp, 0);

        let checksum = f.vreg();
        f.mov_imm(checksum, 0);

        // Phase 1: inserts through a VDBE-ish loop (register slots are
        // pointers: the capability store density driver).
        f.region(r_insert);
        let n_ins = f.vreg();
        f.mov_imm(n_ins, inserts);
        f.for_loop(0, n_ins, 1, |f, i| {
            let key = rng.next_bits(f, 16);
            let val = f.vreg();
            f.eor(val, key, i);
            // VDBE: cursor register write + key register mixing.
            let slot = f.vreg();
            f.and(slot, i, 31);
            store_ptr_idx(f, abi, regs, slot, root);
            f.call(insert, &[key, val], None);
        });

        // Phase 2: point lookups.
        f.region(r_lookup);
        let n_look = f.vreg();
        f.mov_imm(n_look, lookups);
        f.for_loop(0, n_look, 1, |f, i| {
            let key = rng.next_bits(f, 16);
            let v = f.vreg();
            f.call(lookup, &[key], Some(v));
            f.add(checksum, checksum, v);
            let slot = f.vreg();
            f.and(slot, i, 31);
            let c = load_ptr_idx(f, abi, regs, slot);
            let ci = f.vreg();
            f.ptr_to_int(ci, c);
            f.eor(checksum, checksum, ci);
            f.and(checksum, checksum, 0xFFFF_FFFFi64);
        });

        // Phase 2.5: updates (free + re-allocate row records).
        f.region(r_update);
        let n_upd = f.vreg();
        f.mov_imm(n_upd, updates);
        f.for_loop(0, n_upd, 1, |f, i| {
            let key = rng.next_bits(f, 16);
            f.call(update, &[key, i], None);
        });

        // Phase 3: range scans — walk every child of the root and sweep
        // its payload (sequential page reads).
        f.region(r_scan);
        let n_scan = f.vreg();
        f.mov_imm(n_scan, scans);
        f.for_loop(0, n_scan, 1, |f, _| {
            let rp2 = f.vreg();
            f.lea_global(rp2, g_root, 0);
            let r = f.vreg();
            f.load_ptr(r, rp2, 0);
            for k in 0..FANOUT {
                let interior = f.vreg();
                f.load_ptr(interior, r, child_off(k));
                for j in 0..4u64 {
                    let child = f.vreg();
                    f.load_ptr(child, interior, child_off(j * 4));
                    let nk2 = f.vreg();
                    f.load_int(nk2, child, pg_nkeys, MemSize::S8);
                    f.add(checksum, checksum, nk2);
                    for w in 0..4i64 {
                        let v = f.vreg();
                        f.load_int(v, child, payload_off + w * 8, MemSize::S8);
                        f.add(checksum, checksum, v);
                    }
                }
            }
            f.and(checksum, checksum, 0xFFFF_FFFFi64);
        });

        f.region_end();
        f.halt_code(checksum);
    });

    b.set_entry(main);
    let _ = ps;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }
}
