//! `519.lbm_r` / `619.lbm_s` proxy — lattice-Boltzmann fluid simulation.
//!
//! The original streams a D3Q19 lattice: for every cell, read the
//! distribution values of the neighbouring cells, collide (floating-point
//! arithmetic), and write the new distributions — a pure streaming
//! workload with almost no pointers (capability load density 0.06% in
//! purecap!). The paper's surprising result is a small purecap *speed-up*
//! (−8%), which the authors attribute to layout side effects; our model
//! reproduces lbm's near-zero capability overhead but not the speed-up
//! itself (see EXPERIMENTS.md for the deviation analysis).

use crate::common::vfp_burst;
use crate::registry::Scale;
use cheri_isa::{Abi, GenericProgram, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    // Grid: nx columns x ny rows of Q distributions (f64).
    let nx: u64 = 64;
    let ny: u64 = (32 * f_scale * if speed { 2 } else { 1 }).min(4096);
    let q: u64 = 5; // D2Q5 flavour keeps event counts tractable
    let sweeps: u64 = if speed { 3 } else { 2 };
    let row_bytes = nx * q * 8;
    let grid_bytes = ny * row_bytes;

    let mut b = ProgramBuilder::new(if speed { "619.lbm_s" } else { "519.lbm_r" }, abi);
    let g_src = b.global_zero("grid_src", grid_bytes);
    let g_dst = b.global_zero("grid_dst", grid_bytes);

    let r_init = b.region("init_grid");
    let r_sweep = b.region("stream_collide");
    let main = b.function("main", 0, |f| {
        f.region(r_init);
        let src0 = f.vreg();
        f.lea_global(src0, g_src, 0);
        let dst0 = f.vreg();
        f.lea_global(dst0, g_dst, 0);

        // Initialise the source grid.
        let cells = f.vreg();
        f.mov_imm(cells, ny * nx * q);
        f.for_loop(0, cells, 1, |f, i| {
            let off = f.vreg();
            f.lsl(off, i, 3);
            let vi = f.vreg();
            f.and(vi, i, 31);
            let v = f.vreg();
            f.int_to_f64(v, vi);
            f.store_f64(v, src0, off);
        });

        f.region(r_sweep);
        let check = f.vreg();
        f.mov_f64(check, 0.0);
        let omega = f.vreg();
        f.mov_f64(omega, 0.6);
        let sweeps_r = f.vreg();
        f.mov_imm(sweeps_r, sweeps * 2);
        let rows_inner = f.vreg();
        f.mov_imm(rows_inner, ny - 2);
        let cols_inner = f.vreg();
        f.mov_imm(cols_inner, nx - 2);
        f.for_loop(0, sweeps_r, 1, |f, sweep| {
            // Ping-pong between the grids.
            let flip = f.vreg();
            f.and(flip, sweep, 1);
            let src = f.vreg();
            let dst = f.vreg();
            let use_a = f.label();
            let picked = f.label();
            f.br(cheri_isa::Cond::Eq, flip, 0, use_a);
            f.mov(src, dst0);
            f.mov(dst, src0);
            f.jump(picked);
            f.bind(use_a);
            f.mov(src, src0);
            f.mov(dst, dst0);
            f.bind(picked);

            f.for_loop(1, rows_inner, 1, |f, row| {
                let row_off = f.vreg();
                f.mov_imm(row_off, row_bytes);
                f.mul(row_off, row_off, row);
                f.for_loop(1, cols_inner, 1, |f, col| {
                    let cell = f.vreg();
                    f.mov_imm(cell, q * 8);
                    f.mul(cell, cell, col);
                    f.add(cell, cell, row_off);
                    // Gather the 5 neighbour distributions (C, N, S, E, W).
                    let acc = f.vreg();
                    f.mov_f64(acc, 0.0);
                    let offsets: [i64; 5] = [
                        0,
                        -(row_bytes as i64),
                        row_bytes as i64,
                        (q * 8) as i64,
                        -((q * 8) as i64),
                    ];
                    let mut dists = Vec::new();
                    for (k, noff) in offsets.iter().enumerate() {
                        let p = f.vreg();
                        f.ptr_add(p, src, cell);
                        let d = f.vreg();
                        f.load_f64(d, p, noff + (k as i64) * 8);
                        f.fadd(acc, acc, d);
                        dists.push(d);
                    }
                    // Collide: relax each distribution toward the mean.
                    let fifth = f.vreg();
                    f.mov_f64(fifth, 0.2);
                    let mean = f.vreg();
                    f.fmul(mean, acc, fifth);
                    let outp = f.vreg();
                    f.ptr_add(outp, dst, cell);
                    for (k, d) in dists.iter().enumerate() {
                        let delta = f.vreg();
                        f.fsub(delta, mean, *d);
                        let nd = f.vreg();
                        f.fmadd(nd, delta, omega, *d);
                        f.store_f64(nd, outp, (k as i64) * 8);
                    }
                    // Extra collision arithmetic to hit lbm's FLOP/byte.
                    vfp_burst(f, acc, mean, 1);
                    f.fadd(check, check, mean);
                });
            });
        });
        f.region_end();
        let code = f.vreg();
        f.f64_to_int(code, check);
        f.and(code, code, 0xFFFF_FFFFi64);
        f.halt_code(code);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn nearly_identical_instruction_count_across_abis() {
        // lbm has almost no pointers: purecap should retire barely more
        // instructions than hybrid (the paper's near-zero overhead).
        let count = |abi| {
            Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap()
                .retired as f64
        };
        let h = count(Abi::Hybrid);
        let p = count(Abi::Purecap);
        assert!(p / h < 1.10, "lbm purecap/hybrid inst ratio {}", p / h);
    }
}
