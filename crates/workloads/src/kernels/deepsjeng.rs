//! `531.deepsjeng_r` / `631.deepsjeng_s` proxy — alpha-beta game-tree
//! search with a transposition table.
//!
//! The original is a chess engine: recursive alpha-beta over an in-cache
//! board, probing a large transposition table, with data-dependent
//! branches (branch MR ≈ 3%). The paper classifies it compute-intensive
//! (MI ≈ 0.49) with a modest purecap slowdown (17%) that comes mostly
//! from the instruction-mix shift and stack/pointer traffic rather than
//! cache pressure — L2 miss rates actually *drop* under purecap.
//!
//! The proxy: a recursive negamax over a synthetic move generator (integer
//! mixing of the position key), a multi-megabyte transposition table of
//! 16-byte entries (key + score), a piece list of pointers consulted
//! during evaluation (the source of deepsjeng's ~28% capability load
//! density), and make/undo updates to a shared board array.

use crate::common::{Field, Layout};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    // Transposition table: entries of {key, score} = 16 bytes.
    let tt_entries: u64 = match scale {
        Scale::Test => 1 << 12,
        Scale::Small => 1 << 16,
        Scale::Default => 1 << 18, // 4 MiB
    };
    let depth: u64 = if speed { 6 } else { 5 };
    let width: u64 = 4; // moves tried per node
                        // Speed runs search twice the total nodes of rate runs.
    let roots: u64 = if speed { f_scale.max(1) } else { f_scale * 2 };

    let mut b = ProgramBuilder::new(
        if speed {
            "631.deepsjeng_s"
        } else {
            "531.deepsjeng_r"
        },
        abi,
    );

    let g_board = b.global_zero("board", 64 * 8);
    let g_tt = b.global_zero("tt_holder", 16);
    let g_pieces = b.global_zero("piece_list", 16);
    let piece = Layout::new(abi, &[Field::I64, Field::I64, Field::Ptr]);
    let (pc_val, pc_sq, _pc_next) = (piece.off(0), piece.off(1), piece.off(2));

    // evaluate(key) -> score: board reads + piece-list pointer walk.
    let evaluate = b.function("evaluate", 1, |f| {
        let key = f.arg(0);
        let board = f.vreg();
        f.lea_global(board, g_board, 0);
        let score = f.vreg();
        f.mov_imm(score, 0);
        // Sample 8 squares derived from the key.
        let k = f.vreg();
        f.mov(k, key);
        for _ in 0..8 {
            f.mul(k, k, 0x2545F4914F6CDD1Di64);
            f.lsr(k, k, 17);
            let sq = f.vreg();
            f.and(sq, k, 63);
            f.lsl(sq, sq, 3);
            let v = f.vreg();
            f.load_int(v, board, sq, MemSize::S8);
            f.add(score, score, v);
        }
        // Walk four piece nodes (capability loads under purecap).
        let lp = f.vreg();
        f.lea_global(lp, g_pieces, 0);
        let cur = f.vreg();
        f.load_ptr(cur, lp, 0);
        for _ in 0..4 {
            let v = f.vreg();
            f.load_int(v, cur, pc_val, MemSize::S8);
            f.add(score, score, v);
            let s = f.vreg();
            f.load_int(s, cur, pc_sq, MemSize::S8);
            f.eor(score, score, s);
            f.load_ptr(cur, cur, piece.off(2));
        }
        f.and(score, score, 0xFFFF);
        f.ret(Some(score));
    });

    // search(key, depth, alpha) -> score: negamax with TT probing.
    let search = b.declare("search", 3);
    b.define(search, |f| {
        let key = f.arg(0);
        let d = f.arg(1);
        let alpha = f.arg(2);
        let leaf = f.label();
        f.br(Cond::Eq, d, 0, leaf);

        // TT probe.
        let ttp = f.vreg();
        f.lea_global(ttp, g_tt, 0);
        let tt = f.vreg();
        f.load_ptr(tt, ttp, 0);
        let h = f.vreg();
        f.mul(h, key, 0x9E3779B97F4A7C15u64 as i64);
        f.lsr(h, h, 40);
        let idx = f.vreg();
        f.mov_imm(idx, tt_entries - 1);
        f.and(h, h, idx);
        f.lsl(h, h, 4);
        let entry = f.vreg();
        f.ptr_add(entry, tt, h);
        let stored_key = f.vreg();
        f.load_int(stored_key, entry, 0, MemSize::S8);
        let tt_miss = f.label();
        f.br(Cond::Ne, stored_key, key, tt_miss);
        let cached = f.vreg();
        f.load_int(cached, entry, 8, MemSize::S8);
        f.ret(Some(cached));
        f.bind(tt_miss);

        // Try `width` moves.
        let best = f.vreg();
        f.mov_imm(best, 0);
        let a = f.vreg();
        f.mov(a, alpha);
        let nd = f.vreg();
        f.sub(nd, d, 1);
        let board = f.vreg();
        f.lea_global(board, g_board, 0);
        for m in 0..width {
            // Child key: mix the position with the move number.
            let ck = f.vreg();
            f.mov_imm(ck, 0x8F5A_3C21 + m * 0x1357);
            f.eor(ck, ck, key);
            f.mul(ck, ck, 0xD1B54A32D192ED03u64 as i64);
            f.lsr(ck, ck, 3);
            // Make: poke a square.
            let sq = f.vreg();
            f.and(sq, ck, 63);
            f.lsl(sq, sq, 3);
            let old = f.vreg();
            f.load_int(old, board, sq, MemSize::S8);
            let nv = f.vreg();
            f.add(nv, old, 1);
            f.store_int(nv, board, sq, MemSize::S8);
            // Recurse.
            let na = f.vreg();
            f.sub(na, a, 1);
            let child = f.vreg();
            f.call(search, &[ck, nd, na], Some(child));
            // Undo.
            f.store_int(old, board, sq, MemSize::S8);
            // best = max(best, -childish): emulate negamax flavor with
            // data-dependent comparison (the 3% misprediction source).
            let skip = f.label();
            f.br(Cond::Leu, child, best, skip);
            f.mov(best, child);
            f.bind(skip);
            // Alpha-beta cutoff.
            let cont = f.label();
            f.br(Cond::Leu, best, a, cont);
            f.add(a, best, 0);
            f.bind(cont);
        }
        // TT store.
        f.store_int(key, entry, 0, MemSize::S8);
        f.store_int(best, entry, 8, MemSize::S8);
        f.ret(Some(best));

        f.bind(leaf);
        let sc = f.vreg();
        f.call(evaluate, &[key], Some(sc));
        f.ret(Some(sc));
    });

    let r_setup = b.region("setup");
    let r_search = b.region("search");
    let main = b.function("main", 0, |f| {
        // Allocate the TT and the piece ring.
        f.region(r_setup);
        let tt = f.vreg();
        f.malloc(tt, tt_entries * 16);
        let ttp = f.vreg();
        f.lea_global(ttp, g_tt, 0);
        f.store_ptr(tt, ttp, 0);
        // Four piece nodes in a ring.
        let first = f.vreg();
        f.malloc(first, piece.size());
        let prev = f.vreg();
        f.mov(prev, first);
        for i in 1..4u64 {
            let p = f.vreg();
            f.malloc(p, piece.size());
            let v = f.vreg();
            f.mov_imm(v, i * 31);
            f.store_int(v, p, pc_val, MemSize::S8);
            f.store_int(v, p, pc_sq, MemSize::S8);
            f.store_ptr(p, prev, piece.off(2));
            f.mov(prev, p);
        }
        f.store_ptr(first, prev, piece.off(2));
        let lp = f.vreg();
        f.lea_global(lp, g_pieces, 0);
        f.store_ptr(first, lp, 0);
        // Board init.
        let board = f.vreg();
        f.lea_global(board, g_board, 0);
        let sq64 = f.vreg();
        f.mov_imm(sq64, 64);
        f.for_loop(0, sq64, 1, |f, i| {
            let v = f.vreg();
            f.mul(v, i, 73);
            let off = f.vreg();
            f.lsl(off, i, 3);
            f.store_int(v, board, off, MemSize::S8);
        });
        // Iterative deepening over several root positions.
        f.region(r_search);
        let total = f.vreg();
        f.mov_imm(total, 0);
        let nroots = f.vreg();
        f.mov_imm(nroots, roots);
        f.for_loop(0, nroots, 1, |f, r| {
            let key = f.vreg();
            f.mov_imm(key, 0xC0FFEE);
            f.eor(key, key, r);
            let dreg = f.vreg();
            f.mov_imm(dreg, depth);
            let a0 = f.vreg();
            f.mov_imm(a0, 0);
            let sc = f.vreg();
            f.call(search, &[key, dreg, a0], Some(sc));
            f.add(total, total, sc);
        });
        f.region_end();
        f.halt_code(total);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }
}
