//! `alloc_stress` — allocation-churn microbenchmark for the revocation
//! subsystem.
//!
//! Not a paper workload: a synthetic stressor whose entire behaviour is
//! heap churn, built to expose the allocator-strategy axis that the
//! SPEC proxies only brush against. Two phases alternate:
//!
//! 1. **Binary-tree build/teardown** (the classic `binary-trees`
//!    shootout shape): a full tree of pointer-linked nodes is built by
//!    recursion, summed, and torn down post-order — every node a
//!    `malloc` that later becomes quarantine occupancy under a
//!    quarantining strategy.
//! 2. **Fragmenting malloc/free mix**: a slot table is filled and
//!    drained in PRNG order with size-varied blocks, so the free list
//!    fragments across size classes and frees arrive interleaved with
//!    allocations rather than in convenient batches.
//!
//! The architectural checksum folds only *stored values* (never
//! addresses), so the exit code is identical across ABIs even though
//! layouts, padding, and allocator placement all differ.

use crate::common::{load_ptr_idx, store_ptr_idx, Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

struct Params {
    rounds: u64,
    depth: u64,
    churn: u64,
    slots: u64,
}

fn params(scale: Scale) -> Params {
    let f = scale.factor();
    Params {
        rounds: 2 * f,
        depth: 6,
        churn: 1200 * f,
        slots: 128,
    }
}

/// Builds the allocation-churn stressor.
pub fn build(abi: Abi, scale: Scale) -> GenericProgram {
    let p = params(scale);
    let mut b = ProgramBuilder::new("alloc_stress", abi);

    // Tree node: { value, left*, right* } — 24 B hybrid, 48 B purecap.
    let node = Layout::new(abi, &[Field::I64, Field::Ptr, Field::Ptr]);
    let (n_val, n_left, n_right) = (node.off(0), node.off(1), node.off(2));
    // Churn block header: { size, value } then payload.
    let blk = Layout::new(abi, &[Field::I64, Field::I64]);
    let (k_size, k_val) = (blk.off(0), blk.off(1));

    // tree_build(depth, tag) -> node* — a full binary tree, every node
    // tagged with its heap-order index so the sum is layout-independent.
    let tree_build = b.declare("tree_build", 2);
    b.define(tree_build, |f| {
        let depth = f.arg(0);
        let tag = f.arg(1);
        let leaf = f.label();
        f.br(Cond::Eq, depth, 0, leaf);
        let nd = f.vreg();
        f.malloc(nd, node.size());
        f.store_int(tag, nd, n_val, MemSize::S8);
        let d1 = f.vreg();
        f.sub(d1, depth, 1);
        let lt = f.vreg();
        f.lsl(lt, tag, 1);
        let l = f.vreg();
        f.call(tree_build, &[d1, lt], Some(l));
        f.store_ptr(l, nd, n_left);
        let rt = f.vreg();
        f.add(rt, lt, 1);
        let r = f.vreg();
        f.call(tree_build, &[d1, rt], Some(r));
        f.store_ptr(r, nd, n_right);
        f.ret(Some(nd));
        f.bind(leaf);
        let nil = f.vreg();
        f.mov_null_ptr(nil);
        f.ret(Some(nil));
    });

    // tree_sum(node*) -> sum of tags (pointer-chasing reduction).
    let tree_sum = b.declare("tree_sum", 1);
    b.define(tree_sum, |f| {
        let nd = f.arg(0);
        let ni = f.vreg();
        f.ptr_to_int(ni, nd);
        let empty = f.label();
        f.br(Cond::Eq, ni, 0, empty);
        let acc = f.vreg();
        f.load_int(acc, nd, n_val, MemSize::S8);
        let l = f.vreg();
        f.load_ptr(l, nd, n_left);
        let ls = f.vreg();
        f.call(tree_sum, &[l], Some(ls));
        f.add(acc, acc, ls);
        let r = f.vreg();
        f.load_ptr(r, nd, n_right);
        let rs = f.vreg();
        f.call(tree_sum, &[r], Some(rs));
        f.add(acc, acc, rs);
        f.ret(Some(acc));
        f.bind(empty);
        let zero = f.vreg();
        f.mov_imm(zero, 0);
        f.ret(Some(zero));
    });

    // tree_free(node*) — post-order teardown; the burst of frees that
    // fills a quarantine fast.
    let tree_free = b.declare("tree_free", 1);
    b.define(tree_free, |f| {
        let nd = f.arg(0);
        let ni = f.vreg();
        f.ptr_to_int(ni, nd);
        let empty = f.label();
        f.br(Cond::Eq, ni, 0, empty);
        let l = f.vreg();
        f.load_ptr(l, nd, n_left);
        f.call(tree_free, &[l], None);
        let r = f.vreg();
        f.load_ptr(r, nd, n_right);
        f.call(tree_free, &[r], None);
        f.free(nd);
        f.bind(empty);
        f.ret(None);
    });

    let r_tree = b.region("tree_churn");
    let r_mix = b.region("fragment_mix");
    let main = b.function("main", 0, |f| {
        let checksum = f.vreg();
        f.mov_imm(checksum, 0);

        // Phase 1: build / sum / tear down a full tree per round.
        f.region(r_tree);
        let rounds = f.vreg();
        f.mov_imm(rounds, p.rounds);
        f.for_loop(0, rounds, 1, |f, round| {
            let depth = f.vreg();
            f.mov_imm(depth, p.depth);
            let one = f.vreg();
            f.mov_imm(one, 1);
            let t = f.vreg();
            f.call(tree_build, &[depth, one], Some(t));
            let s = f.vreg();
            f.call(tree_sum, &[t], Some(s));
            f.add(s, s, round);
            f.eor(checksum, checksum, s);
            f.call(tree_free, &[t], None);
        });

        // Phase 2: fragmenting malloc/free mix over a slot table.
        f.region(r_mix);
        let slab = f.vreg();
        f.malloc(slab, p.slots * abi.pointer_size());
        let nil0 = f.vreg();
        f.mov_null_ptr(nil0);
        let nslots = f.vreg();
        f.mov_imm(nslots, p.slots);
        f.for_loop(0, nslots, 1, |f, i| {
            store_ptr_idx(f, abi, slab, i, nil0);
        });

        let rng = SimRng::init(f, 0x005e_eda1_10c5_7e55);
        let iters = f.vreg();
        f.mov_imm(iters, p.churn);
        f.for_loop(0, iters, 1, |f, i| {
            let idx = rng.next(f);
            let m = f.vreg();
            f.mov_imm(m, p.slots - 1);
            f.and(idx, idx, m);
            let cur = load_ptr_idx(f, abi, slab, idx);
            let ci = f.vreg();
            f.ptr_to_int(ci, cur);
            let occupied = f.label();
            let done = f.label();
            f.br(Cond::Ne, ci, 0, occupied);
            // Empty slot: allocate a size-varied block (16..=512 B in
            // 16 B steps — spans several size classes, so the free list
            // fragments) and record a layout-independent value.
            let sz = rng.next(f);
            let szm = f.vreg();
            f.mov_imm(szm, 0x1F0);
            f.and(sz, sz, szm);
            f.add(sz, sz, blk.size().max(16) as i64);
            let np = f.vreg();
            f.malloc(np, sz);
            f.store_int(sz, np, k_size, MemSize::S8);
            let v = f.vreg();
            f.eor(v, sz, i);
            f.store_int(v, np, k_val, MemSize::S8);
            store_ptr_idx(f, abi, slab, idx, np);
            f.jump(done);
            // Occupied slot: fold its value into the checksum and free
            // it — frees arrive interleaved with allocations.
            f.bind(occupied);
            let v2 = f.vreg();
            f.load_int(v2, cur, k_val, MemSize::S8);
            f.add(checksum, checksum, v2);
            f.free(cur);
            let nil = f.vreg();
            f.mov_null_ptr(nil);
            store_ptr_idx(f, abi, slab, idx, nil);
            f.bind(done);
        });

        // Drain surviving slots so every allocation is freed.
        f.for_loop(0, nslots, 1, |f, i| {
            let cur = load_ptr_idx(f, abi, slab, i);
            let ci = f.vreg();
            f.ptr_to_int(ci, cur);
            let skip = f.label();
            f.br(Cond::Eq, ci, 0, skip);
            let v = f.vreg();
            f.load_int(v, cur, k_val, MemSize::S8);
            f.eor(checksum, checksum, v);
            f.free(cur);
            f.bind(skip);
        });
        f.free(slab);
        f.region_end();

        f.and(checksum, checksum, 0xFFFF_FFFFi64);
        f.halt_code(checksum);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            assert_eq!(res.heap_stats.live_bytes, 0);
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn churn_volume_scales() {
        let prog = lower(&build(Abi::Purecap, Scale::Test));
        let res = Interp::new(InterpConfig::default())
            .run(&prog, &mut NullSink)
            .unwrap();
        // 2 rounds x 63 tree nodes plus the slot mix: hundreds of
        // allocations even at test scale, and every one freed.
        assert!(res.heap_stats.total_allocs > 500);
        assert_eq!(res.heap_stats.total_allocs, res.heap_stats.total_frees);
    }
}
