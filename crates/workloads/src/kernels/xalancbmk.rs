//! `523.xalancbmk_r` / `623.xalancbmk_s` proxy — XSLT transformation of an
//! XML document tree.
//!
//! The original drives the Xerces-C DOM through virtual method calls for
//! every node of a large document. The paper's headline observations:
//! the largest SPEC purecap slowdown (103%), **more than half of which is
//! PCC-resteer cost** (the benchmark ABI cuts it to 45%), a very high
//! capability load density (81%), a low branch misprediction rate
//! (≈0.4%), and ~10× growth in DTLB walks.
//!
//! The proxy: a pointer-linked DOM (first-child / next-sibling / attribute
//! pointers, kind tag), a **per-node virtual call into a separate
//! `xerces` module** through a handler table (cross-module indirect call =
//! PCC-bound change under purecap), attribute-string scanning, and an
//! output buffer append. Traversal order is structural, so branches
//! predict well.

use crate::common::{Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    let nodes: u64 = (2048 * f_scale * if speed { 2 } else { 1 }).min(131072);
    let passes: u64 = if speed { 3 } else { 2 };
    let fanout: u64 = 4;

    let mut b = ProgramBuilder::new(
        if speed {
            "623.xalancbmk_s"
        } else {
            "523.xalancbmk_r"
        },
        abi,
    );
    let xerces = b.module("xerces");

    // DOM node: { kind, first_child*, next_sibling*, attr*, value }
    let node = Layout::new(
        abi,
        &[Field::I64, Field::Ptr, Field::Ptr, Field::Ptr, Field::I64],
    );
    let (n_kind, n_child, n_sib, n_attr, n_val) = (
        node.off(0),
        node.off(1),
        node.off(2),
        node.off(3),
        node.off(4),
    );
    let ps = abi.pointer_size();

    let g_out = b.global_zero("output_buffer", 1 << 16);
    let g_outpos = b.global_zero("output_pos", 8);

    // --- xerces handlers: one per element kind, called virtually ----------
    let mut handlers = Vec::new();
    for kind in 0..4u64 {
        let h = b.function_in(xerces, format!("handle_kind{kind}"), 1, |f| {
            let nd = f.arg(0);
            // Scan the attribute string (a heap blob; doubled capability
            // pressure under purecap comes from the attr pointer + the
            // output-buffer bookkeeping).
            let attr = f.vreg();
            f.load_ptr(attr, nd, n_attr);
            let acc = f.vreg();
            f.mov_imm(acc, kind);
            for i in 0..6 {
                let c = f.vreg();
                f.load_int(c, attr, i * 8, MemSize::S8);
                f.eor(acc, acc, c);
                f.lsr(acc, acc, 3);
            }
            // Fold the node value and append to the output buffer.
            let v = f.vreg();
            f.load_int(v, nd, n_val, MemSize::S8);
            f.add(acc, acc, v);
            let out = f.vreg();
            f.lea_global(out, g_out, 0);
            let posp = f.vreg();
            f.lea_global(posp, g_outpos, 0);
            let pos = f.vreg();
            f.load_int(pos, posp, 0, MemSize::S8);
            let slot = f.vreg();
            f.ptr_add(slot, out, pos);
            f.store_int(acc, slot, 0, MemSize::S8);
            f.add(pos, pos, 8);
            let mask = f.vreg();
            f.mov_imm(mask, (1 << 16) - 1);
            f.and(pos, pos, mask);
            f.store_int(pos, posp, 0, MemSize::S8);
            f.ret(Some(acc));
        });
        handlers.push(h);
    }
    let handler_table = b.func_table("element_handlers", &handlers);

    // --- recursive transform over the DOM ---------------------------------
    let visit = b.declare("visit", 1);
    b.define(visit, |f| {
        let nd = f.arg(0);
        let kind = f.vreg();
        f.load_int(kind, nd, n_kind, MemSize::S8);
        // Virtual dispatch: handler = table[kind & 3] — a cross-module
        // indirect call (the xalancbmk PCC storm).
        let tbl = f.vreg();
        f.lea_global(tbl, handler_table, 0);
        let off = f.vreg();
        f.and(off, kind, 3);
        f.lsl(off, off, if abi.is_capability() { 4 } else { 3 });
        let slot = f.vreg();
        f.ptr_add(slot, tbl, off);
        let h = f.vreg();
        f.load_ptr(h, slot, 0);
        let sum = f.vreg();
        f.call_indirect(h, &[nd], Some(sum));
        // Recurse over children via first-child/next-sibling chasing.
        let child = f.vreg();
        f.load_ptr(child, nd, n_child);
        let has = f.vreg();
        let done = f.label();
        let head = f.here();
        f.ptr_to_int(has, child);
        f.br(Cond::Eq, has, 0, done);
        let csum = f.vreg();
        f.call(visit, &[child], Some(csum));
        f.add(sum, sum, csum);
        f.load_ptr(child, child, n_sib);
        f.jump(head);
        f.bind(done);
        f.ret(Some(sum));
    });

    // --- main: build the document, then transform it `passes` times -------
    let main = b.function("main", 0, |f| {
        let rng = SimRng::init(f, 0xD0C0_93A7_11CE_5EED);
        let n = f.vreg();
        f.mov_imm(n, nodes);
        // Node table for linking (freed before the transform).
        let tab = f.vreg();
        f.malloc(tab, nodes * ps);
        f.for_loop(0, n, 1, |f, i| {
            let nd = f.vreg();
            f.malloc(nd, node.size());
            // Kinds are heavily skewed (real XML is mostly elements): 1/16
            // of nodes pick a random non-default handler.
            let sel = rng.next_bits(f, 4);
            let k = f.vreg();
            f.mov_imm(k, 0);
            let common = f.label();
            f.br(Cond::Ne, sel, 15, common);
            let rare = rng.next_bits(f, 2);
            f.mov(k, rare);
            f.bind(common);
            f.store_int(k, nd, n_kind, MemSize::S8);
            f.store_int(i, nd, n_val, MemSize::S8);
            // Attribute blob (string data).
            let attr = f.vreg();
            f.malloc(attr, 72);
            let seed = rng.next(f);
            for w in 0..8i64 {
                if w % 2 == 0 {
                    f.store_int(seed, attr, w * 8, MemSize::S8);
                } else {
                    f.store_int(i, attr, w * 8, MemSize::S8);
                }
            }
            f.store_ptr(attr, nd, n_attr);
            // Null child/sibling for now (integer 0 sentinel via ptr slot
            // left zeroed by malloc'd... heap memory is zero-filled).
            let idx = f.vreg();
            f.lsl(idx, i, if abi.is_capability() { 4 } else { 3 });
            let slot = f.vreg();
            f.ptr_add(slot, tab, idx);
            f.store_ptr(nd, slot, 0);
        });
        // Link node i as a child of node (i-1)/fanout.
        f.for_loop(1, n, 1, |f, i| {
            let parent_i = f.vreg();
            f.sub(parent_i, i, 1);
            f.lsr(parent_i, parent_i, fanout.trailing_zeros() as i64);
            let sh = if abi.is_capability() { 4 } else { 3 };
            let poff = f.vreg();
            f.lsl(poff, parent_i, sh);
            let pslot = f.vreg();
            f.ptr_add(pslot, tab, poff);
            let parent = f.vreg();
            f.load_ptr(parent, pslot, 0);
            let coff = f.vreg();
            f.lsl(coff, i, sh);
            let cslot = f.vreg();
            f.ptr_add(cslot, tab, coff);
            let child = f.vreg();
            f.load_ptr(child, cslot, 0);
            // child.next_sibling = parent.first_child; parent.first_child = child
            let old = f.vreg();
            f.load_ptr(old, parent, n_child);
            // A zeroed pointer slot loads as an untagged null capability /
            // zero address; storing it back is fine.
            f.store_ptr(old, child, n_sib);
            f.store_ptr(child, parent, n_child);
        });
        // Transform passes.
        let root = f.vreg();
        f.load_ptr(root, tab, 0);
        let total = f.vreg();
        f.mov_imm(total, 0);
        let reps = f.vreg();
        f.mov_imm(reps, passes);
        f.for_loop(0, reps, 1, |f, _| {
            let s = f.vreg();
            f.call(visit, &[root], Some(s));
            f.add(total, total, s);
        });
        f.halt_code(total);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn same_checksum_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let gp = build_rate(abi, Scale::Test);
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&gp), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn purecap_has_many_pcc_changes() {
        use cheri_isa::{EventSink, RetiredEvent, RetiredInfo};
        #[derive(Default)]
        struct PccCount(u64);
        impl EventSink for PccCount {
            fn retire(&mut self, ev: RetiredEvent) {
                if matches!(
                    ev.info,
                    RetiredInfo::Branch {
                        pcc_change: true,
                        ..
                    }
                ) {
                    self.0 += 1;
                }
            }
        }
        let gp = build_rate(Abi::Purecap, Scale::Test);
        let mut sink = PccCount::default();
        Interp::new(InterpConfig::default())
            .run(&lower(&gp), &mut sink)
            .unwrap();
        // Every node visit makes a cross-module virtual call + return.
        assert!(sink.0 > 4000, "expected a PCC storm, got {}", sink.0);
    }
}
