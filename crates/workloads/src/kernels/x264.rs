//! `525.x264_r` / `625.x264_s` proxy — video encoding (motion estimation).
//!
//! The original spends most of its time in SAD (sum of absolute
//! differences) kernels over 8-bit pixel blocks — SIMD-heavy, strided
//! streaming over frame buffers, with a diamond motion search whose
//! branches depend on pixel data. x264 appears in the paper's Table 5/6
//! compilation status (both rate and speed variants compiled and ran);
//! Table 2 does not list an MI value for it.
//!
//! The proxy: reference + current frame byte buffers, 16×16 macroblock
//! SAD via packed 8-byte [`VSad`](cheri_isa::VecKind::VSad) operations,
//! a small candidate motion search per block, and a half-pel averaging
//! pass.

use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder, VecKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

fn frame(w: usize, h: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Smooth-ish content: gradients plus noise, so SADs vary.
    let mut f = vec![0u8; w * h];
    for y in 0..h {
        for x in 0..w {
            let v = (x / 4 + y / 4) as u8;
            f[y * w + x] = v.wrapping_add(rng.gen::<u8>() & 0x1f);
        }
    }
    f
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    let width: usize = 256;
    let height: usize = (32 * f_scale as usize * if speed { 2 } else { 1 })
        .clamp(64, if speed { 2048 } else { 1024 });
    let frames: u64 = 2;
    let block: i64 = 16;

    let mut b = ProgramBuilder::new(if speed { "625.x264_s" } else { "525.x264_r" }, abi);
    let g_ref = b.global_const("ref_frame", frame(width, height, 1));
    let g_cur = b.global_const("cur_frame", frame(width, height, 2));
    let g_mv = b.global_zero("motion_vectors", (width / 16 * height / 16) as u64 * 8);
    let g_half = b.global_zero("halfpel", (width * height) as u64);

    // SAD of one 16x16 block at (cur + coff) vs (ref + roff).
    let sad16 = b.function("sad16", 2, |f| {
        let coff = f.arg(0);
        let roff = f.arg(1);
        let cur = f.vreg();
        f.lea_global(cur, g_cur, 0);
        let rf = f.vreg();
        f.lea_global(rf, g_ref, 0);
        let acc = f.vreg();
        f.mov_imm(acc, 0);
        for row in 0..block {
            let line = row * width as i64;
            for chunk in 0..2i64 {
                let o = line + chunk * 8;
                let c8 = f.vreg();
                let a = f.vreg();
                f.add(a, coff, o);
                f.load_int(c8, cur, a, MemSize::S8);
                let r8 = f.vreg();
                let d = f.vreg();
                f.add(d, roff, o);
                f.load_int(r8, rf, d, MemSize::S8);
                // Packed SAD over the 8 bytes (ASE_SPEC).
                f.vec_op(VecKind::VSad, acc, c8, r8);
            }
        }
        f.ret(Some(acc));
    });

    let main = b.function("main", 0, |f| {
        let mv = f.vreg();
        f.lea_global(mv, g_mv, 0);
        let half = f.vreg();
        f.lea_global(half, g_half, 0);
        let blocks_x = (width / 16) as u64;
        let blocks_y = (height / 16) as u64 - 1;
        let frames_r = f.vreg();
        f.mov_imm(frames_r, frames);
        let checksum = f.vreg();
        f.mov_imm(checksum, 0);

        f.for_loop(0, frames_r, 1, |f, _| {
            // Interior block rows only: the +-8-pixel diamond must stay in
            // the frame (a bounds fault under purecap otherwise — the model
            // enforcing exactly what CHERI enforces).
            let by_max = f.vreg();
            f.mov_imm(by_max, blocks_y.saturating_sub(1).max(1));
            f.for_loop(0, by_max, 1, |f, by| {
                let bx_max = f.vreg();
                f.mov_imm(bx_max, blocks_x - 2);
                f.for_loop(0, bx_max, 1, |f, bx| {
                    // Block origin.
                    let base = f.vreg();
                    f.mov_imm(base, 16 * width as u64);
                    f.mul(base, base, by);
                    // Skip the first row band (room for dy = -8).
                    f.add(base, base, (16 * width) as i64);
                    let xoff = f.vreg();
                    f.lsl(xoff, bx, 4);
                    f.add(base, base, xoff);
                    // Skip the first column block (room for dx = -8).
                    f.add(base, base, 16);
                    // Diamond search over 5 candidates.
                    let best = f.vreg();
                    f.mov_imm(best, u64::MAX >> 1);
                    let best_mv = f.vreg();
                    f.mov_imm(best_mv, 0);
                    for (k, (dx, dy)) in [(0i64, 0i64), (8, 0), (-8, 0), (0, 8), (0, -8)]
                        .iter()
                        .enumerate()
                    {
                        let cand = f.vreg();
                        let disp = dy * width as i64 + dx;
                        f.add(cand, base, disp);
                        let s = f.vreg();
                        f.call(sad16, &[base, cand], Some(s));
                        let skip = f.label();
                        f.br(Cond::Geu, s, best, skip);
                        f.mov(best, s);
                        f.mov_imm(best_mv, k as u64);
                        f.bind(skip);
                    }
                    // Store the motion vector.
                    let bi = f.vreg();
                    f.mov_imm(bi, blocks_x);
                    f.madd(bi, by, bi, bx);
                    let bo = f.vreg();
                    f.lsl(bo, bi, 3);
                    f.store_int(best_mv, mv, bo, MemSize::S8);
                    f.add(checksum, checksum, best);
                });
            });
            // Half-pel averaging pass over one row band per frame
            // (strided byte loads + stores).
            let cur = f.vreg();
            f.lea_global(cur, g_cur, 0);
            let n = f.vreg();
            f.mov_imm(n, (width as u64) * 8);
            f.for_loop(0, n, 1, |f, i| {
                let a = f.vreg();
                f.load_int(a, cur, i, MemSize::S1);
                let i2 = f.vreg();
                f.add(i2, i, 1);
                let c = f.vreg();
                f.load_int(c, cur, i2, MemSize::S1);
                f.add(a, a, c);
                f.lsr(a, a, 1);
                f.store_int(a, half, i, MemSize::S1);
            });
        });
        f.and(checksum, checksum, 0xFFFF_FFFFi64);
        f.halt_code(checksum);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
        assert_ne!(codes[0], 0);
    }
}
