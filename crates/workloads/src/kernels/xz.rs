//! `557.xz_r` / `657.xz_s` proxy — LZMA-style data compression.
//!
//! The original's hot loops are the LZ77 match finder (hash-chain probing
//! with data-dependent chain walks and byte-compare loops — the suite's
//! second-highest branch misprediction rate, ≈5.5%) and the range coder
//! (integer arithmetic). MI ≈ 0.51, purecap slowdown only ≈6.5%: the
//! window and hash tables are integer arrays, so capability density stays
//! low (~15%).
//!
//! The proxy: a pseudo-compressible input buffer (generated with a seeded
//! host PRNG), hash-head + previous-chain match finding with bounded chain
//! walks, byte-granule match-length comparison, and a range-coder-like
//! integer mixing stage per literal/match decision.

use crate::registry::Scale;
use cheri_isa::{Abi, Cond, GenericProgram, MemSize, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, false)
}

/// Builds the speed-sized proxy.
pub fn build_speed(abi: Abi, scale: Scale) -> GenericProgram {
    build(abi, scale, true)
}

/// Generates a compressible byte stream: random phrases repeated with
/// random gaps, like the mixed binary/text inputs of the SPEC xz workload.
fn input_buffer(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    let mut phrases: Vec<Vec<u8>> = (0..64)
        .map(|_| {
            let l = rng.gen_range(4..24);
            (0..l).map(|_| rng.gen::<u8>() & 0x3f).collect()
        })
        .collect();
    while out.len() < len {
        if rng.gen_bool(0.7) {
            let p = rng.gen_range(0..phrases.len());
            out.extend_from_slice(&phrases[p]);
        } else {
            let l = rng.gen_range(1..8);
            for _ in 0..l {
                out.push(rng.gen());
            }
        }
        // Occasionally mutate a phrase so matches aren't trivial.
        if rng.gen_bool(0.05) {
            let p = rng.gen_range(0..phrases.len());
            let i = rng.gen_range(0..phrases[p].len());
            phrases[p][i] ^= 1;
        }
    }
    out.truncate(len);
    out
}

fn build(abi: Abi, scale: Scale, speed: bool) -> GenericProgram {
    let f_scale = scale.factor();
    let input_len: usize = (2048 * f_scale as usize * if speed { 2 } else { 1 }).min(1 << 20);
    let hash_bits: u32 = 14;
    let max_chain: u64 = 4;
    let max_match: i64 = 32;

    let mut b = ProgramBuilder::new(if speed { "657.xz_s" } else { "557.xz_r" }, abi);
    let data = input_buffer(input_len, 0x5eed_c0de ^ speed as u64);
    let g_in = b.global_const("input", data);
    let g_head = b.global_zero("hash_head", (1u64 << hash_bits) * 8);
    let g_prev = b.global_zero("prev_chain", input_len as u64 * 8);
    let g_out = b.global_zero("coder_state", 4096);

    // Match probe extracted into its own function, as in the real LZMA
    // match finder (per-position call + return).
    let probe = b.function("find_match", 2, |f| {
        let pos = f.arg(0);
        let cand0 = f.arg(1);
        let inp = f.vreg();
        f.lea_global(inp, g_in, 0);
        let prev = f.vreg();
        f.lea_global(prev, g_prev, 0);
        let cand = f.vreg();
        f.mov(cand, cand0);
        let best_len = f.vreg();
        f.mov_imm(best_len, 0);
        let chain = f.vreg();
        f.mov_imm(chain, 0);
        let chain_done = f.label();
        let chain_head = f.here();
        f.br(Cond::Geu, chain, max_chain, chain_done);
        f.br(Cond::Eq, cand, 0, chain_done);
        let len = f.vreg();
        f.mov_imm(len, 0);
        let cmp_done = f.label();
        let cmp_head = f.here();
        f.br(Cond::Geu, len, max_match as u64, cmp_done);
        let ca = f.vreg();
        f.add(ca, cand, len);
        let cb = f.vreg();
        f.load_int(cb, inp, ca, MemSize::S1);
        let pa = f.vreg();
        f.add(pa, pos, len);
        let pb = f.vreg();
        f.load_int(pb, inp, pa, MemSize::S1);
        f.br(Cond::Ne, cb, pb, cmp_done);
        f.add(len, len, 1);
        f.jump(cmp_head);
        f.bind(cmp_done);
        let keep = f.label();
        f.br(Cond::Leu, len, best_len, keep);
        f.mov(best_len, len);
        f.bind(keep);
        let poff = f.vreg();
        f.lsl(poff, cand, 3);
        f.load_int(cand, prev, poff, MemSize::S8);
        f.add(chain, chain, 1);
        f.jump(chain_head);
        f.bind(chain_done);
        f.ret(Some(best_len));
    });

    let r_match = b.region("match_find");
    let r_coder = b.region("range_coder");
    let main = b.function("main", 0, |f| {
        let inp = f.vreg();
        f.lea_global(inp, g_in, 0);
        let head = f.vreg();
        f.lea_global(head, g_head, 0);
        let prev = f.vreg();
        f.lea_global(prev, g_prev, 0);
        let out = f.vreg();
        f.lea_global(out, g_out, 0);

        let range = f.vreg();
        f.mov_imm(range, 0xFFFF_FFFFu64);
        let code_acc = f.vreg();
        f.mov_imm(code_acc, 0);
        let matched_bytes = f.vreg();
        f.mov_imm(matched_bytes, 0);

        let end = f.vreg();
        f.mov_imm(end, input_len as u64 - max_match as u64);
        f.for_loop(0, end, 1, |f, pos| {
            // h = hash of 3 bytes at pos.
            f.region(r_match);
            let b0 = f.vreg();
            f.load_int(b0, inp, pos, MemSize::S1);
            let p1 = f.vreg();
            f.add(p1, pos, 1);
            let b1 = f.vreg();
            f.load_int(b1, inp, p1, MemSize::S1);
            let p2 = f.vreg();
            f.add(p2, pos, 2);
            let b2 = f.vreg();
            f.load_int(b2, inp, p2, MemSize::S1);
            let h = f.vreg();
            f.lsl(h, b0, 16);
            let t = f.vreg();
            f.lsl(t, b1, 8);
            f.orr(h, h, t);
            f.orr(h, h, b2);
            f.mul(h, h, 0x9E3779B1u64 as i64);
            f.lsr(h, h, (64 - hash_bits) as i64);
            let hoff = f.vreg();
            f.lsl(hoff, h, 3);

            // Probe the chain (a real call, as in the LZMA match finder).
            let cand = f.vreg();
            f.load_int(cand, head, hoff, MemSize::S8);
            let best_len = f.vreg();
            f.call(probe, &[pos, cand], Some(best_len));

            // Insert pos: prev[pos] = head[h]; head[h] = pos.
            let old = f.vreg();
            f.load_int(old, head, hoff, MemSize::S8);
            let ppos = f.vreg();
            f.lsl(ppos, pos, 3);
            f.store_int(old, prev, ppos, MemSize::S8);
            f.store_int(pos, head, hoff, MemSize::S8);

            // Range-coder-flavoured integer mixing per decision.
            f.region(r_coder);
            f.add(matched_bytes, matched_bytes, best_len);
            f.eor(code_acc, code_acc, best_len);
            f.mul(range, range, 0x0019_660D);
            f.add(range, range, 0x3C6E_F35F);
            f.lsr(t, range, 11);
            f.eor(code_acc, code_acc, t);
            let so = f.vreg();
            f.and(so, code_acc, 4088);
            f.store_int(range, out, so, MemSize::S8);
        });
        f.region_end();
        f.and(code_acc, code_acc, 0xFFFF_FFFFi64);
        f.halt_code(code_acc);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn input_is_compressible() {
        let buf = input_buffer(4096, 7);
        // Count 4-byte repeats at distance <= 1024 as a cheap proxy.
        let mut hits = 0;
        for i in 1024..4092 {
            for d in 1..=8 {
                if buf[i..i + 4] == buf[i - d * 16..i - d * 16 + 4] {
                    hits += 1;
                    break;
                }
            }
        }
        assert!(hits > 10, "synthetic input should contain repeats: {hits}");
    }
}
