//! `510.parest_r` proxy — finite-element solver (sparse linear algebra).
//!
//! The original solves a biomedical-imaging inverse problem with deal.II:
//! dominated by conjugate-gradient iterations over sparse CSR matrices.
//! The paper reports MI ≈ 0.92 (balanced), a modest purecap slowdown
//! (≈14%), and a *decreasing* branch misprediction rate under purecap —
//! its traffic is mostly indexed gathers over integer column indices, so
//! capability load density stays below 8%.
//!
//! The proxy: CG-style sparse matrix-vector products over a synthetic CSR
//! matrix (values + column indices + row pointers), plus dot products and
//! AXPY updates. Pointers appear only at the matrix/vector descriptor
//! level, matching parest's low capability density.

use crate::common::{Field, Layout, SimRng};
use crate::registry::Scale;
use cheri_isa::{Abi, GenericProgram, MemSize, ProgramBuilder};

/// Builds the rate-sized proxy.
pub fn build_rate(abi: Abi, scale: Scale) -> GenericProgram {
    let f_scale = scale.factor();
    let rows: u64 = (256 * f_scale).min(8192);
    let nnz_per_row: u64 = 9;
    let iters: u64 = 3 + f_scale / 16;

    let mut b = ProgramBuilder::new("510.parest_r", abi);

    // Matrix descriptor: { vals*, cols*, rows*, n }. `rows` is a table of
    // per-row block pointers (deal.II-style sparsity iterators): every row
    // dereferences two capabilities under purecap.
    let desc = Layout::new(abi, &[Field::Ptr, Field::Ptr, Field::Ptr, Field::I64]);
    let g_mat = b.global_zero("matrix_desc", desc.size());

    let spmv = b.function("spmv", 2, |f| {
        // y = A * x
        let x = f.arg(0);
        let y = f.arg(1);
        let d = f.vreg();
        f.lea_global(d, g_mat, 0);
        let rows_tab = f.vreg();
        f.load_ptr(rows_tab, d, desc.off(2));
        let n = f.vreg();
        f.load_int(n, d, desc.off(3), MemSize::S8);
        f.for_loop(0, n, 1, |f, row| {
            // Row descriptor: {vals_block*, cols_block*}.
            let rd_idx = f.vreg();
            f.lsl(rd_idx, row, 1);
            let vals = f.vreg();
            f.load_ptr_idx(vals, rows_tab, rd_idx);
            let rd_idx2 = f.vreg();
            f.add(rd_idx2, rd_idx, 1);
            let cols = f.vreg();
            f.load_ptr_idx(cols, rows_tab, rd_idx2);
            let acc = f.vreg();
            f.mov_f64(acc, 0.0);
            for k in 0..nnz_per_row {
                let e = f.vreg();
                f.mov_imm(e, k);
                let a = f.vreg();
                f.load_f64_idx(a, vals, e);
                let c = f.vreg();
                f.load_int_idx(c, cols, e, MemSize::S8);
                let xv = f.vreg();
                f.load_f64_idx(xv, x, c);
                f.fmadd(acc, a, xv, acc);
            }
            f.store_f64_idx(acc, y, row);
        });
        f.ret(None);
    });

    let dot = b.function("dot", 2, |f| {
        let x = f.arg(0);
        let y = f.arg(1);
        let d = f.vreg();
        f.lea_global(d, g_mat, 0);
        let n = f.vreg();
        f.load_int(n, d, desc.off(3), MemSize::S8);
        let acc = f.vreg();
        f.mov_f64(acc, 0.0);
        f.for_loop(0, n, 1, |f, i| {
            let a = f.vreg();
            f.load_f64_idx(a, x, i);
            let c = f.vreg();
            f.load_f64_idx(c, y, i);
            f.fmadd(acc, a, c, acc);
        });
        // Return the bit pattern folded to an integer checksum.
        let out = f.vreg();
        f.f64_to_int(out, acc);
        f.ret(Some(out));
    });

    let axpy = b.function("axpy", 3, |f| {
        // y += alpha_scaled * x   (alpha passed as integer millionths)
        let x = f.arg(0);
        let y = f.arg(1);
        let alpha_i = f.arg(2);
        let alpha = f.vreg();
        f.int_to_f64(alpha, alpha_i);
        let mill = f.vreg();
        f.mov_f64(mill, 1.0 / 1048576.0);
        f.fmul(alpha, alpha, mill);
        let d = f.vreg();
        f.lea_global(d, g_mat, 0);
        let n = f.vreg();
        f.load_int(n, d, desc.off(3), MemSize::S8);
        f.for_loop(0, n, 1, |f, i| {
            let xv = f.vreg();
            f.load_f64_idx(xv, x, i);
            let yv = f.vreg();
            f.load_f64_idx(yv, y, i);
            f.fmadd(yv, alpha, xv, yv);
            f.store_f64_idx(yv, y, i);
        });
        f.ret(None);
    });

    let main = b.function("main", 0, |f| {
        let rng = SimRng::init(f, 0xFE11_57E4);
        // Allocate the row-pointer table, per-row blocks, and vectors.
        let rows_tab = f.vreg();
        f.malloc(rows_tab, rows * 2 * abi.pointer_size());
        let x = f.vreg();
        f.malloc(x, rows * 8);
        let y = f.vreg();
        f.malloc(y, rows * 8);
        let r = f.vreg();
        f.malloc(r, rows * 8);
        // Fill the descriptor.
        let d = f.vreg();
        f.lea_global(d, g_mat, 0);
        f.store_ptr(rows_tab, d, desc.off(0));
        f.store_ptr(rows_tab, d, desc.off(1));
        f.store_ptr(rows_tab, d, desc.off(2));
        let nreg = f.vreg();
        f.mov_imm(nreg, rows);
        f.store_int(nreg, d, desc.off(3), MemSize::S8);
        // Contiguous value/column arrays; the row table holds interior
        // pointers into them (deal.II's iterator blocks).
        let all_vals = f.vreg();
        f.malloc(all_vals, rows * nnz_per_row * 8);
        let all_cols = f.vreg();
        f.malloc(all_cols, rows * nnz_per_row * 8);
        f.for_loop(0, nreg, 1, |f, row| {
            let vals = f.vreg();
            let block_off = f.vreg();
            f.mov_imm(block_off, nnz_per_row * 8);
            f.mul(block_off, block_off, row);
            f.ptr_add(vals, all_vals, block_off);
            let cols = f.vreg();
            f.ptr_add(cols, all_cols, block_off);
            for k in 0..nnz_per_row {
                let e = f.vreg();
                f.mov_imm(e, k);
                let one = f.vreg();
                f.mov_f64(one, 0.001953125); // 1/512: keeps values bounded
                f.store_f64_idx(one, vals, e);
                let rnd = rng.next(f);
                let jitter = f.vreg();
                f.and(jitter, rnd, 15);
                let col = f.vreg();
                f.add(col, row, jitter);
                let m = f.vreg();
                f.mov_imm(m, rows - 1);
                f.and(col, col, m);
                f.store_int_idx(col, cols, e, MemSize::S8);
            }
            let rd_idx = f.vreg();
            f.lsl(rd_idx, row, 1);
            f.store_ptr_idx(vals, rows_tab, rd_idx);
            let rd_idx2 = f.vreg();
            f.add(rd_idx2, rd_idx, 1);
            f.store_ptr_idx(cols, rows_tab, rd_idx2);
        });
        // x = 1.0
        f.for_loop(0, nreg, 1, |f, i| {
            let one = f.vreg();
            f.mov_f64(one, 1.0);
            f.store_f64_idx(one, x, i);
        });
        // CG-flavoured iterations: y = A x; rho = <y, x>; x += a*y; r = A y.
        let its = f.vreg();
        f.mov_imm(its, iters);
        let check = f.vreg();
        f.mov_imm(check, 0);
        f.for_loop(0, its, 1, |f, _| {
            f.call(spmv, &[x, y], None);
            let rho = f.vreg();
            f.call(dot, &[y, x], Some(rho));
            f.and(rho, rho, 0xFFFF);
            f.call(axpy, &[y, x, rho], None);
            f.call(spmv, &[y, r], None);
            f.add(check, check, rho);
        });
        f.halt_code(check);
    });

    b.set_entry(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{lower, Interp, InterpConfig, NullSink};

    #[test]
    fn deterministic_across_abis() {
        let mut codes = Vec::new();
        for abi in Abi::ALL {
            let res = Interp::new(InterpConfig::default())
                .run(&lower(&build_rate(abi, Scale::Test)), &mut NullSink)
                .unwrap();
            codes.push(res.exit_code);
        }
        assert_eq!(codes[0], codes[1]);
        assert_eq!(codes[0], codes[2]);
    }
}
