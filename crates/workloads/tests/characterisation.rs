//! Locks every workload to its engineered characterisation profile (the
//! §3.3 axes), so a kernel edit that silently changes what the workload
//! *is* — its access pattern, pointer density, call structure — fails CI
//! even if it still runs.

use cheri_isa::{lower, Abi, Interp, InterpConfig, TraceSummary};
use cheri_workloads::{by_key, registry, Scale};

fn characterise(key: &str, abi: Abi) -> TraceSummary {
    let w = by_key(key).expect("known workload");
    let prog = lower(&w.build(abi, Scale::Small));
    let mut t = TraceSummary::new();
    Interp::new(InterpConfig::default())
        .run(&prog, &mut t)
        .unwrap_or_else(|e| panic!("{key} under {abi}: {e}"));
    t.finish();
    t
}

#[test]
fn access_patterns_match_design() {
    // Pointer-chasers: the paper's memory-sensitive group.
    for key in ["omnetpp_520", "xalancbmk_523", "sqlite"] {
        let t = characterise(key, Abi::Hybrid);
        assert!(
            t.chase_fraction() > 0.2,
            "{key} must chase pointers, got {:.2}",
            t.chase_fraction()
        );
    }
    // Streamers: lbm, llama, parest's vectors.
    for key in ["lbm_519", "llama_matmul", "llama_inference"] {
        let t = characterise(key, Abi::Hybrid);
        assert!(
            t.chase_fraction() < 0.10,
            "{key} must stream, got {:.2}",
            t.chase_fraction()
        );
    }
}

#[test]
fn capability_shares_match_design() {
    // Purecap capability traffic: high for the pointer group, ~zero for
    // the FP group (the paper's Table 3 capability-density split).
    for (key, lo, hi) in [
        ("omnetpp_520", 0.35, 0.75),
        ("xalancbmk_523", 0.35, 0.75),
        ("quickjs", 0.35, 0.80),
        ("sqlite", 0.15, 0.60),
        ("deepsjeng_531", 0.15, 0.55),
        ("leela_541", 0.15, 0.55),
        ("lbm_519", 0.0, 0.01),
        ("llama_matmul", 0.0, 0.01),
        ("llama_inference", 0.0, 0.01),
        ("parest_510", 0.01, 0.20),
        ("nab_544", 0.10, 0.45),
        ("xz_557", 0.02, 0.30),
    ] {
        let t = characterise(key, Abi::Purecap);
        let share = t.cap_traffic_share();
        assert!(
            (lo..=hi).contains(&share),
            "{key}: cap traffic share {share:.3} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn call_structure_matches_design() {
    // xalancbmk: a cross-module virtual call per DOM node (PCC storm).
    let x = characterise("xalancbmk_523", Abi::Purecap);
    assert!(
        x.pcc_changes as f64 / x.retired as f64 > 0.005,
        "xalancbmk PCC-change rate too low"
    );
    assert!(x.indirect_branches > 1000, "virtual dispatch expected");

    // sqlite: single-module engine — few PCC changes despite many calls.
    let s = characterise("sqlite", Abi::Purecap);
    assert!(
        (s.pcc_changes as f64 / s.retired as f64) < 0.001,
        "sqlite must not storm the PCC ({} / {})",
        s.pcc_changes,
        s.retired
    );
    assert!(s.calls > 1000, "B-tree/VDBE call structure expected");

    // quickjs: dispatch is same-module indirect calls.
    let q = characterise("quickjs", Abi::Purecap);
    assert!(q.indirect_branches > 5000, "bytecode dispatch expected");
}

#[test]
fn instruction_mix_classes() {
    // FP-dominated kernels.
    for key in ["lbm_519", "parest_510", "nab_544"] {
        let t = characterise(key, Abi::Hybrid);
        assert!(
            t.vfp as f64 / t.retired as f64 > 0.10,
            "{key} should be FP-rich"
        );
    }
    // SIMD shows up only in x264 and llama-ish kernels.
    let x264 = characterise("x264_525", Abi::Hybrid);
    assert!(x264.ase > 0, "x264 must use SAD vector ops");
    let xz = characterise("xz_557", Abi::Hybrid);
    assert_eq!(xz.ase, 0);
    assert_eq!(xz.vfp, 0, "xz is pure integer");
}

#[test]
fn working_sets_are_ordered_sensibly() {
    // At equal scale, the big-footprint workloads must touch far more
    // memory than the cache-resident ones.
    let omnetpp = characterise("omnetpp_520", Abi::Hybrid).working_set_bytes();
    let deepsjeng = characterise("deepsjeng_531", Abi::Hybrid).working_set_bytes();
    let lbm = characterise("lbm_519", Abi::Hybrid).working_set_bytes();
    assert!(omnetpp > 64 * 1024);
    assert!(lbm > 256 * 1024, "grids are large: {lbm}");
    assert!(deepsjeng > 16 * 1024);
}

#[test]
fn purecap_working_set_grows_for_pointer_workloads_only() {
    for (key, must_grow) in [
        ("omnetpp_520", true),
        ("xalancbmk_523", true),
        ("quickjs", true),
        ("lbm_519", false),
        ("llama_matmul", false),
    ] {
        let h = characterise(key, Abi::Hybrid).working_set_bytes() as f64;
        let p = characterise(key, Abi::Purecap).working_set_bytes() as f64;
        if must_grow {
            assert!(
                p > 1.2 * h,
                "{key}: purecap working set must grow ({h} -> {p})"
            );
        } else {
            assert!(
                p < 1.15 * h,
                "{key}: working set should be stable ({h} -> {p})"
            );
        }
    }
}

#[test]
fn every_workload_characterises_under_every_supported_abi() {
    for w in registry() {
        for abi in Abi::ALL {
            if !w.supports(abi) {
                continue;
            }
            let prog = lower(&w.build(abi, Scale::Test));
            let mut t = TraceSummary::new();
            Interp::new(InterpConfig::default())
                .run(&prog, &mut t)
                .unwrap_or_else(|e| panic!("{} under {abi}: {e}", w.name));
            t.finish();
            assert!(t.retired > 1000, "{} {abi}", w.name);
            assert!(t.data_lines > 0 && t.code_footprint_lines > 0);
            assert_eq!(
                t.retired,
                t.loads + t.stores + t.dp + t.vfp + t.ase + t.branches,
                "{} {abi}: classes must partition the stream",
                w.name
            );
        }
    }
}
