//! Property tests for [`LogHistogram`]: sharding a sample stream over
//! any number of per-thread histograms and merging the shards must be
//! *exactly* the histogram of the unsharded stream — the invariant the
//! serving simulation's `--jobs`-independent quantiles rest on — and
//! quantile estimates must bracket the exact order statistic within the
//! bucket quantisation error.

use morello_obs::{LogHistogram, SUB_BUCKETS};
use proptest::prelude::*;

/// `(sample, shard label)` pairs: values span unit buckets through deep
/// octaves; the shard label assigns each sample to one of 8 shards.
fn labelled_samples() -> impl Strategy<Value = Vec<(u64, u8)>> {
    let sample = prop_oneof![0_u64..16, 16_u64..100_000, 1_000_000_u64..=u64::MAX / 2,];
    proptest::collection::vec((sample, 0_u8..8), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged shards equal the unsharded histogram, whatever the
    /// sharding and whatever the merge order.
    #[test]
    fn merging_shards_equals_unsharded(labelled in labelled_samples()) {
        let mut whole = LogHistogram::new();
        let mut shards = vec![LogHistogram::new(); 8];
        for (v, s) in &labelled {
            whole.record(*v);
            shards[*s as usize].record(*v);
        }
        // Forward merge order.
        let mut fwd = LogHistogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        prop_assert_eq!(&fwd, &whole);
        // Reverse merge order.
        let mut rev = LogHistogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(&rev, &whole);
        prop_assert_eq!(fwd.count(), labelled.len() as u64);
    }

    /// Quantile estimates never undershoot the exact order statistic
    /// and overshoot by at most one sub-bucket width.
    #[test]
    fn quantiles_bracket_exact_order_statistics(labelled in labelled_samples()) {
        let mut h = LogHistogram::new();
        for (v, _) in &labelled {
            h.record(*v);
        }
        let mut sorted: Vec<u64> = labelled.iter().map(|(v, _)| *v).collect();
        sorted.sort_unstable();
        for q in [0.0_f64, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= exact, "q{}: {} < exact {}", q, est, exact);
            let bound = exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0;
            prop_assert!(
                (est as f64) <= bound,
                "q{}: {} above error bound {} (exact {})",
                q, est, bound, exact
            );
        }
    }
}
