//! Integration tests for the observability layer: interval-delta
//! exactness, profiler determinism, region attribution, and journal
//! round-trips.

use cheri_isa::Abi;
use cheri_workloads::{by_key, Scale};
use morello_obs::{
    collapsed_stacks, hotspot_table, read_journal, run_profiled, run_sampled, JsonlJournal,
};
use morello_pmu::EventCounts;
use morello_sim::{Platform, Runner};

fn test_platform() -> Platform {
    Platform::morello().with_scale(Scale::Test)
}

#[test]
fn interval_deltas_sum_exactly_to_single_shot_counts() {
    let platform = test_platform();
    let w = by_key("omnetpp_520").unwrap();
    let single = Runner::new(platform).run(&w, Abi::Purecap).unwrap();

    let sampled = run_sampled(&platform, &w, Abi::Purecap, 10_000).unwrap();
    assert!(
        sampled.samples.len() >= 2,
        "want several windows, got {}",
        sampled.samples.len()
    );

    let mut summed = EventCounts::new();
    for s in &sampled.samples {
        summed.accumulate(&s.counts);
    }
    for (e, v) in single.counts.iter() {
        assert_eq!(
            summed.get(e),
            v,
            "windowed deltas for {e} must sum exactly to the single-shot count"
        );
    }
    // The sampled run's final stats match the unsampled run bit-for-bit.
    assert_eq!(sampled.stats, single.stats);
    assert_eq!(sampled.exit_code, single.exit_code);
}

#[test]
fn class_counter_window_deltas_sum_to_single_shot_totals() {
    // The per-opcode-class attribution counters ride the same
    // windowed-delta machinery as every other event: summed over all
    // windows they reproduce the single-shot values, and within any
    // scope (one window or the whole run) the class-retired counters
    // partition INST_RETIRED while the class-cycle counters partition
    // CPU_CYCLES.
    let platform = test_platform();
    let w = by_key("alloc_stress").unwrap();
    for abi in [Abi::Hybrid, Abi::Purecap] {
        let single = Runner::new(platform).run(&w, abi).unwrap();
        let sampled = run_sampled(&platform, &w, abi, 10_000).unwrap();
        assert!(sampled.samples.len() >= 2, "{abi}: want several windows");

        let mut summed = EventCounts::new();
        for s in &sampled.samples {
            summed.accumulate(&s.counts);
        }
        let mut class_retired = 0;
        let mut class_cycles = 0;
        for (label, retired_ev, cycles_ev) in morello_pmu::PmuEvent::opcode_class_pairs() {
            assert_eq!(
                summed.get(retired_ev),
                single.counts.get(retired_ev),
                "{abi}/{label}: windowed retired deltas must sum to the single shot"
            );
            assert_eq!(
                summed.get(cycles_ev),
                single.counts.get(cycles_ev),
                "{abi}/{label}: windowed cycle deltas must sum to the single shot"
            );
            class_retired += summed.get(retired_ev);
            class_cycles += summed.get(cycles_ev);
        }
        use morello_pmu::PmuEvent;
        assert_eq!(
            class_retired,
            summed.get(PmuEvent::InstRetired),
            "{abi}: class retired counters partition INST_RETIRED"
        );
        assert_eq!(
            class_cycles,
            summed.get(PmuEvent::CpuCycles),
            "{abi}: class cycle counters partition CPU_CYCLES"
        );
    }
}

#[test]
fn interval_windows_tile_the_run() {
    let platform = test_platform();
    let w = by_key("lbm_519").unwrap();
    let sampled = run_sampled(&platform, &w, Abi::Hybrid, 5_000).unwrap();
    let mut prev_end = 0;
    for (i, s) in sampled.samples.iter().enumerate() {
        assert_eq!(s.index, i);
        assert_eq!(s.start_cycle, prev_end, "windows must be contiguous");
        assert!(s.end_cycle > s.start_cycle);
        prev_end = s.end_cycle;
    }
    assert_eq!(prev_end, sampled.stats.cpu_cycles);
}

#[test]
fn profiler_is_deterministic() {
    let platform = test_platform();
    let w = by_key("sqlite").unwrap();
    let a = run_profiled(&platform, &w, Abi::Purecap).unwrap();
    let b = run_profiled(&platform, &w, Abi::Purecap).unwrap();
    assert_eq!(a.regions, b.regions, "two runs must profile identically");
    assert_eq!(a.exit_code, b.exit_code);
}

#[test]
fn profiler_attributes_all_cycles_and_instructions() {
    let platform = test_platform();
    let w = by_key("deepsjeng_531").unwrap();
    let run = run_profiled(&platform, &w, Abi::Hybrid).unwrap();
    let cycles: u64 = run.regions.iter().map(|r| r.cycles).sum();
    let retired: u64 = run.regions.iter().map(|r| r.retired).sum();
    // Snapshot rounding may strand a cycle at region boundaries.
    assert!(
        cycles.abs_diff(run.stats.cpu_cycles) <= run.regions.len() as u64,
        "region cycles {cycles} vs run total {}",
        run.stats.cpu_cycles
    );
    assert_eq!(retired, run.stats.inst_retired);
    // Both tagged phases saw work.
    let named: Vec<&str> = run
        .regions
        .iter()
        .filter(|r| r.retired > 0)
        .map(|r| r.name.as_str())
        .collect();
    assert!(named.contains(&"setup"), "regions with work: {named:?}");
    assert!(named.contains(&"search"), "regions with work: {named:?}");
}

#[test]
fn omnetpp_pointer_chase_dominates_backend_memory() {
    let platform = test_platform();
    let w = by_key("omnetpp_520").unwrap();
    let run = run_profiled(&platform, &w, Abi::Purecap).unwrap();
    let top = run
        .regions
        .iter()
        .max_by_key(|r| r.backend_mem_cycles)
        .unwrap();
    assert_eq!(
        top.name, "pointer_chase",
        "the event loop must carry the largest backend-memory share"
    );
    let table = hotspot_table(&run.regions).render();
    assert!(table.contains("pointer_chase"));
    let stacks = collapsed_stacks(&run.workload, &run.regions);
    assert!(stacks.contains("520.omnetpp_r;pointer_chase "));
}

#[test]
fn journal_roundtrips_through_jsonl() {
    let platform = test_platform();
    let runner = Runner::new(platform);
    let w = by_key("xz_557").unwrap();
    let path =
        std::env::temp_dir().join(format!("morello-obs-journal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut journal = JsonlJournal::create(&path).unwrap();
    let rep_h = runner.run_observed(&w, Abi::Hybrid, &mut journal).unwrap();
    let rep_p = runner.run_observed(&w, Abi::Purecap, &mut journal).unwrap();
    journal.flush().unwrap();

    let records = read_journal(&path).unwrap();
    assert_eq!(records.len(), 2);
    for (rec, rep) in records.iter().zip([&rep_h, &rep_p]) {
        assert_eq!(rec.workload, rep.workload);
        assert_eq!(rec.key, rep.key);
        assert_eq!(rec.abi, rep.abi);
        assert_eq!(rec.scale, Scale::Test);
        assert_eq!(rec.retired, rep.retired);
        assert_eq!(rec.exit_code, rep.exit_code);
        assert_eq!(rec.seconds, rep.seconds);
        assert_eq!(rec.counts, rep.counts);
        assert_eq!(
            rec.uarch_hash,
            format!("{:016x}", morello_sim::uarch_config_hash(&platform.uarch))
        );
        assert!(rec.wall_seconds >= 0.0);
    }

    // Appending accumulates instead of truncating.
    let mut journal = JsonlJournal::append(&path).unwrap();
    runner
        .run_observed(&w, Abi::Benchmark, &mut journal)
        .unwrap();
    journal.flush().unwrap();
    assert_eq!(read_journal(&path).unwrap().len(), 3);
    let _ = std::fs::remove_file(&path);
}

/// Looks up a top-level field of a JSON object value.
fn json_field<'v>(v: &'v serde_json::JsonValue, key: &str) -> Option<&'v serde_json::JsonValue> {
    serde::as_map(v)
        .ok()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

#[test]
fn fuel_exhaustion_on_the_sampled_path_yields_a_partial_run() {
    let mut platform = test_platform();
    platform.interp.max_insts = 20_000;
    let w = by_key("omnetpp_520").unwrap();
    let sampled = run_sampled(&platform, &w, Abi::Purecap, 2_000)
        .expect("fuel exhaustion must not be an error on the sampled path");
    assert!(sampled.truncated, "run must be flagged as truncated");
    assert_eq!(sampled.exit_code, 0);
    assert!(
        !sampled.samples.is_empty(),
        "the executed prefix was sampled"
    );
    assert!(sampled.stats.inst_retired > 0);
    // The budget is checked before each step; one step can retire a
    // handful of synthetic events, so allow a small overshoot.
    assert!(
        sampled.stats.inst_retired <= 20_000 + 64,
        "retired {} far beyond the budget",
        sampled.stats.inst_retired
    );
    // The partial run serialises into a JSONL journal line that records
    // the truncation.
    let line = serde_json::to_string(&sampled).unwrap();
    let path = std::env::temp_dir().join(format!("obs-truncated-{}.jsonl", std::process::id()));
    std::fs::write(&path, format!("{line}\n")).unwrap();
    let journalled = std::fs::read_to_string(&path).unwrap();
    let back: serde_json::JsonValue =
        serde_json::from_str(journalled.lines().next().unwrap()).unwrap();
    assert!(matches!(
        json_field(&back, "truncated"),
        Some(serde::Value::Bool(true))
    ));
    assert!(matches!(
        json_field(&back, "samples"),
        Some(serde::Value::Seq(s)) if !s.is_empty()
    ));
    let _ = std::fs::remove_file(&path);

    // A full-budget run of the same cell is not truncated and retires
    // more than the clipped prefix.
    let full = run_sampled(&test_platform(), &w, Abi::Purecap, 2_000).unwrap();
    assert!(!full.truncated);
    assert!(full.stats.inst_retired > sampled.stats.inst_retired);
}

#[test]
fn fuel_exhaustion_on_the_profiled_path_yields_a_partial_run() {
    let mut platform = test_platform();
    platform.interp.max_insts = 20_000;
    let w = by_key("omnetpp_520").unwrap();
    let profiled = run_profiled(&platform, &w, Abi::Purecap)
        .expect("fuel exhaustion must not be an error on the profiled path");
    assert!(profiled.truncated, "run must be flagged as truncated");
    assert_eq!(profiled.exit_code, 0);
    assert!(profiled.stats.inst_retired > 0);
    assert!(profiled.stats.inst_retired <= 20_000 + 64);
    // The executed prefix is attributed: region rows account for every
    // retired instruction.
    let attributed: u64 = profiled.regions.iter().map(|r| r.retired).sum();
    assert_eq!(attributed, profiled.stats.inst_retired);
    let line = serde_json::to_string(&profiled).unwrap();
    let back: serde_json::JsonValue = serde_json::from_str(&line).unwrap();
    assert!(matches!(
        json_field(&back, "truncated"),
        Some(serde::Value::Bool(true))
    ));

    // Other interpreter errors still surface as errors.
    let unsupported = run_profiled(&platform, &by_key("quickjs").unwrap(), Abi::Benchmark);
    assert!(unsupported.is_err());
}
