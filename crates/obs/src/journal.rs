//! JSONL run journals — the file-backed [`RunObserver`] the core's
//! [`Runner::run_observed`](morello_sim::Runner::run_observed) feeds.
//!
//! One JSON object per line, one line per completed run. Journals are
//! opened in append mode, so successive harness invocations accumulate a
//! single machine-readable lab notebook.

use morello_sim::{RunObserver, RunRecord};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A run journal that appends one JSON line per observed run.
#[derive(Debug)]
pub struct JsonlJournal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl JsonlJournal {
    /// Opens (or creates) a journal at `path` in append mode, creating
    /// parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<JsonlJournal> {
        Self::open(path, false)
    }

    /// Creates a fresh journal at `path`, truncating any existing file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlJournal> {
        Self::open(path, true)
    }

    fn open(path: impl AsRef<Path>, truncate: bool) -> std::io::Result<JsonlJournal> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut opts = OpenOptions::new();
        opts.create(true).write(true);
        if truncate {
            opts.truncate(true);
        } else {
            opts.append(true);
        }
        Ok(JsonlJournal {
            writer: BufWriter::new(opts.open(path)?),
            path: path.to_owned(),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

impl RunObserver for JsonlJournal {
    fn observe(&mut self, record: &RunRecord) {
        match serde_json::to_string(record) {
            Ok(line) => {
                if let Err(e) = writeln!(self.writer, "{line}") {
                    eprintln!(
                        "warning: journal write to {} failed: {e}",
                        self.path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: journal record did not serialise: {e}"),
        }
    }
}

impl Drop for JsonlJournal {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Reads a journal back: one [`RunRecord`] per non-empty line.
///
/// # Errors
///
/// Propagates filesystem errors; malformed lines become
/// `InvalidData` errors.
pub fn read_journal(path: impl AsRef<Path>) -> std::io::Result<Vec<RunRecord>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = serde_json::from_str::<RunRecord>(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        out.push(record);
    }
    Ok(out)
}
